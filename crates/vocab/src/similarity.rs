//! Taxonomy-based semantic similarity measures.
//!
//! The paper names Wu & Palmer and cites Resnik as "the most diffused
//! semantic similarity measures"; we provide those plus the other standard
//! members of the family (path, Leacock–Chodorow, Lin) so the
//! similarity-measure ablation can swap them freely. Every measure is
//! normalised so that similarity ∈ [0, 1] and
//! `distance = 1 − similarity`.

use crate::error::VocabError;
use crate::taxonomy::{ConceptId, Taxonomy};

/// A semantic similarity between two concepts of one taxonomy.
pub trait Similarity {
    /// Similarity in `[0, 1]` between two concepts given by id.
    fn similarity_ids(&self, tax: &Taxonomy, a: ConceptId, b: ConceptId) -> f64;

    /// Similarity looked up by concept name.
    fn similarity(&self, tax: &Taxonomy, a: &str, b: &str) -> Result<f64, VocabError> {
        Ok(self.similarity_ids(tax, tax.require(a)?, tax.require(b)?))
    }

    /// `1 − similarity`, the semantic distance the index consumes.
    fn distance(&self, tax: &Taxonomy, a: &str, b: &str) -> Result<f64, VocabError> {
        Ok(1.0 - self.similarity(tax, a, b)?)
    }
}

/// The concrete similarity measures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SimilarityMeasure {
    /// Wu & Palmer (1994): `2·depth(lcs) / (depth(a) + depth(b))`.
    /// The measure the paper names explicitly; the default.
    #[default]
    WuPalmer,
    /// Inverse path length: `1 / (1 + pathlen(a, b))`.
    Path,
    /// Leacock–Chodorow: `−ln((pathlen + 1) / (2·maxdepth))`, normalised by
    /// its maximum `ln(2·maxdepth)` to land in `[0, 1]`.
    LeacockChodorow,
    /// Resnik (1995): `IC(lcs)` with intrinsic information content (already
    /// in `[0, 1]`; the root contributes 0, a leaf subsumer 1).
    Resnik,
    /// Lin (1998): `2·IC(lcs) / (IC(a) + IC(b))`, 0 when both ICs are 0.
    Lin,
}

impl SimilarityMeasure {
    /// Every measure, for ablation sweeps.
    pub const ALL: [SimilarityMeasure; 5] = [
        SimilarityMeasure::WuPalmer,
        SimilarityMeasure::Path,
        SimilarityMeasure::LeacockChodorow,
        SimilarityMeasure::Resnik,
        SimilarityMeasure::Lin,
    ];

    /// Stable lowercase name (used in experiment output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SimilarityMeasure::WuPalmer => "wu-palmer",
            SimilarityMeasure::Path => "path",
            SimilarityMeasure::LeacockChodorow => "leacock-chodorow",
            SimilarityMeasure::Resnik => "resnik",
            SimilarityMeasure::Lin => "lin",
        }
    }
}

impl Similarity for SimilarityMeasure {
    fn similarity_ids(&self, tax: &Taxonomy, a: ConceptId, b: ConceptId) -> f64 {
        match self {
            SimilarityMeasure::WuPalmer => {
                let lcs = tax.lcs(a, b);
                let denom = f64::from(tax.depth(a) + tax.depth(b));
                2.0 * f64::from(tax.depth(lcs)) / denom
            }
            SimilarityMeasure::Path => 1.0 / (1.0 + f64::from(tax.path_length(a, b))),
            SimilarityMeasure::LeacockChodorow => {
                let two_d = f64::from(2 * tax.max_depth());
                let len = f64::from(tax.path_length(a, b)) + 1.0;
                let raw = -(len / two_d).ln();
                let max = two_d.ln();
                if max <= 0.0 {
                    // Degenerate single-level taxonomy: identical ids only.
                    return f64::from(a == b);
                }
                (raw / max).clamp(0.0, 1.0)
            }
            SimilarityMeasure::Resnik => tax.information_content(tax.lcs(a, b)),
            SimilarityMeasure::Lin => {
                let ic_a = tax.information_content(a);
                let ic_b = tax.information_content(b);
                if ic_a + ic_b <= 0.0 {
                    return f64::from(a == b);
                }
                2.0 * tax.information_content(tax.lcs(a, b)) / (ic_a + ic_b)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Taxonomy {
        let mut b = Taxonomy::builder("test");
        b.add("vehicle", &[]);
        b.add("car", &["vehicle"]);
        b.add("suv", &["car"]);
        b.add("sedan", &["car"]);
        b.add("bike", &["vehicle"]);
        b.add("animal", &["root"]);
        b.add("dog", &["animal"]);
        b.build().unwrap()
    }

    #[test]
    fn wu_palmer_siblings_vs_strangers() {
        let t = sample();
        let m = SimilarityMeasure::WuPalmer;
        let sib = m.similarity(&t, "suv", "sedan").unwrap();
        let cousin = m.similarity(&t, "suv", "bike").unwrap();
        let stranger = m.similarity(&t, "suv", "dog").unwrap();
        assert!(sib > cousin, "{sib} vs {cousin}");
        assert!(cousin > stranger, "{cousin} vs {stranger}");
        // Exact value: 2*3 / (4+4) = 0.75 for suv/sedan under car(depth 3).
        assert!((sib - 0.75).abs() < 1e-12);
    }

    #[test]
    fn identity_yields_similarity_one() {
        let t = sample();
        for m in SimilarityMeasure::ALL {
            let s = m.similarity(&t, "suv", "suv").unwrap();
            assert!(
                (s - 1.0).abs() < 1e-9,
                "{} should give sim(x,x)=1, got {s}",
                m.name()
            );
        }
    }

    #[test]
    fn all_measures_stay_in_unit_interval() {
        let t = sample();
        let names: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        for m in SimilarityMeasure::ALL {
            for &a in &names {
                for &b in &names {
                    let s = m.similarity(&t, a, b).unwrap();
                    assert!((0.0..=1.0).contains(&s), "{}({a},{b}) = {s}", m.name());
                }
            }
        }
    }

    #[test]
    fn all_measures_are_symmetric() {
        let t = sample();
        let names: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        for m in SimilarityMeasure::ALL {
            for &a in &names {
                for &b in &names {
                    let s1 = m.similarity(&t, a, b).unwrap();
                    let s2 = m.similarity(&t, b, a).unwrap();
                    assert!(
                        (s1 - s2).abs() < 1e-12,
                        "{} not symmetric on ({a},{b})",
                        m.name()
                    );
                }
            }
        }
    }

    #[test]
    fn measures_rank_siblings_above_distant_pairs() {
        let t = sample();
        for m in SimilarityMeasure::ALL {
            let sib = m.similarity(&t, "suv", "sedan").unwrap();
            let far = m.similarity(&t, "suv", "dog").unwrap();
            assert!(sib > far, "{}: sib {sib} <= far {far}", m.name());
        }
    }

    #[test]
    fn path_exact_values() {
        let t = sample();
        let m = SimilarityMeasure::Path;
        assert!((m.similarity(&t, "suv", "sedan").unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.similarity(&t, "suv", "suv").unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn resnik_uses_lcs_ic() {
        let t = sample();
        let m = SimilarityMeasure::Resnik;
        // LCS(suv, dog) = root → IC 0.
        assert_eq!(m.similarity(&t, "suv", "dog").unwrap(), 0.0);
        // LCS(suv, sedan) = car, a non-root concept → IC > 0.
        assert!(m.similarity(&t, "suv", "sedan").unwrap() > 0.0);
    }

    #[test]
    fn lin_root_pair_is_zero_not_nan() {
        let t = sample();
        let m = SimilarityMeasure::Lin;
        let root = "root";
        let s = m.similarity(&t, root, root).unwrap();
        assert_eq!(s, 1.0); // identical ids short-circuit
        let s2 = m.similarity(&t, root, "dog").unwrap();
        assert!(s2.is_finite());
    }

    #[test]
    fn distance_complements_similarity() {
        let t = sample();
        for m in SimilarityMeasure::ALL {
            let s = m.similarity(&t, "suv", "bike").unwrap();
            let d = m.distance(&t, "suv", "bike").unwrap();
            assert!((s + d - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn unknown_concept_errors() {
        let t = sample();
        assert!(SimilarityMeasure::WuPalmer
            .similarity(&t, "suv", "ghost")
            .is_err());
    }

    #[test]
    fn degenerate_taxonomy_does_not_panic() {
        let t = Taxonomy::builder("empty").build().unwrap();
        for m in SimilarityMeasure::ALL {
            let s = m.similarity_ids(&t, t.root(), t.root());
            assert!(s.is_finite());
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SimilarityMeasure::WuPalmer.name(), "wu-palmer");
        assert_eq!(SimilarityMeasure::default(), SimilarityMeasure::WuPalmer);
    }
}
