//! Vocabulary substrate for SemTree: taxonomies, semantic similarity
//! measures, antinomy relations and string distances.
//!
//! The paper computes sub-distances between triple elements in two ways
//! (§III-A):
//!
//! - *both elements are literals of the same type* → "any distance function
//!   between strings, i.e. Levenshtein" — provided by [`strings`];
//! - *both elements are concepts* → "any distance semantic based on the
//!   available ontologies, taxonomies or vocabularies, i.e. Wu & Palmer" —
//!   provided by [`Taxonomy`] + [`similarity`].
//!
//! The requirements case study additionally needs an **antinomy** relation
//! ("the two predicates are linked by an antinomy relationship in a given
//! vocabulary") — provided by [`AntinomyTable`].
//!
//! # Example
//!
//! ```
//! use semtree_vocab::{Taxonomy, similarity::{Similarity, SimilarityMeasure}};
//!
//! let mut b = Taxonomy::builder("Fun");
//! b.add("command_handling", &["root"]);
//! b.add("accept_cmd", &["command_handling"]);
//! b.add("block_cmd", &["command_handling"]);
//! b.add("telemetry", &["root"]);
//! b.add("send_msg", &["telemetry"]);
//! let tax = b.build().unwrap();
//!
//! let wp = SimilarityMeasure::WuPalmer;
//! let near = wp.similarity(&tax, "accept_cmd", "block_cmd").unwrap();
//! let far = wp.similarity(&tax, "accept_cmd", "send_msg").unwrap();
//! assert!(near > far);
//! ```

mod antinomy;
mod error;
pub mod ic;
pub mod similarity;
pub mod strings;
mod taxonomy;
pub mod wordnet;

pub use antinomy::AntinomyTable;
pub use error::VocabError;
pub use taxonomy::{ConceptId, Taxonomy, TaxonomyBuilder, ROOT_NAME};
