//! IS-A concept taxonomies (rooted DAGs).

use std::collections::{HashMap, HashSet, VecDeque};

use crate::error::VocabError;

/// Dense identifier of a concept within one [`Taxonomy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConceptId(pub u32);

impl ConceptId {
    /// The id as a usable index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The reserved name of the implicit root concept.
pub const ROOT_NAME: &str = "root";

#[derive(Debug, Clone)]
struct Node {
    name: String,
    parents: Vec<ConceptId>,
    children: Vec<ConceptId>,
    /// 1-based depth: `depth(root) == 1`, children of the root have depth 2,
    /// and a multi-parent node takes the *shortest* root path (the
    /// convention under which Wu & Palmer is usually stated for DAGs).
    depth: u32,
    /// Number of descendants, self included (for intrinsic information
    /// content).
    subtree: u32,
}

/// A rooted IS-A DAG over named concepts.
///
/// Every taxonomy has an implicit root named [`ROOT_NAME`]; a concept whose
/// declared parent list mentions `"root"` (or is empty) hangs directly under
/// it. Multiple parents are allowed (it is a DAG, not a tree), matching the
/// "ontologies, taxonomies or vocabularies" the paper delegates to.
#[derive(Debug, Clone)]
pub struct Taxonomy {
    name: String,
    nodes: Vec<Node>,
    index: HashMap<String, ConceptId>,
    max_depth: u32,
}

/// Incremental construction of a [`Taxonomy`]; parents may be named before
/// they are defined, and validation happens in [`TaxonomyBuilder::build`].
#[derive(Debug, Clone)]
pub struct TaxonomyBuilder {
    name: String,
    declared: Vec<(String, Vec<String>)>,
    seen: HashSet<String>,
}

impl Taxonomy {
    /// Start building a taxonomy called `name` (the vocabulary prefix it
    /// serves, e.g. `"Fun"`).
    #[must_use]
    pub fn builder(name: impl Into<String>) -> TaxonomyBuilder {
        TaxonomyBuilder {
            name: name.into(),
            declared: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// The taxonomy's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Id of the implicit root.
    #[must_use]
    pub fn root(&self) -> ConceptId {
        ConceptId(0)
    }

    /// Look a concept up by name.
    #[must_use]
    pub fn id_of(&self, name: &str) -> Option<ConceptId> {
        self.index.get(name).copied()
    }

    /// Look a concept up by name, erroring when absent.
    pub fn require(&self, name: &str) -> Result<ConceptId, VocabError> {
        self.id_of(name)
            .ok_or_else(|| VocabError::UnknownConcept(name.to_string()))
    }

    /// Concept name for an id.
    #[must_use]
    pub fn concept_name(&self, id: ConceptId) -> &str {
        &self.nodes[id.index()].name
    }

    /// 1-based depth (`depth(root) == 1`).
    #[must_use]
    pub fn depth(&self, id: ConceptId) -> u32 {
        self.nodes[id.index()].depth
    }

    /// Deepest depth present in the taxonomy.
    #[must_use]
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Direct parents.
    #[must_use]
    pub fn parents(&self, id: ConceptId) -> &[ConceptId] {
        &self.nodes[id.index()].parents
    }

    /// Direct children.
    #[must_use]
    pub fn children(&self, id: ConceptId) -> &[ConceptId] {
        &self.nodes[id.index()].children
    }

    /// Number of concepts, root included.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the root exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Iterate `(id, name)` pairs in id order, root first.
    pub fn iter(&self) -> impl Iterator<Item = (ConceptId, &str)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (ConceptId(i as u32), n.name.as_str()))
    }

    /// Descendant count, self included.
    #[must_use]
    pub fn subtree_size(&self, id: ConceptId) -> u32 {
        self.nodes[id.index()].subtree
    }

    /// All ancestors of `id`, self included.
    #[must_use]
    pub fn ancestors(&self, id: ConceptId) -> HashSet<ConceptId> {
        let mut out = HashSet::new();
        let mut queue = VecDeque::from([id]);
        while let Some(n) = queue.pop_front() {
            if out.insert(n) {
                queue.extend(self.nodes[n.index()].parents.iter().copied());
            }
        }
        out
    }

    /// Whether `ancestor` subsumes `descendant` (reflexive).
    #[must_use]
    pub fn subsumes(&self, ancestor: ConceptId, descendant: ConceptId) -> bool {
        self.ancestors(descendant).contains(&ancestor)
    }

    /// Lowest common subsumer: the common ancestor of maximum depth
    /// (ties broken towards the smaller id for determinism).
    #[must_use]
    pub fn lcs(&self, a: ConceptId, b: ConceptId) -> ConceptId {
        let anc_a = self.ancestors(a);
        let anc_b = self.ancestors(b);
        anc_a
            .intersection(&anc_b)
            .copied()
            .max_by_key(|&c| (self.depth(c), std::cmp::Reverse(c)))
            .expect("root is a common ancestor of every pair")
    }

    /// Length (in edges) of the shortest path between `a` and `b` that goes
    /// through a common subsumer, using shortest-root-path depths:
    /// `depth(a) + depth(b) − 2·depth(lcs)`.
    #[must_use]
    pub fn path_length(&self, a: ConceptId, b: ConceptId) -> u32 {
        let lcs = self.lcs(a, b);
        self.depth(a) + self.depth(b) - 2 * self.depth(lcs)
    }

    /// Render the IS-A DAG in Graphviz DOT syntax (edges point from child
    /// to parent), for documentation and debugging of domain vocabularies.
    #[must_use]
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name);
        let _ = writeln!(out, "  rankdir=BT;");
        for (id, name) in self.iter() {
            let _ = writeln!(out, "  n{} [label=\"{}\"];", id.0, name);
        }
        for (id, _) in self.iter() {
            for parent in self.parents(id) {
                let _ = writeln!(out, "  n{} -> n{};", id.0, parent.0);
            }
        }
        out.push_str("}\n");
        out
    }

    /// Intrinsic information content (Seco et al.):
    /// `IC(c) = 1 − ln(subtree(c)) / ln(N)`, so the root has IC 0 and each
    /// leaf has IC 1. Falls back to 0 for a single-node taxonomy.
    #[must_use]
    pub fn information_content(&self, id: ConceptId) -> f64 {
        let n = self.nodes.len() as f64;
        if n <= 1.0 {
            return 0.0;
        }
        1.0 - (f64::from(self.subtree_size(id)).ln() / n.ln())
    }
}

impl TaxonomyBuilder {
    /// Declare a concept with its parent names. An empty parent list (or a
    /// mention of `"root"`) attaches the concept to the implicit root.
    pub fn add(&mut self, name: impl Into<String>, parents: &[&str]) -> &mut Self {
        let name = name.into();
        self.seen.insert(name.clone());
        self.declared
            .push((name, parents.iter().map(|s| (*s).to_string()).collect()));
        self
    }

    /// Convenience: declare a whole chain `a IS-A b IS-A c …` at once, where
    /// the *last* element hangs under the root.
    pub fn add_chain(&mut self, chain: &[&str]) -> &mut Self {
        for window in chain.windows(2) {
            if !self.seen.contains(window[0]) {
                self.add(window[0], &[window[1]]);
            }
        }
        if let Some(last) = chain.last() {
            if !self.seen.contains(*last) {
                self.add(*last, &[]);
            }
        }
        self
    }

    /// Validate and freeze the taxonomy.
    pub fn build(&self) -> Result<Taxonomy, VocabError> {
        let mut nodes = vec![Node {
            name: ROOT_NAME.to_string(),
            parents: Vec::new(),
            children: Vec::new(),
            depth: 1,
            subtree: 1,
        }];
        let mut index = HashMap::from([(ROOT_NAME.to_string(), ConceptId(0))]);

        for (name, _) in &self.declared {
            if name == ROOT_NAME {
                return Err(VocabError::DuplicateConcept(ROOT_NAME.to_string()));
            }
            let id = ConceptId(nodes.len() as u32);
            if index.insert(name.clone(), id).is_some() {
                return Err(VocabError::DuplicateConcept(name.clone()));
            }
            nodes.push(Node {
                name: name.clone(),
                parents: Vec::new(),
                children: Vec::new(),
                depth: 0,
                subtree: 1,
            });
        }

        for (name, parents) in &self.declared {
            let id = index[name];
            let mut resolved: Vec<ConceptId> = Vec::with_capacity(parents.len().max(1));
            if parents.is_empty() {
                resolved.push(ConceptId(0));
            }
            for p in parents {
                let pid = *index.get(p).ok_or_else(|| VocabError::UnknownParent {
                    concept: name.clone(),
                    parent: p.clone(),
                })?;
                if !resolved.contains(&pid) {
                    resolved.push(pid);
                }
            }
            for &pid in &resolved {
                nodes[pid.index()].children.push(id);
            }
            nodes[id.index()].parents = resolved;
        }

        // Depths via BFS from the root; any node not reached is on a cycle
        // (or hangs off one), since every acyclic node chains up to the root.
        let mut queue = VecDeque::from([ConceptId(0)]);
        let mut visited = vec![false; nodes.len()];
        visited[0] = true;
        while let Some(n) = queue.pop_front() {
            let d = nodes[n.index()].depth;
            let children = nodes[n.index()].children.clone();
            for c in children {
                if !visited[c.index()] {
                    visited[c.index()] = true;
                    nodes[c.index()].depth = d + 1;
                    queue.push_back(c);
                }
            }
        }
        if let Some(i) = visited.iter().position(|v| !v) {
            return Err(VocabError::Cycle(nodes[i].name.clone()));
        }

        // Descendant counts: count each node once per ancestor, via a
        // reverse-BFS from every node (N is small for vocabularies; keep it
        // simple and obviously correct).
        let mut subtree = vec![0u32; nodes.len()];
        for start in 0..nodes.len() {
            let mut seen = HashSet::new();
            let mut q = VecDeque::from([ConceptId(start as u32)]);
            while let Some(n) = q.pop_front() {
                if seen.insert(n) {
                    subtree[n.index()] += 1;
                    q.extend(nodes[n.index()].parents.iter().copied());
                }
            }
        }
        for (node, st) in nodes.iter_mut().zip(subtree) {
            node.subtree = st;
        }

        let max_depth = nodes.iter().map(|n| n.depth).max().unwrap_or(1);
        Ok(Taxonomy {
            name: self.name.clone(),
            nodes,
            index,
            max_depth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// root → vehicle → {car → {suv, sedan}, bike}; root → animal → dog
    fn sample() -> Taxonomy {
        let mut b = Taxonomy::builder("test");
        b.add("vehicle", &[]);
        b.add("car", &["vehicle"]);
        b.add("suv", &["car"]);
        b.add("sedan", &["car"]);
        b.add("bike", &["vehicle"]);
        b.add("animal", &["root"]);
        b.add("dog", &["animal"]);
        b.build().unwrap()
    }

    #[test]
    fn depths_are_shortest_root_paths() {
        let t = sample();
        assert_eq!(t.depth(t.root()), 1);
        assert_eq!(t.depth(t.id_of("vehicle").unwrap()), 2);
        assert_eq!(t.depth(t.id_of("car").unwrap()), 3);
        assert_eq!(t.depth(t.id_of("suv").unwrap()), 4);
        assert_eq!(t.max_depth(), 4);
    }

    #[test]
    fn lcs_finds_deepest_common_ancestor() {
        let t = sample();
        let suv = t.id_of("suv").unwrap();
        let sedan = t.id_of("sedan").unwrap();
        let bike = t.id_of("bike").unwrap();
        let dog = t.id_of("dog").unwrap();
        assert_eq!(t.concept_name(t.lcs(suv, sedan)), "car");
        assert_eq!(t.concept_name(t.lcs(suv, bike)), "vehicle");
        assert_eq!(t.concept_name(t.lcs(suv, dog)), "root");
        // Reflexive: lcs(x, x) = x.
        assert_eq!(t.lcs(suv, suv), suv);
        // lcs(ancestor, descendant) = ancestor.
        let car = t.id_of("car").unwrap();
        assert_eq!(t.lcs(car, suv), car);
    }

    #[test]
    fn path_lengths() {
        let t = sample();
        let suv = t.id_of("suv").unwrap();
        let sedan = t.id_of("sedan").unwrap();
        let dog = t.id_of("dog").unwrap();
        assert_eq!(t.path_length(suv, suv), 0);
        assert_eq!(t.path_length(suv, sedan), 2);
        assert_eq!(t.path_length(suv, dog), 5);
    }

    #[test]
    fn subsumption() {
        let t = sample();
        let car = t.id_of("car").unwrap();
        let suv = t.id_of("suv").unwrap();
        assert!(t.subsumes(car, suv));
        assert!(!t.subsumes(suv, car));
        assert!(t.subsumes(t.root(), suv));
        assert!(t.subsumes(suv, suv));
    }

    #[test]
    fn subtree_sizes_and_ic() {
        let t = sample();
        assert_eq!(t.subtree_size(t.root()), t.len() as u32);
        assert_eq!(t.subtree_size(t.id_of("car").unwrap()), 3);
        assert_eq!(t.subtree_size(t.id_of("suv").unwrap()), 1);
        assert_eq!(t.information_content(t.root()), 0.0);
        assert!((t.information_content(t.id_of("suv").unwrap()) - 1.0).abs() < 1e-12);
        let ic_car = t.information_content(t.id_of("car").unwrap());
        assert!(ic_car > 0.0 && ic_car < 1.0);
    }

    #[test]
    fn multi_parent_dag() {
        let mut b = Taxonomy::builder("dag");
        b.add("a", &[]);
        b.add("b", &[]);
        b.add("c", &["a", "b"]);
        let t = b.build().unwrap();
        let c = t.id_of("c").unwrap();
        assert_eq!(t.parents(c).len(), 2);
        assert_eq!(t.depth(c), 3);
        // c is counted once in each parent's subtree.
        assert_eq!(t.subtree_size(t.id_of("a").unwrap()), 2);
        assert_eq!(t.subtree_size(t.id_of("b").unwrap()), 2);
        assert_eq!(t.subtree_size(t.root()), 4);
    }

    #[test]
    fn duplicate_concept_rejected() {
        let mut b = Taxonomy::builder("dup");
        b.add("a", &[]);
        b.add("a", &[]);
        assert_eq!(
            b.build().unwrap_err(),
            VocabError::DuplicateConcept("a".into())
        );
    }

    #[test]
    fn redeclaring_root_rejected() {
        let mut b = Taxonomy::builder("dup");
        b.add("root", &[]);
        assert!(matches!(b.build(), Err(VocabError::DuplicateConcept(_))));
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut b = Taxonomy::builder("bad");
        b.add("a", &["ghost"]);
        assert_eq!(
            b.build().unwrap_err(),
            VocabError::UnknownParent {
                concept: "a".into(),
                parent: "ghost".into()
            }
        );
    }

    #[test]
    fn cycle_rejected() {
        let mut b = Taxonomy::builder("cyc");
        b.add("a", &["b"]);
        b.add("b", &["a"]);
        assert!(matches!(b.build(), Err(VocabError::Cycle(_))));
    }

    #[test]
    fn add_chain_builds_is_a_chain() {
        let mut b = Taxonomy::builder("chain");
        b.add_chain(&["suv", "car", "vehicle"]);
        b.add_chain(&["sedan", "car", "vehicle"]); // shared suffix tolerated
        let t = b.build().unwrap();
        assert_eq!(t.depth(t.id_of("suv").unwrap()), 4);
        assert_eq!(
            t.concept_name(t.lcs(t.id_of("suv").unwrap(), t.id_of("sedan").unwrap())),
            "car"
        );
    }

    #[test]
    fn require_errors_on_missing() {
        let t = sample();
        assert!(t.require("car").is_ok());
        assert_eq!(
            t.require("nope").unwrap_err(),
            VocabError::UnknownConcept("nope".into())
        );
    }

    #[test]
    fn iter_and_len() {
        let t = sample();
        assert_eq!(t.len(), 8); // 7 concepts + root
        assert!(!t.is_empty());
        assert_eq!(t.iter().count(), 8);
        assert_eq!(t.iter().next().unwrap().1, ROOT_NAME);
        let empty = Taxonomy::builder("e").build().unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn dot_export_lists_nodes_and_edges() {
        let t = sample();
        let dot = t.to_dot();
        assert!(dot.starts_with("digraph \"test\""));
        assert!(dot.contains("label=\"car\""));
        assert!(dot.contains("label=\"root\""));
        // suv (leaf) has exactly one outgoing IS-A edge.
        let suv = t.id_of("suv").unwrap();
        let edge = format!("n{} -> ", suv.0);
        assert_eq!(dot.matches(&edge).count(), 1);
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn duplicate_parent_mentions_collapse() {
        let mut b = Taxonomy::builder("dp");
        b.add("a", &[]);
        b.add("c", &["a", "a"]);
        let t = b.build().unwrap();
        assert_eq!(t.parents(t.id_of("c").unwrap()).len(), 1);
    }
}
