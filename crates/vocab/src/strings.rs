//! String distances for literal-to-literal comparison.
//!
//! The paper: "the two triples' elements are both literals/constants of the
//! same type (we can apply any distance function between strings, i.e.
//! Levenshtein)". Levenshtein is the default; the rest of the classic
//! family is provided so deployments can swap measures per literal type.

/// Raw Levenshtein edit distance (unit costs), in `O(|a|·|b|)` time and
/// `O(min(|a|,|b|))` space.
#[must_use]
pub fn levenshtein(a: &str, b: &str) -> usize {
    let (short, long): (Vec<char>, Vec<char>) = {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        if av.len() <= bv.len() {
            (av, bv)
        } else {
            (bv, av)
        }
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Damerau–Levenshtein in the *optimal string alignment* variant
/// (adjacent transposition counts as one edit, no substring reuse).
#[must_use]
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    let (n, m) = (av.len(), bv.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let mut d = vec![vec![0usize; m + 1]; n + 1];
    for (i, row) in d.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in d[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let cost = usize::from(av[i - 1] != bv[j - 1]);
            let mut best = (d[i - 1][j] + 1)
                .min(d[i][j - 1] + 1)
                .min(d[i - 1][j - 1] + cost);
            if i > 1 && j > 1 && av[i - 1] == bv[j - 2] && av[i - 2] == bv[j - 1] {
                best = best.min(d[i - 2][j - 2] + 1);
            }
            d[i][j] = best;
        }
    }
    d[n][m]
}

/// Jaro similarity in `[0, 1]`.
#[must_use]
pub fn jaro(a: &str, b: &str) -> f64 {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    let (n, m) = (av.len(), bv.len());
    if n == 0 && m == 0 {
        return 1.0;
    }
    if n == 0 || m == 0 {
        return 0.0;
    }
    let window = (n.max(m) / 2).saturating_sub(1);
    let mut b_used = vec![false; m];
    let mut matches = 0usize;
    let mut a_matched = Vec::with_capacity(n);
    for (i, &ac) in av.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(m);
        for j in lo..hi {
            if !b_used[j] && bv[j] == ac {
                b_used[j] = true;
                a_matched.push(i);
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Count transpositions between the matched sequences.
    let b_matched: Vec<usize> = b_used
        .iter()
        .enumerate()
        .filter_map(|(j, &u)| u.then_some(j))
        .collect();
    let transpositions = a_matched
        .iter()
        .zip(&b_matched)
        .filter(|&(&i, &j)| av[i] != bv[j])
        .count();
    let m_f = matches as f64;
    (m_f / n as f64 + m_f / m as f64 + (m_f - transpositions as f64 / 2.0) / m_f) / 3.0
}

/// Jaro–Winkler similarity with the standard prefix scale 0.1 and prefix
/// cap 4.
#[must_use]
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Dice coefficient over character bigrams, in `[0, 1]`. Single-character
/// strings compare by equality.
#[must_use]
pub fn bigram_dice(a: &str, b: &str) -> f64 {
    fn bigrams(s: &str) -> Vec<(char, char)> {
        let cs: Vec<char> = s.chars().collect();
        cs.windows(2).map(|w| (w[0], w[1])).collect()
    }
    if a == b {
        return 1.0;
    }
    let mut ba = bigrams(a);
    let bb = bigrams(b);
    if ba.is_empty() || bb.is_empty() {
        return 0.0;
    }
    let total = ba.len() + bb.len();
    let mut shared = 0usize;
    for g in &bb {
        if let Some(pos) = ba.iter().position(|x| x == g) {
            ba.swap_remove(pos);
            shared += 1;
        }
    }
    2.0 * shared as f64 / total as f64
}

/// Normalised string *distance* measures, all mapping into `[0, 1]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum StringMeasure {
    /// `levenshtein(a,b) / max(|a|,|b|)` — the paper's named choice.
    #[default]
    Levenshtein,
    /// Damerau–Levenshtein (OSA), normalised like Levenshtein.
    DamerauLevenshtein,
    /// `1 − jaro_winkler(a, b)`.
    JaroWinkler,
    /// `1 − bigram_dice(a, b)`.
    BigramDice,
}

impl StringMeasure {
    /// Every measure, for ablations.
    pub const ALL: [StringMeasure; 4] = [
        StringMeasure::Levenshtein,
        StringMeasure::DamerauLevenshtein,
        StringMeasure::JaroWinkler,
        StringMeasure::BigramDice,
    ];

    /// Stable lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StringMeasure::Levenshtein => "levenshtein",
            StringMeasure::DamerauLevenshtein => "damerau-levenshtein",
            StringMeasure::JaroWinkler => "jaro-winkler",
            StringMeasure::BigramDice => "bigram-dice",
        }
    }

    /// Normalised distance in `[0, 1]`; 0 iff the strings are equal (for
    /// the edit-distance family).
    #[must_use]
    pub fn distance(self, a: &str, b: &str) -> f64 {
        match self {
            StringMeasure::Levenshtein => {
                let max = a.chars().count().max(b.chars().count());
                if max == 0 {
                    0.0
                } else {
                    levenshtein(a, b) as f64 / max as f64
                }
            }
            StringMeasure::DamerauLevenshtein => {
                let max = a.chars().count().max(b.chars().count());
                if max == 0 {
                    0.0
                } else {
                    damerau_levenshtein(a, b) as f64 / max as f64
                }
            }
            StringMeasure::JaroWinkler => 1.0 - jaro_winkler(a, b),
            StringMeasure::BigramDice => 1.0 - bigram_dice(a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("OBSW001", "OBSW002"), 1);
    }

    #[test]
    fn damerau_counts_transposition_once() {
        assert_eq!(levenshtein("ab", "ba"), 2);
        assert_eq!(damerau_levenshtein("ab", "ba"), 1);
        assert_eq!(damerau_levenshtein("ca", "abc"), 3); // OSA, not full DL
        assert_eq!(damerau_levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro("martha", "marhta") - 0.944_444).abs() < 1e-5);
        assert!((jaro("dixon", "dicksonx") - 0.766_666).abs() < 1e-5);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_boosts_shared_prefix() {
        let jw = jaro_winkler("dwayne", "duane");
        assert!((jw - 0.84).abs() < 1e-9, "{jw}");
        assert!(jaro_winkler("prefixed", "prefixes") > jaro("prefixed", "prefixes"));
    }

    #[test]
    fn bigram_dice_values() {
        assert_eq!(bigram_dice("night", "night"), 1.0);
        assert!((bigram_dice("night", "nacht") - 0.25).abs() < 1e-12);
        assert_eq!(bigram_dice("a", "b"), 0.0);
        assert_eq!(bigram_dice("a", "a"), 1.0);
    }

    #[test]
    fn normalised_distances_identity_and_range() {
        let pairs = [
            ("", ""),
            ("start-up", "start-up"),
            ("start-up", "shut-down"),
            ("OBSW001", "OBSW0054"),
            ("a", "aaaa"),
        ];
        for m in StringMeasure::ALL {
            for (a, b) in pairs {
                let d = m.distance(a, b);
                assert!(
                    (0.0..=1.0 + 1e-12).contains(&d),
                    "{}({a},{b}) = {d}",
                    m.name()
                );
                if a == b {
                    assert_eq!(d, 0.0, "{}", m.name());
                }
            }
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(StringMeasure::default().name(), "levenshtein");
    }

    proptest! {
        #[test]
        fn levenshtein_symmetry(a in ".{0,12}", b in ".{0,12}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn levenshtein_triangle(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        #[test]
        fn levenshtein_identity(a in ".{0,12}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
        }

        #[test]
        fn damerau_never_exceeds_levenshtein(a in "[a-d]{0,8}", b in "[a-d]{0,8}") {
            prop_assert!(damerau_levenshtein(&a, &b) <= levenshtein(&a, &b));
        }

        #[test]
        fn all_measures_symmetric(a in "[a-e]{0,8}", b in "[a-e]{0,8}") {
            for m in StringMeasure::ALL {
                let d1 = m.distance(&a, &b);
                let d2 = m.distance(&b, &a);
                prop_assert!((d1 - d2).abs() < 1e-12, "{} asymmetric", m.name());
            }
        }

        #[test]
        fn all_measures_unit_range(a in ".{0,10}", b in ".{0,10}") {
            for m in StringMeasure::ALL {
                let d = m.distance(&a, &b);
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&d));
            }
        }
    }
}
