//! Corpus-based information content (Resnik 1995).
//!
//! The paper cites Resnik's "information-based measure" for semantic
//! similarity. Resnik's original IC is *corpus-based*: `IC(c) = −log p(c)`
//! where `p(c)` is the probability of encountering concept `c` **or any of
//! its descendants** in a corpus. [`crate::Taxonomy::information_content`]
//! provides the intrinsic (structure-only) approximation used when no
//! corpus is available; this module provides the faithful corpus-based
//! variant, fed by concept occurrence counts (e.g. how often each
//! predicate appears across the requirement triples).

use crate::error::VocabError;
use crate::taxonomy::{ConceptId, Taxonomy};

/// Corpus-based information content over one taxonomy.
///
/// Counts are Laplace-smoothed (+1 per concept) so unseen concepts keep a
/// finite IC, then propagated to every ancestor; probabilities are masses
/// relative to the root. IC values are normalised to `[0, 1]` by the
/// maximum observed IC, so they can replace the intrinsic IC in
/// Resnik/Lin-style similarities directly.
#[derive(Debug, Clone)]
pub struct CorpusIc {
    /// Normalised IC per concept id.
    ic: Vec<f64>,
}

impl CorpusIc {
    /// Build from `(concept name, occurrence count)` pairs. Names missing
    /// from the taxonomy are an error (they signal a vocabulary mismatch);
    /// taxonomy concepts absent from `counts` get the smoothing count only.
    pub fn from_counts<'a>(
        taxonomy: &Taxonomy,
        counts: impl IntoIterator<Item = (&'a str, u64)>,
    ) -> Result<Self, VocabError> {
        // Laplace smoothing: every concept starts at 1.
        let mut mass = vec![1.0f64; taxonomy.len()];
        for (name, count) in counts {
            let id = taxonomy.require(name)?;
            mass[id.index()] += count as f64;
        }
        // Propagate each concept's own mass to all its ancestors (the
        // probability of a concept includes its descendants). `ancestors`
        // includes self, so add to ancestors excluding self.
        let own: Vec<f64> = mass.clone();
        for (id, _) in taxonomy.iter() {
            for anc in taxonomy.ancestors(id) {
                if anc != id {
                    mass[anc.index()] += own[id.index()];
                }
            }
        }
        let total = mass[taxonomy.root().index()];
        let raw: Vec<f64> = mass
            .iter()
            .map(|&m| {
                let p = (m / total).clamp(f64::MIN_POSITIVE, 1.0);
                -p.ln()
            })
            .collect();
        let max = raw.iter().copied().fold(0.0f64, f64::max);
        let ic = if max <= 0.0 {
            vec![0.0; raw.len()]
        } else {
            raw.into_iter().map(|v| v / max).collect()
        };
        Ok(CorpusIc { ic })
    }

    /// Normalised information content of a concept, in `[0, 1]` (the root
    /// is always 0).
    #[must_use]
    pub fn ic(&self, id: ConceptId) -> f64 {
        self.ic[id.index()]
    }

    /// Resnik similarity under corpus IC: `IC(lcs(a, b))`.
    #[must_use]
    pub fn resnik(&self, taxonomy: &Taxonomy, a: ConceptId, b: ConceptId) -> f64 {
        self.ic(taxonomy.lcs(a, b))
    }

    /// Lin similarity under corpus IC: `2·IC(lcs) / (IC(a) + IC(b))`
    /// (1 for identical concepts, 0 when both ICs vanish).
    #[must_use]
    pub fn lin(&self, taxonomy: &Taxonomy, a: ConceptId, b: ConceptId) -> f64 {
        if a == b {
            return 1.0;
        }
        let denom = self.ic(a) + self.ic(b);
        if denom <= 0.0 {
            return 0.0;
        }
        2.0 * self.resnik(taxonomy, a, b) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// root → vehicle → {car → {suv, sedan}, bike}; root → animal → dog
    fn sample() -> Taxonomy {
        let mut b = Taxonomy::builder("test");
        b.add("vehicle", &[]);
        b.add("car", &["vehicle"]);
        b.add("suv", &["car"]);
        b.add("sedan", &["car"]);
        b.add("bike", &["vehicle"]);
        b.add("animal", &["root"]);
        b.add("dog", &["animal"]);
        b.build().unwrap()
    }

    #[test]
    fn root_ic_is_zero_and_rare_leaves_score_high() {
        let t = sample();
        let ic = CorpusIc::from_counts(&t, [("suv", 1u64), ("sedan", 100), ("dog", 100)]).unwrap();
        assert_eq!(ic.ic(t.root()), 0.0);
        let suv = ic.ic(t.id_of("suv").unwrap());
        let sedan = ic.ic(t.id_of("sedan").unwrap());
        assert!(
            suv > sedan,
            "rarer concept carries more information: {suv} vs {sedan}"
        );
        assert!((0.0..=1.0).contains(&suv));
    }

    #[test]
    fn frequent_parents_score_lower_than_children() {
        let t = sample();
        let ic = CorpusIc::from_counts(&t, [("suv", 50u64), ("sedan", 50), ("bike", 50)]).unwrap();
        let car = ic.ic(t.id_of("car").unwrap());
        let suv = ic.ic(t.id_of("suv").unwrap());
        let vehicle = ic.ic(t.id_of("vehicle").unwrap());
        assert!(suv > car, "{suv} vs {car}");
        assert!(car > vehicle, "{car} vs {vehicle}");
    }

    #[test]
    fn resnik_and_lin_behave_like_similarities() {
        let t = sample();
        let ic = CorpusIc::from_counts(&t, [("suv", 10u64), ("sedan", 10), ("dog", 10)]).unwrap();
        let suv = t.id_of("suv").unwrap();
        let sedan = t.id_of("sedan").unwrap();
        let dog = t.id_of("dog").unwrap();

        let siblings = ic.resnik(&t, suv, sedan);
        let strangers = ic.resnik(&t, suv, dog);
        assert!(siblings > strangers, "{siblings} vs {strangers}");
        assert_eq!(strangers, 0.0, "LCS of strangers is the root");

        assert_eq!(ic.lin(&t, suv, suv), 1.0);
        let lin_sib = ic.lin(&t, suv, sedan);
        let lin_far = ic.lin(&t, suv, dog);
        assert!(lin_sib > lin_far);
        assert!((0.0..=1.0).contains(&lin_sib));
    }

    #[test]
    fn unknown_concept_in_counts_errors() {
        let t = sample();
        assert!(matches!(
            CorpusIc::from_counts(&t, [("ghost", 5u64)]),
            Err(VocabError::UnknownConcept(_))
        ));
    }

    #[test]
    fn empty_counts_degrade_to_structure_only() {
        let t = sample();
        let ic = CorpusIc::from_counts(&t, std::iter::empty::<(&str, u64)>()).unwrap();
        // With uniform smoothing, deeper/rarer-by-structure concepts still
        // score higher than broad ones.
        assert!(ic.ic(t.id_of("suv").unwrap()) > ic.ic(t.id_of("vehicle").unwrap()));
        assert_eq!(ic.ic(t.root()), 0.0);
    }

    #[test]
    fn single_node_taxonomy_is_all_zero() {
        let t = Taxonomy::builder("solo").build().unwrap();
        let ic = CorpusIc::from_counts(&t, std::iter::empty::<(&str, u64)>()).unwrap();
        assert_eq!(ic.ic(t.root()), 0.0);
        assert_eq!(ic.lin(&t, t.root(), t.root()), 1.0);
    }
}
