//! Seeded property tests for every `semtree-colz` codec.
//!
//! Deterministic under the vendored proptest stand-in: the generated
//! cases derive from `SEMTREE_PROPTEST_SEED` (default 0), so failures
//! replay exactly with `SEMTREE_PROPTEST_SEED=<seed> cargo test`.
//! Each codec gets three properties: bit-exact round-trip with exact
//! size accounting, rejection of every truncation point, and rejection
//! of corrupt input (mangled varints, over-length counts) — decoders
//! must return errors, never panic.

use proptest::prelude::*;
use semtree_colz::varint::{read_u64, write_u64};
use semtree_colz::{
    decode_column_exact, encode_column, ColumnCodec, DeltaColumn, F64Column, PointsColumn,
    RleColumn, TermDict, UIntColumn,
};

/// Round-trip + exact-size + truncation-rejection: the shared contract
/// every codec must satisfy for any input.
fn codec_contract<C: ColumnCodec>(items: &[C::Item])
where
    C::Item: PartialEq + std::fmt::Debug,
{
    let bytes = encode_column::<C>(items);
    assert_eq!(
        bytes.len(),
        C::encoded_len(items),
        "encoded_len must be exact"
    );
    let back = decode_column_exact::<C>(&bytes).expect("well-formed input must decode");
    assert_eq!(back.len(), items.len());
    // Truncation at every prefix must error (never panic, never
    // silently succeed).
    for cut in 0..bytes.len() {
        assert!(
            decode_column_exact::<C>(&bytes[..cut]).is_err(),
            "truncation at {cut}/{} must be rejected",
            bytes.len()
        );
    }
}

/// f64 comparison is bit-level (NaN and -0.0 must survive).
fn assert_bits_eq(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

/// An interesting f64 from raw entropy: mix of small ints, smooth
/// values, full-entropy bit patterns, and specials.
fn entropy_f64(raw: u64, select: u64) -> f64 {
    match select % 5 {
        0 => (raw % 1000) as f64,
        1 => (raw % 100_000) as f64 * 0.001 - 50.0,
        2 => f64::from_bits(raw),
        3 => [0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, f64::NAN][(raw % 5) as usize],
        _ => (raw % 16) as f64 * 2.5,
    }
}

proptest! {
    #[test]
    fn uint_column_contract(items in prop::collection::vec(0u64..u64::MAX, 0..200)) {
        codec_contract::<UIntColumn>(&items);
        let back = decode_column_exact::<UIntColumn>(&encode_column::<UIntColumn>(&items)).unwrap();
        prop_assert_eq!(back, items);
    }

    #[test]
    fn delta_column_contract(
        deltas in prop::collection::vec(0u64..1_000_000, 0..200),
        start in 0u64..u64::MAX / 2,
    ) {
        // Monotone input (the target shape) built from running sums...
        let mut monotone = Vec::with_capacity(deltas.len());
        let mut acc = start;
        for &d in &deltas {
            acc = acc.saturating_add(d);
            monotone.push(acc);
        }
        codec_contract::<DeltaColumn>(&monotone);
        let bytes = encode_column::<DeltaColumn>(&monotone);
        prop_assert_eq!(decode_column_exact::<DeltaColumn>(&bytes).unwrap(), monotone);
        // ...and raw (non-monotone) input must round-trip too.
        codec_contract::<DeltaColumn>(&deltas);
        let bytes = encode_column::<DeltaColumn>(&deltas);
        prop_assert_eq!(decode_column_exact::<DeltaColumn>(&bytes).unwrap(), deltas);
    }

    #[test]
    fn rle_column_contract(
        runs in prop::collection::vec((0u64..6, 1usize..20), 0..40),
    ) {
        let items: Vec<u64> = runs.iter().flat_map(|&(v, n)| vec![v; n]).collect();
        codec_contract::<RleColumn>(&items);
        let bytes = encode_column::<RleColumn>(&items);
        prop_assert_eq!(decode_column_exact::<RleColumn>(&bytes).unwrap(), items);
    }

    #[test]
    fn term_dict_contract(
        pool in prop::collection::vec("[a-f/]{0,12}", 1..12),
        picks in prop::collection::vec(0usize..64, 0..100),
    ) {
        let items: Vec<Vec<u8>> = picks
            .iter()
            .map(|&i| pool[i % pool.len()].as_bytes().to_vec())
            .collect();
        codec_contract::<TermDict>(&items);
        let bytes = encode_column::<TermDict>(&items);
        prop_assert_eq!(decode_column_exact::<TermDict>(&bytes).unwrap(), items);
    }

    #[test]
    fn f64_column_contract(
        raws in prop::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 0..150),
    ) {
        let items: Vec<f64> = raws.iter().map(|&(r, s)| entropy_f64(r, s)).collect();
        codec_contract::<F64Column>(&items);
        let back = decode_column_exact::<F64Column>(&encode_column::<F64Column>(&items)).unwrap();
        assert_bits_eq(&items, &back);
    }

    #[test]
    fn points_column_contract(
        raws in prop::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 0..120),
        dims in 1usize..6,
        ragged in 0u64..2,
    ) {
        let coords: Vec<f64> = raws.iter().map(|&(r, s)| entropy_f64(r, s)).collect();
        let items: Vec<Vec<f64>> = if ragged == 1 {
            // Ragged: point i has (i % (dims+1)) coords.
            let mut out = Vec::new();
            let mut rest = coords.as_slice();
            let mut i = 0;
            while !rest.is_empty() {
                let take = (i % (dims + 1)).min(rest.len());
                let (head, tail) = rest.split_at(take);
                out.push(head.to_vec());
                rest = tail;
                i += 1;
            }
            out
        } else {
            coords.chunks_exact(dims).map(<[f64]>::to_vec).collect()
        };
        codec_contract::<PointsColumn>(&items);
        let back =
            decode_column_exact::<PointsColumn>(&encode_column::<PointsColumn>(&items)).unwrap();
        prop_assert_eq!(back.len(), items.len());
        for (a, b) in items.iter().zip(&back) {
            assert_bits_eq(a, b);
        }
    }

    /// Single-byte corruption sweep: flip one byte anywhere in a valid
    /// encoding; decode must either fail cleanly or succeed — never
    /// panic — and an intact decode of the original must be unaffected.
    #[test]
    fn single_byte_corruption_never_panics(
        items in prop::collection::vec(0u64..50_000, 1..60),
        flip in (0usize..4096, 0u8..=255),
    ) {
        let bytes = encode_column::<DeltaColumn>(&items);
        let (pos, val) = flip;
        let mut mangled = bytes.clone();
        let pos = pos % mangled.len();
        mangled[pos] ^= val | 1; // guarantee a real change
        // Must not panic; may or may not decode.
        let _ = decode_column_exact::<DeltaColumn>(&mangled);
        prop_assert_eq!(decode_column_exact::<DeltaColumn>(&bytes).unwrap(), items);
    }

    /// Over-length counts: splice an inflated element count in front of
    /// a short body; every codec must reject it without allocating.
    #[test]
    fn overlength_counts_are_rejected(count in 1u64 << 32..u64::MAX, body in 0u8..=255) {
        let mut wire = Vec::new();
        write_u64(count, &mut wire);
        wire.push(body);
        prop_assert!(decode_column_exact::<UIntColumn>(&wire).is_err());
        prop_assert!(decode_column_exact::<DeltaColumn>(&wire).is_err());
        prop_assert!(decode_column_exact::<RleColumn>(&wire).is_err());
        prop_assert!(decode_column_exact::<TermDict>(&wire).is_err());
        prop_assert!(decode_column_exact::<F64Column>(&wire).is_err());
        prop_assert!(decode_column_exact::<PointsColumn>(&wire).is_err());
    }

    /// Corrupt varints: continuation chains that run past 10 bytes or
    /// off the end of the input are typed errors.
    #[test]
    fn corrupt_varints_are_rejected(len in 1usize..16, tail in 0u8..0x80) {
        let mut wire = vec![0x80u8; len];
        wire.push(tail | 0x80); // keep the chain unterminated
        let mut buf = wire.as_slice();
        prop_assert!(read_u64(&mut buf).is_err());
        let mut terminated = vec![0xffu8; len.min(12)];
        terminated.push(0x7f);
        let mut buf = terminated.as_slice();
        if len.min(12) >= 10 {
            prop_assert!(read_u64(&mut buf).is_err(), "overlong varint must fail");
        }
    }
}
