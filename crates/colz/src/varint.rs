//! LEB128 varints, zigzag, and the two integer column codecs built on
//! them: [`UIntColumn`] (plain varints) and [`DeltaColumn`]
//! (zigzagged first differences — one byte per element for the
//! monotone id/offset/LSN arrays it targets).

use crate::{check_count, ColumnCodec, ColzError};

/// Maximum bytes one LEB128-encoded `u64` may occupy. Ten 7-bit groups
/// cover 70 bits; anything longer is rejected as corrupt.
pub const MAX_VARINT_LEN: usize = 10;

/// Append `value` to `out` as an LEB128 varint.
pub fn write_u64(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Exact encoded size of `value` as an LEB128 varint.
pub fn len_u64(value: u64) -> usize {
    // 1 byte per started 7-bit group; value 0 still takes one byte.
    let bits = 64 - value.leading_zeros() as usize;
    bits.div_ceil(7).max(1)
}

/// Read one LEB128 varint from the front of `buf`, advancing it.
///
/// Rejects truncation, encodings longer than [`MAX_VARINT_LEN`] bytes,
/// and final-byte payloads that overflow 64 bits.
pub fn read_u64(buf: &mut &[u8]) -> Result<u64, ColzError> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(ColzError::Corrupt {
                context: "varint longer than 10 bytes",
            });
        }
        let payload = u64::from(byte & 0x7f);
        if shift == 63 && payload > 1 {
            return Err(ColzError::Corrupt {
                context: "varint overflows u64",
            });
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            *buf = &buf[i + 1..];
            return Ok(value);
        }
        shift += 7;
    }
    Err(ColzError::Truncated { context: "varint" })
}

/// Map a signed value onto an unsigned one with small absolute values
/// staying small (0, -1, 1, -2 → 0, 1, 2, 3).
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Plain varint column: `count` followed by each value as an LEB128
/// varint. The workhorse for id/payload columns with no exploitable
/// ordering.
pub struct UIntColumn;

impl ColumnCodec for UIntColumn {
    type Item = u64;

    fn encode(items: &[u64], out: &mut Vec<u8>) {
        write_u64(items.len() as u64, out);
        for &v in items {
            write_u64(v, out);
        }
    }

    fn encoded_len(items: &[u64]) -> usize {
        len_u64(items.len() as u64) + items.iter().map(|&v| len_u64(v)).sum::<usize>()
    }

    fn decode(buf: &mut &[u8]) -> Result<Vec<u64>, ColzError> {
        let count = read_u64(buf)?;
        let count = check_count(count, 8, buf.len())?;
        let mut items = Vec::with_capacity(count);
        for _ in 0..count {
            items.push(read_u64(buf)?);
        }
        Ok(items)
    }
}

/// Delta+varint column: `count`, then the zigzagged difference from the
/// previous value (first value differenced against 0), each as an
/// LEB128 varint.
///
/// For the monotone arrays this codec targets (LSNs, sorted ids, byte
/// offsets) every delta is small and non-negative, so elements encode
/// in one or two bytes; zigzag keeps arbitrary (non-monotone) input
/// correct rather than a precondition.
pub struct DeltaColumn;

impl ColumnCodec for DeltaColumn {
    type Item = u64;

    fn encode(items: &[u64], out: &mut Vec<u8>) {
        write_u64(items.len() as u64, out);
        let mut prev: u64 = 0;
        for &v in items {
            write_u64(zigzag(v.wrapping_sub(prev) as i64), out);
            prev = v;
        }
    }

    fn encoded_len(items: &[u64]) -> usize {
        let mut total = len_u64(items.len() as u64);
        let mut prev: u64 = 0;
        for &v in items {
            total += len_u64(zigzag(v.wrapping_sub(prev) as i64));
            prev = v;
        }
        total
    }

    fn decode(buf: &mut &[u8]) -> Result<Vec<u64>, ColzError> {
        let count = read_u64(buf)?;
        let count = check_count(count, 8, buf.len())?;
        let mut items = Vec::with_capacity(count);
        let mut prev: u64 = 0;
        for _ in 0..count {
            let delta = unzigzag(read_u64(buf)?);
            prev = prev.wrapping_add(delta as u64);
            items.push(prev);
        }
        Ok(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_column_exact, encode_column};

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut out = Vec::new();
            write_u64(v, &mut out);
            assert_eq!(out.len(), len_u64(v), "len mismatch for {v}");
            let mut buf = out.as_slice();
            assert_eq!(read_u64(&mut buf).unwrap(), v);
            assert!(buf.is_empty());
        }
    }

    #[test]
    fn varint_rejects_truncation_overlong_and_overflow() {
        // Truncated: continuation bit set with nothing after.
        let mut buf: &[u8] = &[0x80];
        assert_eq!(
            read_u64(&mut buf),
            Err(ColzError::Truncated { context: "varint" })
        );
        // Overlong: 11 continuation bytes.
        let overlong = [0x80u8; 11];
        let mut buf: &[u8] = &overlong;
        assert!(matches!(read_u64(&mut buf), Err(ColzError::Corrupt { .. })));
        // Overflow: 10th byte carries more than the single remaining bit.
        let mut wire = [0xffu8; 10];
        wire[9] = 0x02;
        let mut buf: &[u8] = &wire;
        assert!(matches!(read_u64(&mut buf), Err(ColzError::Corrupt { .. })));
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn uint_column_round_trips_and_sizes_exactly() {
        let items = vec![0u64, 5, 300, u64::MAX, 42];
        let bytes = encode_column::<UIntColumn>(&items);
        assert_eq!(bytes.len(), UIntColumn::encoded_len(&items));
        assert_eq!(decode_column_exact::<UIntColumn>(&bytes).unwrap(), items);
    }

    #[test]
    fn delta_column_is_tiny_for_monotone_input() {
        let items: Vec<u64> = (1000..2000).collect();
        let bytes = encode_column::<DeltaColumn>(&items);
        assert_eq!(bytes.len(), DeltaColumn::encoded_len(&items));
        // count (2 bytes) + first delta (zigzag 1000 = 2 bytes) + 999
        // one-byte deltas.
        assert!(bytes.len() <= 2 + 2 + 999, "got {}", bytes.len());
        assert_eq!(decode_column_exact::<DeltaColumn>(&bytes).unwrap(), items);
    }

    #[test]
    fn delta_column_handles_non_monotone_and_extremes() {
        let items = vec![u64::MAX, 0, 1, u64::MAX / 2, 3];
        let bytes = encode_column::<DeltaColumn>(&items);
        assert_eq!(decode_column_exact::<DeltaColumn>(&bytes).unwrap(), items);
    }

    #[test]
    fn columns_reject_overlength_counts() {
        // Declared count of u64::MAX with 2 bytes of input.
        let mut bytes = Vec::new();
        write_u64(u64::MAX, &mut bytes);
        bytes.push(0);
        let mut buf = bytes.as_slice();
        assert!(matches!(
            UIntColumn::decode(&mut buf),
            Err(ColzError::Corrupt { .. })
        ));
        let mut buf = bytes.as_slice();
        assert!(matches!(
            DeltaColumn::decode(&mut buf),
            Err(ColzError::Corrupt { .. })
        ));
    }

    #[test]
    fn columns_reject_truncated_bodies() {
        let items = vec![1u64, 2, 3, 4];
        let bytes = encode_column::<UIntColumn>(&items);
        for cut in 0..bytes.len() {
            let mut buf = &bytes[..cut];
            assert!(UIntColumn::decode(&mut buf).is_err(), "cut at {cut}");
        }
    }
}
