//! Per-partition term dictionary: byte-string interning with a
//! sorted-id remap and front-coded term storage.
//!
//! A stream of (heavily repeated) byte terms encodes as:
//!
//! ```text
//! n_terms        varint          distinct terms, sorted ascending
//! terms[n]       lcp varint ·    shared prefix with the previous term
//!                suffix_len ·    remaining bytes
//!                suffix bytes
//! n_occurrences  varint
//! ids[n_occ]     varint          index into the sorted dictionary
//! ```
//!
//! Sorting the dictionary makes ids stable across re-encodes (the
//! "sorted-id remap"), maximizes shared prefixes for the front coding,
//! and lets the decoder verify strict ordering — an unsorted or
//! duplicated dictionary is rejected as corrupt.

use crate::varint::{len_u64, read_u64, write_u64};
use crate::{check_count, ColumnCodec, ColzError};

/// The term-dictionary codec. Items are raw byte terms; the encoded
/// form stores each distinct term once.
pub struct TermDict;

/// Longest common prefix of two byte strings.
fn lcp(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// Sorted distinct terms and the id stream for `items`.
fn intern(items: &[Vec<u8>]) -> (Vec<&[u8]>, Vec<u64>) {
    let mut terms: Vec<&[u8]> = items.iter().map(Vec::as_slice).collect();
    terms.sort_unstable();
    terms.dedup();
    let ids = items
        .iter()
        .map(|item| {
            // Always present: `terms` is exactly the distinct items.
            terms
                .binary_search(&item.as_slice())
                .map(|i| i as u64)
                .unwrap_or_default()
        })
        .collect();
    (terms, ids)
}

impl ColumnCodec for TermDict {
    type Item = Vec<u8>;

    fn encode(items: &[Vec<u8>], out: &mut Vec<u8>) {
        let (terms, ids) = intern(items);
        write_u64(terms.len() as u64, out);
        let mut prev: &[u8] = &[];
        for term in &terms {
            let shared = lcp(prev, term);
            write_u64(shared as u64, out);
            write_u64((term.len() - shared) as u64, out);
            out.extend_from_slice(&term[shared..]);
            prev = term;
        }
        write_u64(ids.len() as u64, out);
        for id in ids {
            write_u64(id, out);
        }
    }

    fn encoded_len(items: &[Vec<u8>]) -> usize {
        let (terms, ids) = intern(items);
        let mut total = len_u64(terms.len() as u64);
        let mut prev: &[u8] = &[];
        for term in &terms {
            let shared = lcp(prev, term);
            total += len_u64(shared as u64) + len_u64((term.len() - shared) as u64);
            total += term.len() - shared;
            prev = term;
        }
        total += len_u64(ids.len() as u64);
        total += ids.iter().map(|&id| len_u64(id)).sum::<usize>();
        total
    }

    fn decode(buf: &mut &[u8]) -> Result<Vec<Vec<u8>>, ColzError> {
        let n_terms = check_count(read_u64(buf)?, 16, buf.len())?;
        let mut terms: Vec<Vec<u8>> = Vec::with_capacity(n_terms);
        for _ in 0..n_terms {
            let shared = usize::try_from(read_u64(buf)?).map_err(|_| ColzError::Corrupt {
                context: "term prefix length overflows usize",
            })?;
            let suffix_len = usize::try_from(read_u64(buf)?).map_err(|_| ColzError::Corrupt {
                context: "term suffix length overflows usize",
            })?;
            let prev: &[u8] = terms.last().map(Vec::as_slice).unwrap_or_default();
            if shared > prev.len() {
                return Err(ColzError::Corrupt {
                    context: "term shares more prefix than the previous term has",
                });
            }
            if suffix_len > buf.len() {
                return Err(ColzError::Truncated {
                    context: "term suffix",
                });
            }
            let mut term = Vec::with_capacity(shared + suffix_len);
            term.extend_from_slice(&prev[..shared]);
            term.extend_from_slice(&buf[..suffix_len]);
            *buf = &buf[suffix_len..];
            if let Some(last) = terms.last() {
                if *last >= term {
                    return Err(ColzError::Corrupt {
                        context: "dictionary terms not strictly sorted",
                    });
                }
            }
            terms.push(term);
        }
        let n_occ = check_count(read_u64(buf)?, 8, buf.len())?;
        let mut items = Vec::with_capacity(n_occ);
        for _ in 0..n_occ {
            let id = read_u64(buf)?;
            let term =
                usize::try_from(id)
                    .ok()
                    .and_then(|i| terms.get(i))
                    .ok_or(ColzError::Corrupt {
                        context: "term id out of dictionary range",
                    })?;
            items.push(term.clone());
        }
        Ok(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_column_exact, encode_column};

    fn terms(items: &[&str]) -> Vec<Vec<u8>> {
        items.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    #[test]
    fn round_trips_with_exact_size() {
        let items = terms(&[
            "semantic", "semtree", "semantic", "query", "semtree", "semtree", "",
        ]);
        let bytes = encode_column::<TermDict>(&items);
        assert_eq!(bytes.len(), TermDict::encoded_len(&items));
        assert_eq!(decode_column_exact::<TermDict>(&bytes).unwrap(), items);
    }

    #[test]
    fn repetition_compresses_below_verbatim() {
        let items: Vec<Vec<u8>> = (0..1000)
            .map(|i| format!("http://example.org/term/{}", i % 8).into_bytes())
            .collect();
        let verbatim: usize = items.iter().map(|t| 8 + t.len()).sum();
        let bytes = encode_column::<TermDict>(&items);
        assert!(
            bytes.len() * 10 < verbatim,
            "dict {} vs verbatim {verbatim}",
            bytes.len()
        );
        assert_eq!(decode_column_exact::<TermDict>(&bytes).unwrap(), items);
    }

    #[test]
    fn front_coding_exploits_shared_prefixes() {
        let items = terms(&["prefix/aaaa", "prefix/aaab", "prefix/aaac"]);
        let bytes = encode_column::<TermDict>(&items);
        // 3 terms share "prefix/aaa": only the first stores it.
        let stored_bytes: usize = bytes.len();
        assert!(stored_bytes < 11 * 3, "got {stored_bytes}");
    }

    #[test]
    fn rejects_out_of_range_ids_and_unsorted_dicts() {
        let items = terms(&["a", "b"]);
        let bytes = encode_column::<TermDict>(&items);
        // Corrupt the last id (occurrence of "b" = id 1) to 0x7f.
        let mut bad = bytes.clone();
        *bad.last_mut().unwrap() = 0x7f;
        assert!(matches!(
            decode_column_exact::<TermDict>(&bad),
            Err(ColzError::Corrupt { .. })
        ));
        // Hand-build an unsorted dictionary: terms "b" then "a".
        let mut wire = Vec::new();
        write_u64(2, &mut wire); // n_terms
        write_u64(0, &mut wire);
        write_u64(1, &mut wire);
        wire.push(b'b');
        write_u64(0, &mut wire);
        write_u64(1, &mut wire);
        wire.push(b'a');
        write_u64(0, &mut wire); // no occurrences
        assert!(matches!(
            decode_column_exact::<TermDict>(&wire),
            Err(ColzError::Corrupt { .. })
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let items = terms(&["alpha", "alps", "beta", "alpha"]);
        let bytes = encode_column::<TermDict>(&items);
        for cut in 0..bytes.len() {
            assert!(
                decode_column_exact::<TermDict>(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn rejects_prefix_longer_than_previous_term() {
        let mut wire = Vec::new();
        write_u64(2, &mut wire); // n_terms
        write_u64(0, &mut wire); // term 0: lcp 0
        write_u64(1, &mut wire); // len 1
        wire.push(b'x');
        write_u64(9, &mut wire); // term 1: lcp 9 > len("x")
        write_u64(0, &mut wire);
        write_u64(0, &mut wire);
        assert!(matches!(
            decode_column_exact::<TermDict>(&wire),
            Err(ColzError::Corrupt { .. })
        ));
    }
}
