//! Run-length encoding for repetitive snapshot records.
//!
//! Snapshot columns like node kinds, depths, parent tags, and WAL
//! record kinds are long runs of a few small values. The layout is:
//!
//! ```text
//! count  varint        total items across all runs
//! runs   (value varint, run_len varint)*   until the runs sum to count
//! ```
//!
//! The decoder rejects zero-length runs and runs that overshoot the
//! declared total, so every encoding of a column is canonical in
//! length.

use crate::varint::{len_u64, read_u64, write_u64};
use crate::{ColumnCodec, ColzError};

/// The run-length codec over `u64` items (narrower columns cast in and
/// out — tags, depths and kinds all fit losslessly).
pub struct RleColumn;

/// Call `emit(value, run_len)` for each maximal run in `items`.
fn for_each_run(items: &[u64], mut emit: impl FnMut(u64, u64)) {
    let mut iter = items.iter();
    let Some(&first) = iter.next() else {
        return;
    };
    let mut value = first;
    let mut run: u64 = 1;
    for &v in iter {
        if v == value {
            run += 1;
        } else {
            emit(value, run);
            value = v;
            run = 1;
        }
    }
    emit(value, run);
}

impl ColumnCodec for RleColumn {
    type Item = u64;

    fn encode(items: &[u64], out: &mut Vec<u8>) {
        write_u64(items.len() as u64, out);
        for_each_run(items, |value, run| {
            write_u64(value, out);
            write_u64(run, out);
        });
    }

    fn encoded_len(items: &[u64]) -> usize {
        let mut total = len_u64(items.len() as u64);
        for_each_run(items, |value, run| {
            total += len_u64(value) + len_u64(run);
        });
        total
    }

    fn decode(buf: &mut &[u8]) -> Result<Vec<u64>, ColzError> {
        let count = read_u64(buf)?;
        // A run covers any number of items in 2 bytes, so the count is
        // not byte-bounded; only the output allocation must be. Cap the
        // upfront reservation, let the run loop grow the rest honestly.
        let count = usize::try_from(count).map_err(|_| ColzError::Corrupt {
            context: "rle item count overflows usize",
        })?;
        let mut items = Vec::with_capacity(count.min(buf.len().saturating_mul(16)));
        while items.len() < count {
            let value = read_u64(buf)?;
            let run = read_u64(buf)?;
            if run == 0 {
                return Err(ColzError::Corrupt {
                    context: "rle run of length zero",
                });
            }
            let run = usize::try_from(run).map_err(|_| ColzError::Corrupt {
                context: "rle run length overflows usize",
            })?;
            if run > count - items.len() {
                return Err(ColzError::Corrupt {
                    context: "rle runs overshoot the declared count",
                });
            }
            items.resize(items.len() + run, value);
        }
        Ok(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_column_exact, encode_column};

    #[test]
    fn round_trips_with_exact_size() {
        for items in [
            vec![],
            vec![7u64],
            vec![0, 0, 0, 1, 1, 2, 0, 0],
            vec![u64::MAX; 100],
            (0..50).collect::<Vec<u64>>(),
        ] {
            let bytes = encode_column::<RleColumn>(&items);
            assert_eq!(bytes.len(), RleColumn::encoded_len(&items));
            assert_eq!(decode_column_exact::<RleColumn>(&bytes).unwrap(), items);
        }
    }

    #[test]
    fn long_runs_collapse() {
        let mut items = vec![3u64; 100_000];
        items.extend(vec![9u64; 100_000]);
        let bytes = encode_column::<RleColumn>(&items);
        // count (3 bytes) + two (value, run) pairs.
        assert!(bytes.len() <= 3 + 2 * 4, "got {}", bytes.len());
        assert_eq!(decode_column_exact::<RleColumn>(&bytes).unwrap(), items);
    }

    #[test]
    fn rejects_zero_runs_overshoot_and_truncation() {
        // Zero-length run.
        let mut wire = Vec::new();
        write_u64(2, &mut wire);
        write_u64(5, &mut wire);
        write_u64(0, &mut wire);
        assert!(matches!(
            decode_column_exact::<RleColumn>(&wire),
            Err(ColzError::Corrupt { .. })
        ));
        // Overshooting run: declares 2 items, run covers 3.
        let mut wire = Vec::new();
        write_u64(2, &mut wire);
        write_u64(5, &mut wire);
        write_u64(3, &mut wire);
        assert!(matches!(
            decode_column_exact::<RleColumn>(&wire),
            Err(ColzError::Corrupt { .. })
        ));
        // Truncation at every prefix.
        let items = vec![1u64, 1, 2, 2, 2, 3];
        let bytes = encode_column::<RleColumn>(&items);
        for cut in 0..bytes.len() {
            assert!(
                decode_column_exact::<RleColumn>(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn huge_declared_count_does_not_overallocate() {
        // count u64::MAX with a two-byte body must fail fast without a
        // proportional allocation.
        let mut wire = Vec::new();
        write_u64(u64::MAX, &mut wire);
        write_u64(1, &mut wire);
        assert!(decode_column_exact::<RleColumn>(&wire).is_err());
    }
}
