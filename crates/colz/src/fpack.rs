//! Bit-packed f64 point columns.
//!
//! The primary layout is XOR-of-previous with leading/trailing-zero
//! window headers (the Gorilla/TSZ scheme): each value is XORed with
//! its predecessor and only the meaningful bits of the XOR are stored,
//! reusing the previous window when it still fits. That wins on
//! smoothly-varying series but barely compresses columns whose values
//! repeat from a small set — exactly what FastMap coordinates built
//! from a small vocabulary look like. So [`F64Column`] is adaptive: it
//! also sizes a value-dictionary layout (sorted distinct bit patterns
//! via delta+varint, one varint id per value) and emits whichever is
//! smaller, tagged by a mode byte:
//!
//! ```text
//! count     varint
//! mode      1 byte            0 = XOR bit-pack, 1 = value dictionary
//! body_len  varint
//! body      body_len bytes
//! ```
//!
//! Values round-trip bit-exactly (including NaN payloads and -0.0).

use crate::varint::{len_u64, read_u64, write_u64};
use crate::DeltaColumn;
use crate::{check_count, ColumnCodec, ColzError};

/// Mode byte: XOR-of-previous bit packing.
const MODE_XOR: u8 = 0;
/// Mode byte: sorted value dictionary + varint ids.
const MODE_DICT: u8 = 1;

// ---------------------------------------------------------------------
// Bit-level sinks and sources.
// ---------------------------------------------------------------------

/// Destination for a bit stream: a real byte buffer or a pure counter,
/// so encode and exact-size accounting share one code path.
trait BitSink {
    /// Append the low `n` bits of `value`, most significant first.
    fn put(&mut self, value: u64, n: u32);
}

/// Packs bits MSB-first into bytes.
struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the final partial byte (0..8; 0 means byte-aligned).
    used: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            bytes: Vec::new(),
            used: 0,
        }
    }

    /// The padded byte stream.
    fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

impl BitSink for BitWriter {
    fn put(&mut self, value: u64, n: u32) {
        let mut left = n;
        while left > 0 {
            if self.used == 0 {
                self.bytes.push(0);
            }
            let room = 8 - self.used;
            let take = room.min(left);
            let shifted = (value >> (left - take)) as u8 & ((1u16 << take) - 1) as u8;
            if let Some(last) = self.bytes.last_mut() {
                *last |= shifted << (room - take);
            }
            self.used = (self.used + take) % 8;
            left -= take;
        }
    }
}

/// Counts bits without materializing them.
struct BitCounter {
    bits: usize,
}

impl BitSink for BitCounter {
    fn put(&mut self, _value: u64, n: u32) {
        self.bits += n as usize;
    }
}

/// Reads bits MSB-first from a byte slice; running out is `Truncated`.
struct BitReader<'a> {
    bytes: &'a [u8],
    pos_bits: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos_bits: 0 }
    }

    fn take(&mut self, n: u32) -> Result<u64, ColzError> {
        let mut value: u64 = 0;
        for _ in 0..n {
            let byte = self
                .bytes
                .get(self.pos_bits / 8)
                .ok_or(ColzError::Truncated {
                    context: "xor bit stream",
                })?;
            let bit = (byte >> (7 - (self.pos_bits % 8))) & 1;
            value = (value << 1) | u64::from(bit);
            self.pos_bits += 1;
        }
        Ok(value)
    }
}

// ---------------------------------------------------------------------
// XOR bit-packing (mode 0).
// ---------------------------------------------------------------------

/// Stream the XOR encoding of `items` into `sink`.
fn xor_encode(items: &[f64], sink: &mut impl BitSink) {
    let mut prev_bits: u64 = 0;
    // An impossible window (leading + trailing > 64) forces the first
    // non-zero XOR to write a fresh header.
    let mut win_leading: u32 = 65;
    let mut win_trailing: u32 = 65;
    for (i, &v) in items.iter().enumerate() {
        let bits = v.to_bits();
        if i == 0 {
            sink.put(bits, 64);
            prev_bits = bits;
            continue;
        }
        let xor = bits ^ prev_bits;
        prev_bits = bits;
        if xor == 0 {
            sink.put(0, 1);
            continue;
        }
        sink.put(1, 1);
        let leading = xor.leading_zeros().min(63);
        let trailing = xor.trailing_zeros();
        if leading >= win_leading && trailing >= win_trailing {
            // Fits the previous window: reuse it.
            let meaningful = 64 - win_leading - win_trailing;
            sink.put(0, 1);
            sink.put(xor >> win_trailing, meaningful);
        } else {
            // New window: 6 bits leading, 6 bits (meaningful - 1).
            let meaningful = 64 - leading - trailing;
            sink.put(1, 1);
            sink.put(u64::from(leading), 6);
            sink.put(u64::from(meaningful - 1), 6);
            sink.put(xor >> trailing, meaningful);
            win_leading = leading;
            win_trailing = trailing;
        }
    }
}

/// Exact byte size of the XOR body for `items`.
fn xor_body_len(items: &[f64]) -> usize {
    let mut counter = BitCounter { bits: 0 };
    xor_encode(items, &mut counter);
    counter.bits.div_ceil(8)
}

/// Decode `count` values from an XOR body.
fn xor_decode(body: &[u8], count: usize) -> Result<Vec<f64>, ColzError> {
    let mut reader = BitReader::new(body);
    let mut items = Vec::with_capacity(count);
    let mut prev_bits: u64 = 0;
    let mut win_leading: u32 = 65;
    let mut win_trailing: u32 = 65;
    for i in 0..count {
        if i == 0 {
            prev_bits = reader.take(64)?;
            items.push(f64::from_bits(prev_bits));
            continue;
        }
        if reader.take(1)? == 0 {
            items.push(f64::from_bits(prev_bits));
            continue;
        }
        if reader.take(1)? == 1 {
            let leading = reader.take(6)? as u32;
            let meaningful = reader.take(6)? as u32 + 1;
            if leading + meaningful > 64 {
                return Err(ColzError::Corrupt {
                    context: "xor window exceeds 64 bits",
                });
            }
            win_leading = leading;
            win_trailing = 64 - leading - meaningful;
        } else if win_leading + win_trailing > 64 {
            return Err(ColzError::Corrupt {
                context: "xor window reused before one was defined",
            });
        }
        let meaningful = 64 - win_leading - win_trailing;
        let xor = reader.take(meaningful)? << win_trailing;
        prev_bits ^= xor;
        items.push(f64::from_bits(prev_bits));
    }
    // The body must be exactly the consumed bits rounded up to a byte:
    // whole trailing bytes of garbage are corruption, not padding.
    if reader.pos_bits.div_ceil(8) != body.len() {
        return Err(ColzError::Corrupt {
            context: "xor body longer than its bit stream",
        });
    }
    Ok(items)
}

// ---------------------------------------------------------------------
// Value dictionary (mode 1).
// ---------------------------------------------------------------------

/// Sorted distinct bit patterns and the id stream for `items`.
fn dict_intern(items: &[f64]) -> (Vec<u64>, Vec<u64>) {
    let mut patterns: Vec<u64> = items.iter().map(|v| v.to_bits()).collect();
    patterns.sort_unstable();
    patterns.dedup();
    let ids = items
        .iter()
        .map(|v| {
            patterns
                .binary_search(&v.to_bits())
                .map(|i| i as u64)
                .unwrap_or_default()
        })
        .collect();
    (patterns, ids)
}

/// Exact byte size of the dictionary body for `items`.
fn dict_body_len(items: &[f64]) -> usize {
    let (patterns, ids) = dict_intern(items);
    DeltaColumn::encoded_len(&patterns) + ids.iter().map(|&id| len_u64(id)).sum::<usize>()
}

/// Append the dictionary body for `items` to `out`.
fn dict_encode(items: &[f64], out: &mut Vec<u8>) {
    let (patterns, ids) = dict_intern(items);
    DeltaColumn::encode(&patterns, out);
    for id in ids {
        write_u64(id, out);
    }
}

/// Decode `count` values from a dictionary body.
fn dict_decode(mut body: &[u8], count: usize) -> Result<Vec<f64>, ColzError> {
    let patterns = DeltaColumn::decode(&mut body)?;
    let mut items = Vec::with_capacity(count);
    for _ in 0..count {
        let id = read_u64(&mut body)?;
        let pattern = usize::try_from(id)
            .ok()
            .and_then(|i| patterns.get(i))
            .ok_or(ColzError::Corrupt {
                context: "f64 dictionary id out of range",
            })?;
        items.push(f64::from_bits(*pattern));
    }
    if body.is_empty() {
        Ok(items)
    } else {
        Err(ColzError::Corrupt {
            context: "trailing bytes in f64 dictionary body",
        })
    }
}

// ---------------------------------------------------------------------
// The adaptive column.
// ---------------------------------------------------------------------

/// Adaptive bit-packed f64 column: XOR-of-previous bit packing or a
/// sorted value dictionary, whichever is smaller for the block.
pub struct F64Column;

/// Pick the smaller mode for `items`; returns `(mode, body_len)`.
fn choose_mode(items: &[f64]) -> (u8, usize) {
    let xor = xor_body_len(items);
    let dict = dict_body_len(items);
    if dict < xor {
        (MODE_DICT, dict)
    } else {
        (MODE_XOR, xor)
    }
}

impl ColumnCodec for F64Column {
    type Item = f64;

    fn encode(items: &[f64], out: &mut Vec<u8>) {
        let (mode, body_len) = choose_mode(items);
        write_u64(items.len() as u64, out);
        out.push(mode);
        write_u64(body_len as u64, out);
        if mode == MODE_DICT {
            dict_encode(items, out);
        } else {
            let mut writer = BitWriter::new();
            xor_encode(items, &mut writer);
            out.extend_from_slice(&writer.finish());
        }
    }

    fn encoded_len(items: &[f64]) -> usize {
        let (_, body_len) = choose_mode(items);
        len_u64(items.len() as u64) + 1 + len_u64(body_len as u64) + body_len
    }

    fn decode(buf: &mut &[u8]) -> Result<Vec<f64>, ColzError> {
        // Every value costs >= 1 bit in XOR mode and >= 1 bit
        // (amortized) in dictionary mode; the real guard is body_len.
        let count = check_count(read_u64(buf)?, 1, buf.len())?;
        let (&mode, rest) = buf.split_first().ok_or(ColzError::Truncated {
            context: "f64 column mode byte",
        })?;
        *buf = rest;
        let body_len = usize::try_from(read_u64(buf)?).map_err(|_| ColzError::Corrupt {
            context: "f64 column body length overflows usize",
        })?;
        if body_len > buf.len() {
            return Err(ColzError::Truncated {
                context: "f64 column body",
            });
        }
        let body = &buf[..body_len];
        *buf = &buf[body_len..];
        match mode {
            MODE_XOR => {
                if count == 0 && !body.is_empty() {
                    return Err(ColzError::Corrupt {
                        context: "nonempty xor body for empty column",
                    });
                }
                xor_decode(body, count)
            }
            MODE_DICT => dict_decode(body, count),
            _ => Err(ColzError::Corrupt {
                context: "unknown f64 column mode",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_column_exact, encode_column};

    fn round_trip(items: &[f64]) {
        let bytes = encode_column::<F64Column>(items);
        assert_eq!(bytes.len(), F64Column::encoded_len(items), "exact size");
        let back = decode_column_exact::<F64Column>(&bytes).unwrap();
        assert_eq!(back.len(), items.len());
        for (a, b) in items.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-exact round trip");
        }
    }

    #[test]
    fn round_trips_edge_values() {
        round_trip(&[]);
        round_trip(&[0.0]);
        round_trip(&[
            0.0,
            -0.0,
            1.0,
            -1.0,
            f64::MIN,
            f64::MAX,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::MIN_POSITIVE,
            f64::EPSILON,
        ]);
    }

    #[test]
    fn constant_series_packs_to_a_bit_per_value() {
        let items = vec![42.5f64; 1000];
        let bytes = encode_column::<F64Column>(&items);
        // 8000 verbatim bytes -> one raw value + ~1 bit each.
        assert!(bytes.len() < 200, "got {}", bytes.len());
        round_trip(&items);
    }

    #[test]
    fn smooth_series_uses_xor_windows() {
        let items: Vec<f64> = (0..500).map(|i| 100.0 + f64::from(i) * 0.25).collect();
        let bytes = encode_column::<F64Column>(&items);
        assert!(bytes.len() < 8 * items.len() / 2, "got {}", bytes.len());
        round_trip(&items);
    }

    #[test]
    fn small_value_set_switches_to_dictionary() {
        // 9 distinct irregular doubles repeated 1000 times — XOR sees
        // noise, the dictionary sees 9 patterns + 1-byte ids.
        let palette: Vec<f64> = (0..9)
            .map(|i| (f64::from(i) * 0.7321).sin() * 1e9)
            .collect();
        let items: Vec<f64> = (0..1000).map(|i| palette[i * 7 % 9]).collect();
        let bytes = encode_column::<F64Column>(&items);
        assert_eq!(bytes[bytes_mode_offset(&bytes)], MODE_DICT);
        assert!(bytes.len() < 1200, "got {}", bytes.len());
        round_trip(&items);
    }

    /// Offset of the mode byte (just past the count varint).
    fn bytes_mode_offset(bytes: &[u8]) -> usize {
        let mut buf = bytes;
        crate::varint::read_u64(&mut buf).unwrap();
        bytes.len() - buf.len()
    }

    #[test]
    fn truncation_is_rejected_everywhere() {
        let items: Vec<f64> = (0..50).map(|i| f64::from(i) * 1.5 - 3.0).collect();
        let bytes = encode_column::<F64Column>(&items);
        for cut in 0..bytes.len() {
            assert!(
                decode_column_exact::<F64Column>(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn unknown_mode_and_bad_window_are_corrupt() {
        let items = vec![1.0f64, 2.0];
        let mut bytes = encode_column::<F64Column>(&items);
        let off = bytes_mode_offset(&bytes);
        bytes[off] = 9;
        assert!(matches!(
            decode_column_exact::<F64Column>(&bytes),
            Err(ColzError::Corrupt { .. })
        ));
    }
}
