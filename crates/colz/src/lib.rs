//! `semtree-colz`: columnar compression codecs for the SemTree storage
//! layer.
//!
//! Four self-contained, dependency-free codecs, following the layouts
//! of "Compressed Indexes for Fast Search of Semantic Data"
//! (Perego/Pibiri/Venturini) adapted to SemTree's snapshot and WAL
//! record shapes:
//!
//! 1. [`TermDict`] — per-partition term dictionary: byte-string
//!    interning with a sorted-id remap and front-coded (shared-prefix)
//!    term storage. Encodes a stream of repeated terms as one sorted
//!    dictionary plus a varint id column.
//! 2. [`DeltaColumn`] / [`UIntColumn`] — delta+varint (LEB128)
//!    encoding for id/offset arrays. `DeltaColumn` stores zigzagged
//!    first differences, which collapse to one byte each for the
//!    monotone arrays (LSNs, offsets, sorted ids) it is meant for.
//! 3. [`F64Column`] — bit-packed f64 point columns: XOR-of-previous
//!    with leading/trailing-zero window headers (Gorilla-style), with
//!    an adaptive fallback to a value dictionary when a column has few
//!    distinct values (FastMap coordinates built from a small
//!    vocabulary compress far better that way).
//! 4. [`RleColumn`] — run-length encoding for repetitive snapshot
//!    records (node kinds, depths, parent tags, record kinds).
//!
//! On top of the four base codecs, [`PointsColumn`] composes them into
//! a codec for whole point sets (`Vec<Vec<f64>>`), picking the cheapest
//! of three layouts per block.
//!
//! Every codec implements [`ColumnCodec`]: `encode` (append to a byte
//! buffer), `encoded_len` (exact size accounting — always equal to the
//! bytes `encode` appends), and `decode` (consume from a byte slice).
//! Decoders are fuzz-friendly: truncated input, corrupt varints,
//! over-length counts, and out-of-range ids all return a typed
//! [`ColzError`] — production paths never panic. The crate takes no
//! locks and holds no state; it is a leaf in the workspace lock
//! hierarchy (see `semtree-check`'s `LOCK_RANKS`).

pub mod dict;
pub mod fpack;
pub mod points;
pub mod rle;
pub mod varint;

pub use dict::TermDict;
pub use fpack::F64Column;
pub use points::PointsColumn;
pub use rle::RleColumn;
pub use varint::{DeltaColumn, UIntColumn};

/// Typed decode failure. Decoders return this instead of panicking on
/// any malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColzError {
    /// The input ended before the declared content did.
    Truncated {
        /// What the decoder was reading when the bytes ran out.
        context: &'static str,
    },
    /// The input is structurally invalid (overlong varint, id out of
    /// dictionary range, run of length zero, impossible count, ...).
    Corrupt {
        /// What invariant the input violated.
        context: &'static str,
    },
}

impl std::fmt::Display for ColzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColzError::Truncated { context } => {
                write!(f, "truncated columnar input while reading {context}")
            }
            ColzError::Corrupt { context } => write!(f, "corrupt columnar input: {context}"),
        }
    }
}

impl std::error::Error for ColzError {}

/// A columnar codec: a whole column of items encodes to bytes and
/// decodes back, with exact size accounting.
///
/// Contract (enforced by the round-trip suites):
/// - `encode` appends exactly `encoded_len(items)` bytes,
/// - `decode(&mut &encode(items))` yields `items` and consumes exactly
///   the encoded bytes (trailing bytes are left for the caller),
/// - `decode` of truncated or corrupt input returns `Err`, never
///   panics, and never attempts an allocation proportional to a
///   declared count it has not byte-bounded against the input.
pub trait ColumnCodec {
    /// The item type this codec compresses.
    type Item;

    /// Append the encoded column to `out`.
    fn encode(items: &[Self::Item], out: &mut Vec<u8>);

    /// Exact number of bytes `encode` will append for `items`.
    fn encoded_len(items: &[Self::Item]) -> usize;

    /// Decode one column from the front of `buf`, advancing it past the
    /// consumed bytes.
    fn decode(buf: &mut &[u8]) -> Result<Vec<Self::Item>, ColzError>;
}

/// Encode a column into a fresh buffer (convenience over
/// [`ColumnCodec::encode`]).
pub fn encode_column<C: ColumnCodec>(items: &[C::Item]) -> Vec<u8> {
    let mut out = Vec::with_capacity(C::encoded_len(items));
    C::encode(items, &mut out);
    out
}

/// Decode a column that must occupy `buf` exactly; trailing bytes are
/// an error.
pub fn decode_column_exact<C: ColumnCodec>(mut buf: &[u8]) -> Result<Vec<C::Item>, ColzError> {
    let items = C::decode(&mut buf)?;
    if buf.is_empty() {
        Ok(items)
    } else {
        Err(ColzError::Corrupt {
            context: "trailing bytes after column",
        })
    }
}

/// Guard a decoder-declared element count against the input actually
/// remaining: each element of the column costs at least `min_bits` on
/// the wire, so a count that implies more bits than remain is corrupt —
/// reject it *before* allocating anything proportional to the count.
pub(crate) fn check_count(
    count: u64,
    min_bits: usize,
    remaining_bytes: usize,
) -> Result<usize, ColzError> {
    let count_usize = usize::try_from(count).map_err(|_| ColzError::Corrupt {
        context: "element count overflows usize",
    })?;
    let implied_bits = count_usize.checked_mul(min_bits.max(1));
    let available_bits = remaining_bytes.saturating_mul(8);
    match implied_bits {
        Some(bits) if bits <= available_bits => Ok(count_usize),
        _ => Err(ColzError::Corrupt {
            context: "declared element count exceeds remaining input",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let t = ColzError::Truncated { context: "varint" };
        let c = ColzError::Corrupt { context: "bad id" };
        assert!(t.to_string().contains("truncated"));
        assert!(t.to_string().contains("varint"));
        assert!(c.to_string().contains("corrupt"));
        assert!(c.to_string().contains("bad id"));
    }

    #[test]
    fn exact_decode_rejects_trailing_bytes() {
        let mut bytes = encode_column::<UIntColumn>(&[1, 2, 3]);
        assert!(decode_column_exact::<UIntColumn>(&bytes).is_ok());
        bytes.push(0);
        assert_eq!(
            decode_column_exact::<UIntColumn>(&bytes),
            Err(ColzError::Corrupt {
                context: "trailing bytes after column",
            })
        );
    }
}
