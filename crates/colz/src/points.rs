//! Composite codec for whole point sets (`Vec<Vec<f64>>`), built from
//! the four base codecs.
//!
//! Point blocks dominate snapshot and WAL bytes, and which layout wins
//! depends on the workload: smoothly varying coordinates favor
//! per-dimension XOR columns, while occurrence streams (the same few
//! embedded points inserted many times, as the paper's triple
//! occurrences produce) favor a dictionary over whole points. The
//! encoder sizes all applicable layouts and emits the smallest:
//!
//! ```text
//! count  varint              number of points
//! lens   RleColumn           per-point dimension counts
//! mode   1 byte              0 flat · 1 transposed · 2 point dictionary
//! body
//!   mode 0: one F64Column over all coordinates, point-major
//!   mode 1: `dims` F64Columns, one per dimension (uniform dims only)
//!   mode 2: TermDict over points serialized as 8·len LE byte terms
//! ```

use crate::varint::{len_u64, read_u64, write_u64};
use crate::{check_count, ColumnCodec, ColzError, F64Column, RleColumn, TermDict};

/// Mode byte: a single coordinate column in point-major order.
const MODE_FLAT: u8 = 0;
/// Mode byte: one coordinate column per dimension.
const MODE_TRANSPOSED: u8 = 1;
/// Mode byte: dictionary of whole points.
const MODE_DICT: u8 = 2;

/// The composite point-set codec.
pub struct PointsColumn;

/// Uniform dimensionality of `items`, if any (`None` when ragged or
/// zero-dimensional; empty sets are uniform with 0 dims).
fn uniform_dims(items: &[Vec<f64>]) -> Option<usize> {
    let dims = items.first().map(Vec::len)?;
    (dims > 0 && items.iter().all(|p| p.len() == dims)).then_some(dims)
}

fn flat_coords(items: &[Vec<f64>]) -> Vec<f64> {
    items.iter().flatten().copied().collect()
}

fn dim_column(items: &[Vec<f64>], d: usize) -> Vec<f64> {
    items
        .iter()
        .map(|p| p.get(d).copied().unwrap_or_default())
        .collect()
}

/// A point as a byte term: its coordinates, little-endian, in order.
fn point_term(point: &[f64]) -> Vec<u8> {
    let mut term = Vec::with_capacity(point.len() * 8);
    for &c in point {
        term.extend_from_slice(&c.to_bits().to_le_bytes());
    }
    term
}

fn point_terms(items: &[Vec<f64>]) -> Vec<Vec<u8>> {
    items.iter().map(|p| point_term(p)).collect()
}

/// Pick the smallest body layout; returns `(mode, body_len)`.
fn choose_mode(items: &[Vec<f64>]) -> (u8, usize) {
    let flat = F64Column::encoded_len(&flat_coords(items));
    let mut best = (MODE_FLAT, flat);
    if let Some(dims) = uniform_dims(items) {
        let transposed: usize = (0..dims)
            .map(|d| F64Column::encoded_len(&dim_column(items, d)))
            .sum();
        if transposed < best.1 {
            best = (MODE_TRANSPOSED, transposed);
        }
    }
    let dict = TermDict::encoded_len(&point_terms(items));
    if dict < best.1 {
        best = (MODE_DICT, dict);
    }
    best
}

fn lens_of(items: &[Vec<f64>]) -> Vec<u64> {
    items.iter().map(|p| p.len() as u64).collect()
}

impl ColumnCodec for PointsColumn {
    type Item = Vec<f64>;

    fn encode(items: &[Vec<f64>], out: &mut Vec<u8>) {
        let (mode, _) = choose_mode(items);
        write_u64(items.len() as u64, out);
        RleColumn::encode(&lens_of(items), out);
        out.push(mode);
        match mode {
            MODE_TRANSPOSED => {
                let dims = uniform_dims(items).unwrap_or_default();
                for d in 0..dims {
                    F64Column::encode(&dim_column(items, d), out);
                }
            }
            MODE_DICT => TermDict::encode(&point_terms(items), out),
            _ => F64Column::encode(&flat_coords(items), out),
        }
    }

    fn encoded_len(items: &[Vec<f64>]) -> usize {
        let (_, body_len) = choose_mode(items);
        len_u64(items.len() as u64) + RleColumn::encoded_len(&lens_of(items)) + 1 + body_len
    }

    fn decode(buf: &mut &[u8]) -> Result<Vec<Vec<f64>>, ColzError> {
        let count = check_count(read_u64(buf)?, 1, buf.len())?;
        let lens = RleColumn::decode(buf)?;
        if lens.len() != count {
            return Err(ColzError::Corrupt {
                context: "point length column disagrees with point count",
            });
        }
        let mut total: usize = 0;
        for &len in &lens {
            let len = usize::try_from(len).map_err(|_| ColzError::Corrupt {
                context: "point dimension count overflows usize",
            })?;
            total = total.checked_add(len).ok_or(ColzError::Corrupt {
                context: "total coordinate count overflows usize",
            })?;
        }
        let (&mode, rest) = buf.split_first().ok_or(ColzError::Truncated {
            context: "point column mode byte",
        })?;
        *buf = rest;
        match mode {
            MODE_FLAT => {
                let coords = F64Column::decode(buf)?;
                if coords.len() != total {
                    return Err(ColzError::Corrupt {
                        context: "flat coordinate column disagrees with point lengths",
                    });
                }
                let mut items = Vec::with_capacity(count);
                let mut rest = coords.as_slice();
                for &len in &lens {
                    let (head, tail) = rest.split_at(len as usize);
                    items.push(head.to_vec());
                    rest = tail;
                }
                Ok(items)
            }
            MODE_TRANSPOSED => {
                let dims = match lens.first() {
                    Some(&d) if lens.iter().all(|&l| l == d) && d > 0 => usize::try_from(d)
                        .map_err(|_| ColzError::Corrupt {
                            context: "point dimension count overflows usize",
                        })?,
                    _ => {
                        return Err(ColzError::Corrupt {
                            context: "transposed mode requires uniform nonzero dims",
                        })
                    }
                };
                let mut columns = Vec::with_capacity(dims);
                for _ in 0..dims {
                    let column = F64Column::decode(buf)?;
                    if column.len() != count {
                        return Err(ColzError::Corrupt {
                            context: "dimension column disagrees with point count",
                        });
                    }
                    columns.push(column);
                }
                Ok((0..count)
                    .map(|i| columns.iter().map(|c| c[i]).collect())
                    .collect())
            }
            MODE_DICT => {
                let terms = TermDict::decode(buf)?;
                if terms.len() != count {
                    return Err(ColzError::Corrupt {
                        context: "point dictionary disagrees with point count",
                    });
                }
                let mut items = Vec::with_capacity(count);
                for (term, &len) in terms.iter().zip(&lens) {
                    if term.len() as u64 != len.saturating_mul(8) {
                        return Err(ColzError::Corrupt {
                            context: "point term length disagrees with its dimension count",
                        });
                    }
                    let point = term
                        .chunks_exact(8)
                        .map(|c| {
                            let mut bytes = [0u8; 8];
                            bytes.copy_from_slice(c);
                            f64::from_bits(u64::from_le_bytes(bytes))
                        })
                        .collect();
                    items.push(point);
                }
                Ok(items)
            }
            _ => Err(ColzError::Corrupt {
                context: "unknown point column mode",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_column_exact, encode_column};

    fn round_trip(items: &[Vec<f64>]) -> Vec<u8> {
        let bytes = encode_column::<PointsColumn>(items);
        assert_eq!(bytes.len(), PointsColumn::encoded_len(items), "exact size");
        let back = decode_column_exact::<PointsColumn>(&bytes).unwrap();
        assert_eq!(back.len(), items.len());
        for (a, b) in items.iter().zip(&back) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        bytes
    }

    #[test]
    fn round_trips_empty_ragged_and_uniform() {
        round_trip(&[]);
        round_trip(&[vec![]]);
        round_trip(&[vec![1.0, 2.0], vec![], vec![3.0]]);
        round_trip(&vec![vec![0.5; 4]; 16]);
        round_trip(&[vec![f64::NAN, -0.0, f64::INFINITY]]);
    }

    #[test]
    fn occurrence_streams_pick_the_point_dictionary() {
        // 12 distinct points inserted 500 times each in a mixed stream:
        // the whole-point dictionary crushes both coordinate layouts.
        let palette: Vec<Vec<f64>> = (0..12)
            .map(|i| {
                (0..8)
                    .map(|d| ((i * 31 + d * 7) as f64 * 0.137).cos() * 50.0)
                    .collect()
            })
            .collect();
        let items: Vec<Vec<f64>> = (0..6000).map(|i| palette[i % 12].clone()).collect();
        let bytes = round_trip(&items);
        let verbatim = items.len() * (8 + 8 * 8);
        assert!(
            bytes.len() * 5 < verbatim,
            "points {} vs verbatim {verbatim}",
            bytes.len()
        );
    }

    #[test]
    fn truncation_and_bad_mode_are_rejected() {
        let items: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![f64::from(i), f64::from(i) * 0.5, 3.0])
            .collect();
        let bytes = round_trip(&items);
        for cut in 0..bytes.len() {
            assert!(
                decode_column_exact::<PointsColumn>(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }
}
