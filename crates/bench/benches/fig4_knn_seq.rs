//! Criterion bench for Figure 4: sequential k-NN time (K = 3) on the
//! balanced tree vs the totally unbalanced (chain) tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semtree_bench::{query_points, semantic_points, BUCKET, DIMS};
use semtree_kdtree::{KdConfig, KdTree};

fn bench_knn_seq(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_sequential_knn_k3");
    for n in [1_000usize, 5_000, 10_000] {
        let points = semantic_points(n, 0xF164);
        let data: Vec<(Vec<f64>, u32)> = points.iter().cloned().zip(0u32..).collect();
        let queries = query_points(&points, 100);

        let balanced =
            KdTree::bulk_load(KdConfig::new(DIMS).with_bucket_size(BUCKET), data.clone());
        group.bench_with_input(BenchmarkId::new("balanced", n), &queries, |b, qs| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i += 1;
                std::hint::black_box(balanced.knn(q, 3))
            });
        });

        let chain = KdTree::chain_load(KdConfig::new(DIMS).with_bucket_size(BUCKET), data);
        group.bench_with_input(BenchmarkId::new("chain", n), &queries, |b, qs| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i += 1;
                std::hint::black_box(chain.knn(q, 3))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_knn_seq);
criterion_main!(benches);
