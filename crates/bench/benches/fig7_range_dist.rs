//! Criterion bench for Figure 7: distributed range-query time across
//! 1 / 3 / 5 / 9 partitions (border nodes search both sides in parallel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semtree_bench::{
    build_dist_tree, dist_range, pick_radius, query_points, semantic_points, BUCKET,
};

fn bench_range_dist(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_distributed_range");
    group.sample_size(20);
    for n in [1_000usize, 5_000, 10_000] {
        let points = semantic_points(n, 0xF167);
        let radius = pick_radius(&points, 0.01);
        let queries = query_points(&points, 100);
        for m in [1usize, 3, 5, 9] {
            let tree = build_dist_tree(&points, m, BUCKET);
            let label = if m == 1 {
                "1-partition".to_string()
            } else {
                format!("{m}-partitions")
            };
            group.bench_with_input(BenchmarkId::new(label, n), &queries, |b, qs| {
                let mut i = 0usize;
                b.iter(|| {
                    let q = &qs[i % qs.len()];
                    i += 1;
                    std::hint::black_box(dist_range(&tree, q, radius))
                });
            });
            tree.shutdown();
        }
    }
    group.finish();
}

criterion_group!(benches, bench_range_dist);
criterion_main!(benches);
