//! Criterion bench for Figure 6: sequential range-query time on the
//! balanced vs the unbalanced tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semtree_bench::{pick_radius, query_points, semantic_points, BUCKET, DIMS};
use semtree_kdtree::{KdConfig, KdTree};

fn bench_range_seq(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_sequential_range");
    for n in [1_000usize, 5_000, 10_000] {
        let points = semantic_points(n, 0xF166);
        let radius = pick_radius(&points, 0.01);
        let data: Vec<(Vec<f64>, u32)> = points.iter().cloned().zip(0u32..).collect();
        let queries = query_points(&points, 100);

        let balanced =
            KdTree::bulk_load(KdConfig::new(DIMS).with_bucket_size(BUCKET), data.clone());
        group.bench_with_input(BenchmarkId::new("balanced", n), &queries, |b, qs| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i += 1;
                std::hint::black_box(balanced.range(q, radius))
            });
        });

        let chain = KdTree::chain_load(KdConfig::new(DIMS).with_bucket_size(BUCKET), data);
        group.bench_with_input(BenchmarkId::new("unbalanced", n), &queries, |b, qs| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i += 1;
                std::hint::black_box(chain.range(q, radius))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_range_seq);
criterion_main!(benches);
