//! Criterion bench for Figure 3: index building time as a function of the
//! number of points, for every tree configuration the paper plots
//! (1 balanced / 3 / 5 / 9 partitions / 1 totally unbalanced).
//!
//! The `repro` binary runs the full 100k-point sweep once; Criterion runs
//! a statistically sampled version at moderate sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semtree_bench::{build_chain_dist_tree, build_dist_tree, semantic_points, BUCKET};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_index_building");
    group.sample_size(10);
    for n in [1_000usize, 5_000, 10_000] {
        let points = semantic_points(n, 0xF163);
        for m in [1usize, 3, 5, 9] {
            let label = if m == 1 {
                "1-partition-balanced".to_string()
            } else {
                format!("{m}-partitions")
            };
            group.bench_with_input(BenchmarkId::new(label, n), &points, |b, pts| {
                b.iter(|| {
                    let tree = build_dist_tree(pts, m, BUCKET);
                    let len = tree.len();
                    tree.shutdown();
                    len
                });
            });
        }
        group.bench_with_input(
            BenchmarkId::new("1-partition-unbalanced", n),
            &points,
            |b, pts| {
                b.iter(|| {
                    let tree = build_chain_dist_tree(pts, BUCKET);
                    let len = tree.len();
                    tree.shutdown();
                    len
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
