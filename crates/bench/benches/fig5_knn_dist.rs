//! Criterion bench for Figure 5: distributed k-NN time (K = 3) across
//! 1 / 3 / 5 / 9 partitions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semtree_bench::{build_dist_tree, dist_knn, query_points, semantic_points, BUCKET};

fn bench_knn_dist(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_distributed_knn_k3");
    group.sample_size(20);
    for n in [1_000usize, 5_000, 10_000] {
        let points = semantic_points(n, 0xF165);
        let queries = query_points(&points, 100);
        for m in [1usize, 3, 5, 9] {
            let tree = build_dist_tree(&points, m, BUCKET);
            let label = if m == 1 {
                "1-partition".to_string()
            } else {
                format!("{m}-partitions")
            };
            group.bench_with_input(BenchmarkId::new(label, n), &queries, |b, qs| {
                let mut i = 0usize;
                b.iter(|| {
                    let q = &qs[i % qs.len()];
                    i += 1;
                    std::hint::black_box(dist_knn(&tree, q, 3))
                });
            });
            tree.shutdown();
        }
    }
    group.finish();
}

criterion_group!(benches, bench_knn_dist);
criterion_main!(benches);
