//! Criterion bench for the Figure 8 pipeline: the cost of one
//! inconsistency query (target-triple construction + out-of-sample
//! projection + distributed k-NN) at several K — the paper's effectiveness
//! experiment measured for throughput rather than quality (quality is
//! reported by `repro -- fig8`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semtree_bench::registry_for;
use semtree_core::SemTree;
use semtree_reqgen::{CorpusGenerator, GenConfig, GroundTruthOracle};

fn bench_effectiveness_queries(c: &mut Criterion) {
    let corpus = CorpusGenerator::new(GenConfig::small().with_seed(0xF168)).generate();
    let registry = std::sync::Arc::new(registry_for(&corpus.domain));
    let distance = semtree_core::TripleDistance::new(semtree_core::Weights::default(), registry);
    let mut builder = SemTree::builder().dimensions(6).bucket_size(32);
    builder.add_store(&corpus.store);
    let index = builder
        .build_with_distance(distance)
        .expect("non-empty corpus");

    let oracle = GroundTruthOracle::new(&corpus);
    let targets: Vec<_> = corpus
        .store
        .iter()
        .filter_map(|(id, _)| oracle.target_triple(id))
        .take(50)
        .collect();
    assert!(!targets.is_empty());

    let mut group = c.benchmark_group("fig8_inconsistency_query");
    for k in [1usize, 5, 10, 15] {
        group.bench_with_input(BenchmarkId::new("knn", k), &targets, |b, ts| {
            let mut i = 0usize;
            b.iter(|| {
                let t = &ts[i % ts.len()];
                i += 1;
                std::hint::black_box(index.knn(t, k))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_effectiveness_queries);
criterion_main!(benches);
