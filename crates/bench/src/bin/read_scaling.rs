//! Read-scaling workload matrix for the seqlock-versioned KD-tree.
//!
//! ```sh
//! cargo run -p semtree-bench --bin read_scaling --release -- BENCH_PR9.json
//! ```
//!
//! Three workloads (congee-style matrix) over a thread sweep:
//!
//! - **ReadOnly** — T lock-free readers hammer k-NN against a
//!   pre-built tree; no writer. The scaling target: on multi-core
//!   hardware, 4 threads ≥ 2× the single-thread throughput.
//! - **InsertOnly** — T single-writer trees loaded concurrently (the
//!   system is single-writer *per partition*; partitions are the unit
//!   of write parallelism).
//! - **Mixed** — one writer doubles the tree while T readers query it;
//!   afterwards the tree must answer bit-for-bit like a reference
//!   built sequentially from the same inserts.
//!
//! The JSON artifact records `cpus` alongside every row: a 1-CPU
//! container cannot show parallel speedup, so CI's `read-scaling` job
//! regenerates the artifact on its own hardware and readers of the
//! committed file can judge the recorded run's environment.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use semtree_bench::{query_points, semantic_points, BUCKET, DIMS};
use semtree_kdtree::versioned::{StdShim, VersionedKdReader, VersionedKdTree};
use semtree_kdtree::{KdConfig, Neighbor};

const POINTS: usize = 20_000;
const QUERIES: usize = 256;
const READS_PER_THREAD: usize = 4_000;
const K: usize = 5;
const THREADS: [usize; 4] = [1, 2, 4, 8];

struct Row {
    workload: &'static str,
    threads: usize,
    ops: u64,
    nanos: u128,
    speedup_vs_1t: f64,
}

impl Row {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / (self.nanos as f64 / 1e9)
    }

    fn to_json(&self) -> String {
        format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \"ops\": {}, \"ns\": {}, \
             \"ops_per_sec\": {:.1}, \"speedup_vs_1t\": {:.3}}}",
            self.workload,
            self.threads,
            self.ops,
            self.nanos,
            self.ops_per_sec(),
            self.speedup_vs_1t
        )
    }
}

fn build_tree(points: &[Vec<f64>]) -> VersionedKdTree<StdShim> {
    let mut tree = VersionedKdTree::new(KdConfig::new(DIMS).with_bucket_size(BUCKET));
    for (i, p) in points.iter().enumerate() {
        assert!(tree.insert(p, i as u64), "bench insert failed");
    }
    tree
}

/// T readers, each running a fixed op count against a quiescent tree.
fn read_only(reader: &VersionedKdReader<StdShim>, queries: &[Vec<f64>], threads: usize) -> Row {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let reader = reader.clone();
            let queries = queries.to_vec();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut sink = 0u64;
                for i in 0..READS_PER_THREAD {
                    let (hits, _) = reader.knn(&queries[(i + t) % queries.len()], K);
                    sink = sink.wrapping_add(hits.first().map_or(0, |h| h.payload));
                }
                sink
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    for h in handles {
        assert!(h.join().is_ok(), "reader thread panicked");
    }
    Row {
        workload: "ReadOnly",
        threads,
        ops: (threads * READS_PER_THREAD) as u64,
        nanos: t0.elapsed().as_nanos(),
        speedup_vs_1t: 1.0,
    }
}

/// T independent single-writer trees loaded concurrently: write
/// parallelism across partitions, never within one.
fn insert_only(points: &[Vec<f64>], threads: usize) -> Row {
    let per_tree = POINTS / threads;
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let chunk: Vec<Vec<f64>> = points[t * per_tree..(t + 1) * per_tree].to_vec();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut tree =
                    VersionedKdTree::<StdShim>::new(KdConfig::new(DIMS).with_bucket_size(BUCKET));
                barrier.wait();
                for (i, p) in chunk.iter().enumerate() {
                    assert!(tree.insert(p, i as u64), "bench insert failed");
                }
                tree.len()
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    for h in handles {
        assert!(h.join().is_ok(), "writer thread panicked");
    }
    Row {
        workload: "InsertOnly",
        threads,
        ops: (threads * per_tree) as u64,
        nanos: t0.elapsed().as_nanos(),
        speedup_vs_1t: 1.0,
    }
}

/// One writer doubling the tree while T readers query it; returns the
/// row plus total reader retries (contention evidence) and the tree
/// for the parity check.
fn mixed(
    seed_points: &[Vec<f64>],
    extra_points: &[Vec<f64>],
    queries: &[Vec<f64>],
    threads: usize,
) -> (Row, u64, VersionedKdTree<StdShim>) {
    let mut tree = build_tree(seed_points);
    let reader = tree.reader();
    let done = Arc::new(AtomicBool::new(false));
    let retries = Arc::new(AtomicU64::new(0));
    let reads = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let reader = reader.clone();
            let queries = queries.to_vec();
            let done = Arc::clone(&done);
            let retries = Arc::clone(&retries);
            let reads = Arc::clone(&reads);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut i = t;
                while !done.load(Ordering::Relaxed) {
                    let (_, stats) = reader.knn(&queries[i % queries.len()], K);
                    retries.fetch_add(stats.retries, Ordering::Relaxed);
                    reads.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    for (i, p) in extra_points.iter().enumerate() {
        assert!(
            tree.insert(p, (seed_points.len() + i) as u64),
            "bench insert failed"
        );
    }
    done.store(true, Ordering::Relaxed);
    for h in handles {
        assert!(h.join().is_ok(), "reader thread panicked");
    }
    let nanos = t0.elapsed().as_nanos();
    let ops = extra_points.len() as u64 + reads.load(Ordering::Relaxed);
    (
        Row {
            workload: "Mixed",
            threads,
            ops,
            nanos,
            speedup_vs_1t: 1.0,
        },
        retries.load(Ordering::Relaxed),
        tree,
    )
}

/// The mixed-run tree must answer exactly like a tree built with no
/// concurrent readers at all: concurrency changes timing, never bytes.
fn parity(tree: &VersionedKdTree<StdShim>, all_points: &[Vec<f64>], queries: &[Vec<f64>]) -> bool {
    let reference = build_tree(all_points);
    let (ref_reader, run_reader) = (reference.reader(), tree.reader());
    queries.iter().all(|q| {
        let (a, _) = ref_reader.knn(q, K);
        let (b, _) = run_reader.knn(q, K);
        let key = |hits: &[Neighbor<u64>]| -> Vec<(u64, u64)> {
            hits.iter().map(|h| (h.dist.to_bits(), h.payload)).collect()
        };
        key(&a) == key(&b)
    })
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR9.json".to_string());
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);

    let seed_points = semantic_points(POINTS, 0x9A21);
    let extra_points = semantic_points(POINTS, 0x9A22);
    let queries = query_points(&seed_points, QUERIES);

    let mut rows: Vec<Row> = Vec::new();
    let mut mixed_retries = 0u64;
    let mut mixed_ok = true;

    let read_tree = build_tree(&seed_points);
    let reader = read_tree.reader();
    for &t in &THREADS {
        eprintln!("ReadOnly x{t}...");
        rows.push(read_only(&reader, &queries, t));
    }
    for &t in &THREADS {
        eprintln!("InsertOnly x{t}...");
        rows.push(insert_only(&seed_points, t));
    }
    let mut all_points = seed_points.clone();
    all_points.extend(extra_points.iter().cloned());
    for &t in &THREADS {
        eprintln!("Mixed x{t}...");
        let (row, retries, tree) = mixed(&seed_points, &extra_points, &queries, t);
        mixed_retries += retries;
        mixed_ok &= parity(&tree, &all_points, &queries);
        rows.push(row);
    }

    // Speedups relative to each workload's single-thread row.
    let base: Vec<(String, f64)> = rows
        .iter()
        .filter(|r| r.threads == 1)
        .map(|r| (r.workload.to_string(), r.ops_per_sec()))
        .collect();
    for row in &mut rows {
        if let Some((_, b)) = base.iter().find(|(w, _)| w == row.workload) {
            row.speedup_vs_1t = row.ops_per_sec() / b;
        }
    }
    let read_4t = rows
        .iter()
        .find(|r| r.workload == "ReadOnly" && r.threads == 4)
        .map_or(0.0, |r| r.speedup_vs_1t);

    assert!(mixed_ok, "mixed run diverged from the sequential reference");

    let body = rows
        .iter()
        .map(Row::to_json)
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"read_scaling\",\n  \"cpus\": {cpus},\n  \"points\": {POINTS},\n  \
         \"k\": {K},\n  \"read_only_speedup_4t\": {read_4t:.3},\n  \
         \"mixed_matches_sequential\": {mixed_ok},\n  \"mixed_read_retries\": {mixed_retries},\n  \
         \"records\": [\n{body}\n  ]\n}}\n"
    );
    assert!(std::fs::write(&out, &json).is_ok(), "could not write {out}");
    println!("{json}");
    eprintln!("wrote {out} (cpus={cpus}, ReadOnly 4t speedup {read_4t:.2}x)");
}
