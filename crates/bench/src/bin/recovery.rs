//! Crash-recovery benchmark over the columnar storage engine.
//!
//! Builds a durable distributed tree on the embedded reqgen corpus
//! (the real FastMap pipeline, not uniform noise), lets snapshots and
//! compaction happen organically, SIGKILLs the writer mid-flight, and
//! measures what a cold restart sees: bytes on disk, recovery
//! wall-time, and recovered structure — once for the columnar format
//! and once for the legacy verbatim layout, same workload.
//!
//! ```text
//! cargo run --release -p semtree-bench --bin recovery -- \
//!     --points 3000 --json BENCH_PR7.json
//! ```
//!
//! The process re-execs itself (`--child DIR FORMAT N SEED`) as the
//! victim writer so the kill is a real `SIGKILL` across a process
//! boundary, exactly like the fault-injection tests.

use std::io::BufRead as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Instant;

use semtree_bench::{dist_insert, occurrence_points, BUCKET, DIMS};
use semtree_cluster::CostModel;
use semtree_dist::{build_local_durable, inspect_wal, DistConfig, WalInspection, WalOptions};

/// Data partitions the workload spreads over (1 root + 3 data).
const PARTITIONS: usize = 4;

/// Everything that can sink a bench run, surfaced as `exit(1)` with a
/// message instead of a panic (the driver parses stderr, not
/// backtraces).
#[derive(Debug)]
enum BenchError {
    /// Process/filesystem plumbing failed.
    Io(std::io::Error),
    /// Bad command-line arguments.
    Usage(String),
    /// The durable tree could not be built or recovered.
    Build(String),
    /// The victim-writer handshake or an output file broke protocol.
    Protocol(String),
    /// A measured result violated a published performance floor.
    Bound(String),
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Io(e) => write!(f, "io: {e}"),
            BenchError::Usage(msg) => write!(f, "usage: {msg}"),
            BenchError::Build(msg) => write!(f, "build: {msg}"),
            BenchError::Protocol(msg) => write!(f, "protocol: {msg}"),
            BenchError::Bound(msg) => write!(f, "bound violated: {msg}"),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<std::io::Error> for BenchError {
    fn from(e: std::io::Error) -> Self {
        BenchError::Io(e)
    }
}

fn config() -> DistConfig {
    DistConfig::new(DIMS)
        .with_bucket_size(BUCKET)
        .with_max_partitions(PARTITIONS * 2)
}

fn wal_options(columnar: bool) -> WalOptions {
    WalOptions {
        // Small segments and a tight cadence so sealing, snapshots and
        // compaction all fire many times within the run.
        segment_bytes: 64 * 1024,
        snapshot_every: 512,
        columnar,
    }
}

/// The victim writer: build the durable tree, insert the whole corpus,
/// report readiness, then idle until the parent kills the process.
fn run_child(dir: &Path, columnar: bool, documents: usize, seed: u64) -> Result<(), BenchError> {
    let pts = occurrence_points(documents, seed);
    let sample: Vec<Vec<f64>> = pts.iter().take(1024).cloned().collect();
    let tree = build_local_durable(
        config(),
        CostModel::zero(),
        PARTITIONS,
        &sample,
        dir,
        wal_options(columnar),
    )
    .map_err(|e| BenchError::Build(format!("durable tree: {e}")))?;
    for (i, p) in pts.iter().enumerate() {
        dist_insert(&tree, p, i as u64);
    }
    println!("ready: {} points", tree.len());
    // No shutdown, no flush beyond the WAL's own: the parent SIGKILLs
    // this process while the tree is live.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// One measured crash-and-recover cycle.
struct RunResult {
    format: &'static str,
    points: usize,
    segment_disk_bytes: u64,
    /// Sealed (cold) segment bytes — everything except the hot tail,
    /// which stays row-oriented by design in both formats.
    sealed_disk_bytes: u64,
    snapshot_disk_bytes: u64,
    recovery_ms: f64,
    snapshot_ratio: f64,
}

impl RunResult {
    fn disk_bytes(&self) -> u64 {
        self.segment_disk_bytes + self.snapshot_disk_bytes
    }

    /// Snapshots + compacted (sealed) WAL: the bytes the columnar
    /// engine owns, excluding the row-oriented hot tail both formats
    /// share.
    fn cold_bytes(&self) -> u64 {
        self.sealed_disk_bytes + self.snapshot_disk_bytes
    }
}

/// Sealed segment bytes in `dir`: every segment file except the
/// highest-indexed one (the hot tail a writer appends to).
fn sealed_bytes(dir: &Path) -> u64 {
    let mut files: Vec<(String, u64)> = std::fs::read_dir(dir.join("segments"))
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter_map(|e| {
                    let len = e.metadata().ok()?.len();
                    Some((e.file_name().to_string_lossy().into_owned(), len))
                })
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files.pop();
    files.into_iter().map(|(_, len)| len).sum()
}

fn measure(
    dir: &Path,
    inspection: &WalInspection,
    format: &'static str,
    recovery_ms: f64,
) -> RunResult {
    let points = inspection
        .partitions
        .iter()
        .map(|(_, p)| p.points)
        .sum::<usize>();
    // Aggregate decoded/stored over every snapshot in the directory.
    let (stored, decoded) = inspection
        .compression
        .iter()
        .fold((0usize, 0usize), |(s, d), c| {
            (s + c.stored_bytes, d + c.decoded_bytes)
        });
    let snapshot_ratio = if stored == 0 {
        1.0
    } else {
        decoded as f64 / stored as f64
    };
    RunResult {
        format,
        points,
        segment_disk_bytes: inspection.report.segment_disk_bytes,
        sealed_disk_bytes: sealed_bytes(dir),
        snapshot_disk_bytes: inspection.report.snapshot_disk_bytes,
        recovery_ms,
        snapshot_ratio,
    }
}

/// Spawn the victim writer, wait until the corpus is fully inserted,
/// SIGKILL it, then time a cold recovery of the directory.
fn crash_and_recover(
    dir: &Path,
    columnar: bool,
    documents: usize,
    seed: u64,
) -> Result<RunResult, BenchError> {
    let exe = std::env::current_exe()?;
    let mut child = Command::new(exe)
        .arg("--child")
        .arg(dir)
        .arg(if columnar { "columnar" } else { "legacy" })
        .arg(documents.to_string())
        .arg(seed.to_string())
        .stdout(Stdio::piped())
        .spawn()?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| BenchError::Protocol("child stdout not captured".to_string()))?;
    let mut lines = std::io::BufReader::new(stdout).lines();
    let ready = lines
        .next()
        .ok_or_else(|| BenchError::Protocol("child exited before reporting ready".to_string()))??;
    if !ready.starts_with("ready:") {
        return Err(BenchError::Protocol(format!(
            "unexpected child line: {ready}"
        )));
    }
    child.kill()?;
    let _ = child.wait();

    let started = Instant::now();
    let inspection = inspect_wal(dir)
        .map_err(|e| BenchError::Build(format!("recover killed directory: {e}")))?;
    let recovery_ms = started.elapsed().as_secs_f64() * 1000.0;
    Ok(measure(
        dir,
        &inspection,
        if columnar { "columnar" } else { "verbatim" },
        recovery_ms,
    ))
}

/// Append one record to a JSON array file, creating it if needed.
fn append_json_record(path: &str, record: &str) -> Result<(), BenchError> {
    let fresh = format!("[\n  {record}\n]\n");
    let content = match std::fs::read_to_string(path) {
        Err(_) => fresh,
        Ok(text) if text.trim().is_empty() => fresh,
        Ok(text) => {
            let head = text
                .trim_end()
                .strip_suffix(']')
                .ok_or_else(|| BenchError::Protocol(format!("{path} is not a JSON array")))?
                .trim_end()
                .to_string();
            if head.ends_with('[') {
                format!("{head}\n  {record}\n]\n")
            } else {
                format!("{head},\n  {record}\n]\n")
            }
        }
    };
    std::fs::write(path, content)?;
    Ok(())
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "semtree-recovery-bench-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    if let Err(e) = run() {
        eprintln!("recovery bench: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), BenchError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--child") {
        let [dir, format, points, seed] = &args[1..] else {
            return Err(BenchError::Usage(
                "--child needs DIR FORMAT POINTS SEED".to_string(),
            ));
        };
        let columnar = format == "columnar";
        let points: usize = points
            .parse()
            .map_err(|_| BenchError::Usage(format!("bad point count: {points}")))?;
        let seed: u64 = seed
            .parse()
            .map_err(|_| BenchError::Usage(format!("bad seed: {seed}")))?;
        return run_child(&PathBuf::from(dir), columnar, points, seed);
    }

    let mut documents = 200usize;
    let mut seed = 42u64;
    let mut json: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--docs" => {
                documents = iter
                    .next()
                    .ok_or_else(|| BenchError::Usage("--docs needs a count".to_string()))?
                    .parse()
                    .map_err(|_| BenchError::Usage("bad document count".to_string()))?;
            }
            "--seed" => {
                seed = iter
                    .next()
                    .ok_or_else(|| BenchError::Usage("--seed needs a value".to_string()))?
                    .parse()
                    .map_err(|_| BenchError::Usage("bad seed".to_string()))?;
            }
            "--json" => json = iter.next().cloned(),
            other => {
                return Err(BenchError::Usage(format!(
                    "unknown option '{other}' (--docs, --seed, --json)"
                )))
            }
        }
    }

    println!(
        "corpus: {documents} reqgen documents (seed {seed}), embedded occurrence stream, \
         {PARTITIONS} partitions"
    );
    let columnar_dir = scratch("columnar");
    let legacy_dir = scratch("legacy");
    let col = crash_and_recover(&columnar_dir, true, documents, seed)?;
    let row = crash_and_recover(&legacy_dir, false, documents, seed)?;

    if col.points != row.points {
        return Err(BenchError::Bound(format!(
            "formats recovered different corpora ({} vs {} points)",
            col.points, row.points
        )));
    }
    if col.points == 0 {
        return Err(BenchError::Bound("recovery lost the corpus".to_string()));
    }
    let disk_ratio = row.disk_bytes() as f64 / col.disk_bytes() as f64;
    let cold_ratio = row.cold_bytes() as f64 / col.cold_bytes() as f64;

    for r in [&col, &row] {
        println!(
            "{:>9}: {} points, {} segment bytes ({} sealed) + {} snapshot bytes on disk, \
             snapshot ratio {:.2}x, recovery {:.1} ms",
            r.format,
            r.points,
            r.segment_disk_bytes,
            r.sealed_disk_bytes,
            r.snapshot_disk_bytes,
            r.snapshot_ratio,
            r.recovery_ms
        );
    }
    println!("whole-directory ratio (verbatim / columnar): {disk_ratio:.2}x");
    println!("snapshots + sealed WAL ratio (verbatim / columnar): {cold_ratio:.2}x");

    if let Some(path) = json {
        let record = format!(
            "{{\"name\": \"recovery-columnar-vs-verbatim\", \"documents\": {documents}, \
             \"points\": {}, \"partitions\": {PARTITIONS}, \
             \"columnar_disk_bytes\": {}, \"verbatim_disk_bytes\": {}, \
             \"disk_ratio\": {disk_ratio:.2}, \"cold_ratio\": {cold_ratio:.2}, \
             \"columnar_snapshot_ratio\": {:.2}, \
             \"columnar_recovery_ms\": {:.1}, \"verbatim_recovery_ms\": {:.1}}}",
            col.points,
            col.disk_bytes(),
            row.disk_bytes(),
            col.snapshot_ratio,
            col.recovery_ms,
            row.recovery_ms
        );
        append_json_record(&path, &record)?;
        println!("appended to {path}");
    }

    std::fs::remove_dir_all(&columnar_dir).ok();
    std::fs::remove_dir_all(&legacy_dir).ok();

    if cold_ratio < 5.0 {
        return Err(BenchError::Bound(format!(
            "columnar snapshots + sealed WAL must be >= 5x smaller (got {cold_ratio:.2}x)"
        )));
    }
    if col.recovery_ms > row.recovery_ms * 1.5 {
        return Err(BenchError::Bound(format!(
            "columnar recovery must not be slower ({:.1} ms vs {:.1} ms)",
            col.recovery_ms, row.recovery_ms
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-process (no SIGKILL) version of the measurement: same corpus
    /// through both formats, recovered cold — the 5x floor the CI
    /// recovery-bench job enforces end-to-end.
    #[test]
    fn columnar_directory_is_5x_smaller_and_recovers_the_same_corpus() {
        let pts = occurrence_points(150, 7);
        let n = pts.len();
        let sample: Vec<Vec<f64>> = pts.iter().take(256).cloned().collect();
        let mut results = Vec::new();
        for columnar in [true, false] {
            let dir = scratch(if columnar { "test-col" } else { "test-row" });
            let tree = build_local_durable(
                config(),
                CostModel::zero(),
                PARTITIONS,
                &sample,
                &dir,
                wal_options(columnar),
            )
            .expect("build");
            for (i, p) in pts.iter().enumerate() {
                dist_insert(&tree, p, i as u64);
            }
            tree.shutdown();
            let started = Instant::now();
            let inspection = inspect_wal(&dir).expect("inspect");
            let ms = started.elapsed().as_secs_f64() * 1000.0;
            results.push(measure(
                &dir,
                &inspection,
                if columnar { "columnar" } else { "verbatim" },
                ms,
            ));
            std::fs::remove_dir_all(&dir).ok();
        }
        let (col, row) = (&results[0], &results[1]);
        assert_eq!(col.points, n);
        assert_eq!(row.points, n);
        let cold_ratio = row.cold_bytes() as f64 / col.cold_bytes() as f64;
        assert!(
            cold_ratio >= 5.0,
            "snapshots + sealed WAL ratio {cold_ratio:.2}x below the 5x floor \
             ({} vs {} bytes)",
            row.cold_bytes(),
            col.cold_bytes()
        );
        assert!(col.snapshot_ratio >= 5.0, "{:.2}", col.snapshot_ratio);
        let whole = row.disk_bytes() as f64 / col.disk_bytes() as f64;
        assert!(whole > 1.5, "whole-directory ratio {whole:.2}x");
    }
}
