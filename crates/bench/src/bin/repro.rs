//! Regenerate every figure of the paper's evaluation section.
//!
//! ```sh
//! cargo run -p semtree-bench --bin repro --release -- all          # every figure
//! cargo run -p semtree-bench --bin repro --release -- fig3 --quick # one figure, small N
//! ```
//!
//! Output is a markdown table per figure — the series the paper plots.
//! Absolute times are this machine's; the *shapes* are the reproduction
//! target (see EXPERIMENTS.md).
//!
//! `--json <path>` switches to the parallel-engine smoke benchmark: it
//! times each parallel path against its sequential twin, verifies the
//! outputs are byte-identical, and writes machine-readable records
//! (`{name, n, threads, ns_per_op, speedup_vs_seq}`) for CI to assert
//! on.

use std::sync::Arc;
use std::time::Instant;

use semtree_bench::{
    build_chain_dist_tree, build_dist_tree, dist_knn, dist_range, distinct_triples, embed_triples,
    pick_radius, query_points, registry_for, semantic_points, triple_distance, BUCKET, DIMS,
};
use semtree_core::{SemTree, TripleId, Weights};
use semtree_distance::TripleDistance;
use semtree_eval::{ascii_plot, average_pr, ExperimentTable, PrPoint, Series};
use semtree_fastmap::{stress, FastMap};
use semtree_kdtree::{KdConfig, KdTree};
use semtree_par::metric::euclidean;
use semtree_par::Pool;
use semtree_reqgen::{AnnotatorPanel, CorpusGenerator, GenConfig, GroundTruthOracle};
use semtree_rtree::RTree;
use semtree_vocab::similarity::SimilarityMeasure;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        match args.get(pos + 1) {
            Some(path) => run_json(path, quick),
            None => {
                eprintln!("--json requires an output path");
                std::process::exit(2);
            }
        }
        return;
    }
    let which: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| *a != "--quick")
        .collect();
    let run_all = which.is_empty() || which.contains(&"all");

    let sizes: Vec<usize> = if quick {
        vec![1_000, 5_000, 10_000]
    } else {
        vec![1_000, 5_000, 10_000, 50_000, 100_000]
    };

    let wants = |name: &str| run_all || which.contains(&name);

    if wants("fig3") {
        print_table(&fig3_build(&sizes));
    }
    if wants("fig4") {
        print_table(&fig4_knn_seq(&sizes));
    }
    if wants("fig5") {
        print_table(&fig5_knn_dist(&sizes));
    }
    if wants("fig6") {
        print_table(&fig6_range_seq(&sizes));
    }
    if wants("fig7") {
        print_table(&fig7_range_dist(&sizes));
    }
    if wants("fig8") {
        print_table(&fig8_effectiveness(quick));
    }
    if wants("ablation_weights") {
        print_table(&ablation_weights(quick));
    }
    if wants("ablation_dim") {
        print_table(&ablation_dim());
    }
    if wants("ablation_bucket") {
        print_table(&ablation_bucket(quick));
    }
    if wants("ablation_measure") {
        print_table(&ablation_measure(quick));
    }
    if wants("ablation_noise") {
        print_table(&ablation_noise(quick));
    }
    if wants("ablation_structure") {
        print_table(&ablation_structure(quick));
    }
}

fn print_table(table: &ExperimentTable) {
    println!("{}", table.to_markdown());
    println!("{}", ascii_plot(table, 64, 16));
    println!("```csv\n{}```\n", table.to_csv());
}

/// One record of the parallel-engine smoke benchmark.
struct ParRecord {
    name: &'static str,
    n: usize,
    threads: usize,
    ns_per_op: f64,
    speedup_vs_seq: f64,
}

impl ParRecord {
    fn to_json(&self) -> String {
        format!(
            "  {{\"name\": \"{}\", \"n\": {}, \"threads\": {}, \
             \"ns_per_op\": {:.1}, \"speedup_vs_seq\": {:.3}}}",
            self.name, self.n, self.threads, self.ns_per_op, self.speedup_vs_seq
        )
    }
}

/// Time each parallel path against its sequential twin, check the
/// results are byte-identical, and write the records as a JSON array.
fn run_json(path: &str, quick: bool) {
    let pool = Pool::new();
    let threads = pool.threads();
    let mut records: Vec<ParRecord> = Vec::new();
    let mut pair = |name_seq: &'static str,
                    name_par: &'static str,
                    n: usize,
                    ops: usize,
                    seq_ns: f64,
                    par_ns: f64| {
        records.push(ParRecord {
            name: name_seq,
            n,
            threads: 1,
            ns_per_op: seq_ns / ops as f64,
            speedup_vs_seq: 1.0,
        });
        records.push(ParRecord {
            name: name_par,
            n,
            threads,
            ns_per_op: par_ns / ops as f64,
            speedup_vs_seq: seq_ns / par_ns,
        });
    };

    // FastMap embedding: sequential vs pool-parallel coordinate columns.
    let n = if quick { 400 } else { 1_200 };
    let source = semantic_points(n, 0x9A12);
    let dist = |i: usize, j: usize| euclidean(&source[i], &source[j]);
    // Warm up caches and the allocator so the first timed path is not
    // charged the process cold-start cost.
    std::hint::black_box(FastMap::new(DIMS).with_seed(7).embed(n.min(200), &dist));
    let t0 = Instant::now();
    let seq = FastMap::new(DIMS)
        .with_seed(7)
        .with_threads(1)
        .embed(n, &dist);
    let embed_seq_ns = t0.elapsed().as_nanos() as f64;
    let t0 = Instant::now();
    let par = FastMap::new(DIMS)
        .with_seed(7)
        .with_threads(threads)
        .embed(n, &dist);
    let embed_par_ns = t0.elapsed().as_nanos() as f64;
    for i in 0..n {
        assert_eq!(seq.point(i), par.point(i), "parallel embed diverged");
    }
    pair("embed_seq", "embed_par", n, n, embed_seq_ns, embed_par_ns);

    // KD-tree bulk load: sequential recursion vs skeleton + pool.
    let n = if quick { 10_000 } else { 50_000 };
    let points = semantic_points(n, 0x9A13);
    let data: Vec<(Vec<f64>, u32)> = points.iter().cloned().zip(0u32..).collect();
    let config = KdConfig::new(DIMS).with_bucket_size(BUCKET);
    let t0 = Instant::now();
    let seq_tree = KdTree::bulk_load(config, data.clone());
    let build_seq_ns = t0.elapsed().as_nanos() as f64;
    let t0 = Instant::now();
    let par_tree = KdTree::bulk_load_par(config, data, &pool);
    let build_par_ns = t0.elapsed().as_nanos() as f64;
    assert_eq!(seq_tree.len(), par_tree.len(), "parallel build diverged");
    pair("build_seq", "build_par", n, n, build_seq_ns, build_par_ns);

    // k-NN: a per-query loop vs one batched call on the same tree.
    let queries = query_points(&points, if quick { 500 } else { 2_000 });
    let t0 = Instant::now();
    let mut seq_hits = Vec::with_capacity(queries.len());
    for q in &queries {
        seq_hits.push(seq_tree.knn(q, 5));
    }
    let knn_seq_ns = t0.elapsed().as_nanos() as f64;
    let t0 = Instant::now();
    let par_hits = par_tree.knn_batch(&queries, 5, &pool);
    let knn_par_ns = t0.elapsed().as_nanos() as f64;
    for (s, p) in seq_hits.iter().zip(&par_hits) {
        let s: Vec<(u64, u32)> = s.iter().map(|h| (h.dist.to_bits(), h.payload)).collect();
        let p: Vec<(u64, u32)> = p.iter().map(|h| (h.dist.to_bits(), h.payload)).collect();
        assert_eq!(s, p, "batched knn diverged");
    }
    pair(
        "knn_seq",
        "knn_batch",
        n,
        queries.len(),
        knn_seq_ns,
        knn_par_ns,
    );

    let body = format!(
        "[\n{}\n]\n",
        records
            .iter()
            .map(ParRecord::to_json)
            .collect::<Vec<_>>()
            .join(",\n")
    );
    if let Err(e) = std::fs::write(path, &body) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    }
    println!("{body}");
    println!(
        "wrote {} records to {path} (pool threads = {threads})",
        records.len()
    );
}

/// Fig. 3: index building time vs N for 1 (balanced) / 3 / 5 / 9
/// partitions / 1 (totally unbalanced).
fn fig3_build(sizes: &[usize]) -> ExperimentTable {
    let mut table = ExperimentTable::new("Fig. 3: Index Building Time", "points", "seconds");
    let mut balanced = Series::new("1 partition (balanced)");
    let mut p3 = Series::new("3 partitions");
    let mut p5 = Series::new("5 partitions");
    let mut p9 = Series::new("9 partitions");
    let mut chain = Series::new("1 partition (totally unbalanced)");

    for &n in sizes {
        let points = semantic_points(n, 0xF163);
        for (series, m) in [
            (&mut balanced, 1usize),
            (&mut p3, 3),
            (&mut p5, 5),
            (&mut p9, 9),
        ] {
            let t0 = Instant::now();
            let tree = build_dist_tree(&points, m, BUCKET);
            series.push(n as f64, t0.elapsed().as_secs_f64());
            tree.shutdown();
        }
        // Totally unbalanced: degenerate split rule + sorted insertion.
        let t0 = Instant::now();
        let tree = build_chain_dist_tree(&points, BUCKET);
        chain.push(n as f64, t0.elapsed().as_secs_f64());
        tree.shutdown();
    }
    for s in [balanced, p3, p5, p9, chain] {
        table.add_series(s);
    }
    table
}

/// Fig. 4: sequential k-NN time (K = 3), balanced vs totally unbalanced.
fn fig4_knn_seq(sizes: &[usize]) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 4: Sequential K-Nearest Time, K=3",
        "points",
        "seconds per 1000 queries",
    );
    let mut bal = Series::new("Balanced");
    let mut unbal = Series::new("Totally Unbalanced (chain)");
    for &n in sizes {
        let points = semantic_points(n, 0xF164);
        let data: Vec<(Vec<f64>, u32)> = points.iter().cloned().zip(0u32..).collect();
        let queries = query_points(&points, 1000);

        let tree = KdTree::bulk_load(KdConfig::new(DIMS).with_bucket_size(BUCKET), data.clone());
        let t0 = Instant::now();
        for q in &queries {
            std::hint::black_box(tree.knn(q, 3));
        }
        bal.push(n as f64, t0.elapsed().as_secs_f64());

        let tree = KdTree::chain_load(KdConfig::new(DIMS).with_bucket_size(BUCKET), data);
        let t0 = Instant::now();
        for q in &queries {
            std::hint::black_box(tree.knn(q, 3));
        }
        unbal.push(n as f64, t0.elapsed().as_secs_f64());
    }
    table.add_series(bal);
    table.add_series(unbal);
    table
}

/// Fig. 5: distributed k-NN time (K = 3) vs N for 1 / 3 / 5 / 9 partitions.
fn fig5_knn_dist(sizes: &[usize]) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 5: K-Nearest Time, K=3",
        "points",
        "seconds per 1000 queries",
    );
    for m in [1usize, 3, 5, 9] {
        let mut series = Series::new(if m == 1 {
            "1 partition".to_string()
        } else {
            format!("{m} partitions")
        });
        for &n in sizes {
            let points = semantic_points(n, 0xF165);
            let tree = build_dist_tree(&points, m, BUCKET);
            let queries = query_points(&points, 1000);
            let t0 = Instant::now();
            for q in &queries {
                std::hint::black_box(dist_knn(&tree, q, 3));
            }
            series.push(n as f64, t0.elapsed().as_secs_f64());
            tree.shutdown();
        }
        table.add_series(series);
    }
    table
}

/// Fig. 6: sequential range-query time, balanced vs unbalanced.
fn fig6_range_seq(sizes: &[usize]) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 6: Sequential Range Query Time",
        "points",
        "seconds per 1000 queries",
    );
    let mut bal = Series::new("Balanced");
    let mut unbal = Series::new("Unbalanced");
    for &n in sizes {
        let points = semantic_points(n, 0xF166);
        let radius = pick_radius(&points, 0.01);
        let data: Vec<(Vec<f64>, u32)> = points.iter().cloned().zip(0u32..).collect();
        let queries = query_points(&points, 1000);

        let tree = KdTree::bulk_load(KdConfig::new(DIMS).with_bucket_size(BUCKET), data.clone());
        let t0 = Instant::now();
        for q in &queries {
            std::hint::black_box(tree.range(q, radius));
        }
        bal.push(n as f64, t0.elapsed().as_secs_f64());

        let tree = KdTree::chain_load(KdConfig::new(DIMS).with_bucket_size(BUCKET), data);
        let t0 = Instant::now();
        for q in &queries {
            std::hint::black_box(tree.range(q, radius));
        }
        unbal.push(n as f64, t0.elapsed().as_secs_f64());
    }
    table.add_series(bal);
    table.add_series(unbal);
    table
}

/// Fig. 7: distributed range-query time vs N for 1 / 3 / 5 / 9 partitions.
fn fig7_range_dist(sizes: &[usize]) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 7: Range Query Time",
        "points",
        "seconds per 1000 queries",
    );
    for m in [1usize, 3, 5, 9] {
        let mut series = Series::new(if m == 1 {
            "1 partition".to_string()
        } else {
            format!("{m} partitions")
        });
        for &n in sizes {
            let points = semantic_points(n, 0xF167);
            let radius = pick_radius(&points, 0.01);
            let tree = build_dist_tree(&points, m, BUCKET);
            let queries = query_points(&points, 1000);
            let t0 = Instant::now();
            for q in &queries {
                std::hint::black_box(dist_range(&tree, q, radius));
            }
            series.push(n as f64, t0.elapsed().as_secs_f64());
            tree.shutdown();
        }
        table.add_series(series);
    }
    table
}

/// The full effectiveness pipeline shared by Fig. 8 and the ablations:
/// build a corpus + index, run the paper's 100 target-triple k-NN queries,
/// and average P/R per K.
struct EffectivenessRun {
    corpus: semtree_reqgen::Corpus,
    index: SemTree,
}

fn effectiveness_run(
    quick: bool,
    dims: usize,
    weights: Weights,
    measure: SimilarityMeasure,
) -> EffectivenessRun {
    let gen_cfg = if quick {
        GenConfig::small().with_seed(0xF168)
    } else {
        GenConfig::medium().with_seed(0xF168)
    };
    let corpus = CorpusGenerator::new(gen_cfg).generate();

    let registry = Arc::new(registry_for(&corpus.domain));
    let term_cfg = semtree_distance::TermDistanceConfig {
        semantic: measure,
        ..Default::default()
    };
    let distance = TripleDistance::with_config(weights, term_cfg, registry);

    let mut builder = SemTree::builder().dimensions(dims).bucket_size(BUCKET);
    builder.add_store(&corpus.store);
    let index = builder
        .build_with_distance(distance)
        .expect("non-empty corpus");
    EffectivenessRun { corpus, index }
}

/// Run the paper's protocol: 100 requirements → target triples → k-NN →
/// P/R against ground truth, for each K.
fn pr_curve(run: &EffectivenessRun, ks: &[usize]) -> Vec<PrPoint> {
    let oracle = GroundTruthOracle::new(&run.corpus);

    // "for 100 different requirements, we randomly selected a triple from
    // the related set and generated the equivalent target triple":
    // deterministic selection of 100 requirements whose triple has an
    // antonym predicate.
    let mut cases: Vec<(semtree_model::Triple, Vec<TripleId>)> = Vec::new();
    for req in &run.corpus.requirements {
        if cases.len() >= 100 {
            break;
        }
        let Some(&tid) = req
            .triples
            .iter()
            .find(|&&tid| oracle.target_triple(tid).is_some())
        else {
            continue;
        };
        let target = oracle.target_triple(tid).expect("filtered above");
        let truth = oracle.inconsistent_with(tid);
        if truth.is_empty() {
            continue; // annotators found nothing for this one
        }
        cases.push((target, truth));
    }

    ks.iter()
        .map(|&k| {
            let per_query: Vec<(Vec<TripleId>, Vec<TripleId>)> = cases
                .iter()
                .map(|(target, truth)| {
                    let retrieved: Vec<TripleId> =
                        run.index.knn(target, k).into_iter().map(|h| h.id).collect();
                    (retrieved, truth.clone())
                })
                .collect();
            average_pr(k, &per_query)
        })
        .collect()
}

/// Fig. 8: average Precision and Recall of the 100 target-triple k-NN
/// queries, varying K.
fn fig8_effectiveness(quick: bool) -> ExperimentTable {
    let run = effectiveness_run(quick, DIMS, Weights::default(), SimilarityMeasure::WuPalmer);
    let ks: Vec<usize> = (1..=15).collect();
    let points = pr_curve(&run, &ks);
    let mut table = ExperimentTable::new("Fig. 8: Effectiveness", "K", "ratio");
    let mut p = Series::new("Precision");
    let mut r = Series::new("Recall");
    for pt in points {
        p.push(pt.k as f64, pt.precision);
        r.push(pt.k as f64, pt.recall);
    }
    table.add_series(p);
    table.add_series(r);
    run.index.shutdown();
    table
}

/// Ablation: effectiveness judged against noisy human-panel ground truth
/// instead of the exact oracle (the paper's annotators were 5 engineers;
/// the panel model gives each one a miss and false-positive rate and takes
/// the majority vote).
fn ablation_noise(quick: bool) -> ExperimentTable {
    let run = effectiveness_run(quick, DIMS, Weights::default(), SimilarityMeasure::WuPalmer);
    let oracle = GroundTruthOracle::new(&run.corpus);
    let panels: Vec<(&str, AnnotatorPanel)> = vec![
        ("exact oracle", AnnotatorPanel::perfect()),
        ("panel 10% miss / 5% fp", AnnotatorPanel::default()),
        (
            "panel 30% miss / 15% fp",
            AnnotatorPanel {
                annotators: 5,
                miss_rate: 0.3,
                false_positive_rate: 0.15,
                seed: 0xA77,
            },
        ),
    ];

    // The same 100 query cases as Fig. 8.
    let mut cases: Vec<(semtree_model::Triple, TripleId)> = Vec::new();
    for req in &run.corpus.requirements {
        if cases.len() >= 100 {
            break;
        }
        let Some(&tid) = req
            .triples
            .iter()
            .find(|&&tid| oracle.target_triple(tid).is_some())
        else {
            continue;
        };
        if oracle.inconsistent_with(tid).is_empty() {
            continue;
        }
        cases.push((oracle.target_triple(tid).expect("filtered"), tid));
    }

    let mut table = ExperimentTable::new("Ablation: annotator noise (K=5)", "panel", "ratio");
    let mut p_series = Series::new("Precision");
    let mut r_series = Series::new("Recall");
    for (i, (name, panel)) in panels.iter().enumerate() {
        let per_query: Vec<(Vec<TripleId>, Vec<TripleId>)> = cases
            .iter()
            .map(|(target, tid)| {
                let retrieved: Vec<TripleId> =
                    run.index.knn(target, 5).into_iter().map(|h| h.id).collect();
                (retrieved, panel.annotate(&oracle, *tid))
            })
            .collect();
        let pt = average_pr(5, &per_query);
        println!(
            "  panel[{i}] = {name}: P={:.3} R={:.3}",
            pt.precision, pt.recall
        );
        p_series.push(i as f64, pt.precision);
        r_series.push(i as f64, pt.recall);
    }
    table.add_series(p_series);
    table.add_series(r_series);
    run.index.shutdown();
    table
}

/// Ablation: Eq. 1 weights vs effectiveness at K = 5.
fn ablation_weights(quick: bool) -> ExperimentTable {
    let presets: Vec<(&str, Weights)> = vec![
        ("uniform (1/3,1/3,1/3)", Weights::default()),
        ("predicate-heavy (.25,.5,.25)", Weights::predicate_heavy()),
        (
            "subject-heavy (.5,.25,.25)",
            Weights::new(0.5, 0.25, 0.25).unwrap(),
        ),
        (
            "object-heavy (.25,.25,.5)",
            Weights::new(0.25, 0.25, 0.5).unwrap(),
        ),
    ];
    let mut table = ExperimentTable::new("Ablation: distance weights (K=5)", "preset", "ratio");
    let mut p = Series::new("Precision");
    let mut r = Series::new("Recall");
    for (i, (name, w)) in presets.iter().enumerate() {
        let run = effectiveness_run(quick, DIMS, *w, SimilarityMeasure::WuPalmer);
        let pt = pr_curve(&run, &[5])[0];
        println!(
            "  weights[{i}] = {name}: P={:.3} R={:.3}",
            pt.precision, pt.recall
        );
        p.push(i as f64, pt.precision);
        r.push(i as f64, pt.recall);
        run.index.shutdown();
    }
    table.add_series(p);
    table.add_series(r);
    table
}

/// Ablation: FastMap dimensionality vs embedding stress and recall@5.
fn ablation_dim() -> ExperimentTable {
    let triples = distinct_triples(2_000, 0xD1);
    let domain = semtree_reqgen::DomainVocabulary::new(8);
    let distance = triple_distance(&domain);
    let mut table = ExperimentTable::new("Ablation: FastMap dimensionality", "k", "value");
    let mut stress_series = Series::new("embedding stress");
    let mut time_series = Series::new("embed seconds");
    for k in [2usize, 4, 8, 16] {
        let t0 = Instant::now();
        let emb = embed_triples(&triples, k, 0xD1);
        let secs = t0.elapsed().as_secs_f64();
        let s = stress(&emb, &|i, j| distance.distance(&triples[i], &triples[j]));
        stress_series.push(k as f64, s);
        time_series.push(k as f64, secs);
    }
    table.add_series(stress_series);
    table.add_series(time_series);
    table
}

/// Ablation: bucket size vs build and query time at fixed N.
fn ablation_bucket(quick: bool) -> ExperimentTable {
    let n = if quick { 5_000 } else { 20_000 };
    let points = semantic_points(n, 0xB5);
    let queries = query_points(&points, 1000);
    let mut table = ExperimentTable::new(
        format!("Ablation: bucket size (N={n})"),
        "bucket",
        "seconds",
    );
    let mut build = Series::new("build");
    let mut query = Series::new("1000 knn queries");
    for bs in [4usize, 16, 32, 128, 512] {
        let t0 = Instant::now();
        let data: Vec<(Vec<f64>, u32)> = points.iter().cloned().zip(0u32..).collect();
        let tree = KdTree::bulk_load(KdConfig::new(DIMS).with_bucket_size(bs), data);
        build.push(bs as f64, t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        for q in &queries {
            std::hint::black_box(tree.knn(q, 3));
        }
        query.push(bs as f64, t0.elapsed().as_secs_f64());
    }
    table.add_series(build);
    table.add_series(query);
    table
}

/// Ablation: similarity measure vs effectiveness at K = 5.
fn ablation_measure(quick: bool) -> ExperimentTable {
    let mut table = ExperimentTable::new("Ablation: similarity measure (K=5)", "measure", "ratio");
    let mut p = Series::new("Precision");
    let mut r = Series::new("Recall");
    for (i, m) in SimilarityMeasure::ALL.iter().enumerate() {
        let run = effectiveness_run(quick, DIMS, Weights::default(), *m);
        let pt = pr_curve(&run, &[5])[0];
        println!(
            "  measure[{i}] = {}: P={:.3} R={:.3}",
            m.name(),
            pt.precision,
            pt.recall
        );
        p.push(i as f64, pt.precision);
        r.push(i as f64, pt.recall);
        run.index.shutdown();
    }
    table.add_series(p);
    table.add_series(r);
    table
}

/// Ablation: the §III-B design choice, measured — bucketed KD-tree vs a
/// classical R-tree (STR bulk load, Guttman splits) on the same embedded
/// semantic workload.
fn ablation_structure(quick: bool) -> ExperimentTable {
    let n = if quick { 10_000 } else { 50_000 };
    let points = semantic_points(n, 0x57A);
    let radius = pick_radius(&points, 0.01);
    let queries = query_points(&points, 1000);
    let data: Vec<(Vec<f64>, u32)> = points.iter().cloned().zip(0u32..).collect();

    let mut table = ExperimentTable::new(
        format!("Ablation: index structure (N={n})"),
        "metric (0=bulk build s, 1=dyn build s, 2=1000 knn s, 3=1000 range s)",
        "seconds",
    );
    let mut kd_series = Series::new("kd-tree");
    let mut r_series = Series::new("r-tree");

    // Bulk build.
    let t0 = Instant::now();
    let kd = KdTree::bulk_load(KdConfig::new(DIMS).with_bucket_size(BUCKET), data.clone());
    kd_series.push(0.0, t0.elapsed().as_secs_f64());
    let t0 = Instant::now();
    let rt = RTree::bulk_load(DIMS, data.clone());
    r_series.push(0.0, t0.elapsed().as_secs_f64());

    // Dynamic build.
    let t0 = Instant::now();
    let mut kd_dyn = KdTree::new(KdConfig::new(DIMS).with_bucket_size(BUCKET));
    for (c, p) in &data {
        kd_dyn.insert(c, *p);
    }
    kd_series.push(1.0, t0.elapsed().as_secs_f64());
    let t0 = Instant::now();
    let mut rt_dyn = RTree::new(DIMS);
    for (c, p) in &data {
        rt_dyn.insert(c, *p);
    }
    r_series.push(1.0, t0.elapsed().as_secs_f64());

    // k-NN.
    let t0 = Instant::now();
    for q in &queries {
        std::hint::black_box(kd.knn(q, 3));
    }
    kd_series.push(2.0, t0.elapsed().as_secs_f64());
    let t0 = Instant::now();
    for q in &queries {
        std::hint::black_box(rt.knn(q, 3));
    }
    r_series.push(2.0, t0.elapsed().as_secs_f64());

    // Range.
    let t0 = Instant::now();
    for q in &queries {
        std::hint::black_box(kd.range(q, radius));
    }
    kd_series.push(3.0, t0.elapsed().as_secs_f64());
    let t0 = Instant::now();
    for q in &queries {
        std::hint::black_box(rt.range(q, radius));
    }
    r_series.push(3.0, t0.elapsed().as_secs_f64());

    table.add_series(kd_series);
    table.add_series(r_series);
    table
}
