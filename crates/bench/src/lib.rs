//! Shared workload builders for the figure benchmarks and `repro` binaries.
//!
//! Every experiment works on *embedded semantic triples*: distinct triples
//! drawn from the on-board-software domain vocabulary, run through the
//! Eq. 1 distance and FastMap — i.e. the real pipeline, not synthetic
//! uniform points — so the tree sees the clustered distribution the paper's
//! index saw.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use semtree_cluster::CostModel;
use semtree_dist::{DistConfig, DistSemTree, Neighbor, Query, QueryOutcome};
use semtree_distance::{MemoizedDistance, TripleDistance, VocabularyRegistry, Weights};
use semtree_fastmap::{Embedding, FastMap};
use semtree_model::{Term, Triple};
use semtree_reqgen::{CorpusGenerator, DomainVocabulary, GenConfig};
use semtree_vocab::wordnet;

/// The FastMap dimensionality every efficiency experiment uses.
pub const DIMS: usize = 6;
/// The paper's bucket size is unstated; 32 keeps trees realistic.
pub const BUCKET: usize = 32;

/// The vocabulary registry for a domain (Fun + parameter classes +
/// standard).
#[must_use]
pub fn registry_for(domain: &DomainVocabulary) -> VocabularyRegistry {
    let mut reg = VocabularyRegistry::new();
    reg.register_standard(Arc::new(wordnet::mini_taxonomy()));
    reg.register("Fun", Arc::clone(domain.fun_taxonomy()));
    for (prefix, tax) in domain.parameter_taxonomies() {
        reg.register(prefix.clone(), Arc::clone(tax));
    }
    reg
}

/// `n` *distinct* domain triples, deterministically shuffled: the
/// cross-product of actors × functions × parameters, truncated to `n`.
///
/// # Panics
/// Panics if the domain cannot produce `n` distinct triples (never in
/// practice: the actor count is sized from `n`).
#[must_use]
pub fn distinct_triples(n: usize, seed: u64) -> Vec<Triple> {
    // ~115 combinations per actor; head-room factor 2 guards truncation.
    let actors = (2 * n / 100).max(8);
    let domain = DomainVocabulary::new(actors);
    let mut all = Vec::with_capacity(n * 2);
    'outer: for actor in domain.actors() {
        for (_, _, _, predicate, obj_prefix) in domain.functions() {
            for param in domain.parameters_of(obj_prefix) {
                all.push(Triple::new(
                    Term::literal(actor.clone()),
                    Term::concept_in("Fun", *predicate),
                    Term::concept_in(*obj_prefix, *param),
                ));
                if all.len() >= n * 2 {
                    break 'outer;
                }
            }
        }
    }
    assert!(all.len() >= n, "domain too small for {n} distinct triples");
    let mut rng = StdRng::seed_from_u64(seed);
    all.shuffle(&mut rng);
    all.truncate(n);
    all
}

/// The Eq. 1 distance for a freshly sized domain (weights uniform).
#[must_use]
pub fn triple_distance(domain: &DomainVocabulary) -> TripleDistance {
    TripleDistance::new(Weights::default(), Arc::new(registry_for(domain)))
}

/// FastMap-embed a triple set with the Eq. 1 distance.
#[must_use]
pub fn embed_triples(triples: &[Triple], dims: usize, seed: u64) -> Embedding {
    let domain = DomainVocabulary::new(8); // vocabularies are actor-independent
    let distance = triple_distance(&domain);
    let memo =
        MemoizedDistance::new(|i: usize, j: usize| distance.distance(&triples[i], &triples[j]));
    FastMap::new(dims)
        .with_seed(seed)
        .embed(triples.len(), &|i, j| memo.distance(i, j))
}

/// `n` embedded semantic points (the standard efficiency workload).
#[must_use]
pub fn semantic_points(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let triples = distinct_triples(n, seed);
    let embedding = embed_triples(&triples, DIMS, seed);
    embedding.iter().map(|(_, p)| p.to_vec()).collect()
}

/// The reqgen corpus as the index actually ingests it: one embedded
/// point per `(document, triple)` occurrence, in document extraction
/// order. The corpus re-asserts the same triples across documents, so
/// the stream repeats a modest palette of distinct embedded points —
/// the occurrence-heavy distribution the paper's extraction pipeline
/// produces (and the shape columnar storage compresses best).
#[must_use]
pub fn occurrence_points(documents: usize, seed: u64) -> Vec<Vec<f64>> {
    let config = GenConfig::small().with_documents(documents).with_seed(seed);
    let store = CorpusGenerator::new(config).generate().store;
    let triples: Vec<Triple> = store.iter().map(|(_, t)| t.clone()).collect();
    let embedding = embed_triples(&triples, DIMS, seed);
    store
        .documents()
        .flat_map(|doc| doc.triples.iter())
        .map(|id| embedding.point(id.index()).to_vec())
        .collect()
}

/// Insert one point through the unified query API, aborting the
/// benchmark on cluster failure — a silently dropped insert would skew
/// every figure built on the tree.
pub fn dist_insert(tree: &DistSemTree, point: &[f64], payload: u64) {
    let outcome = tree.query(Query::insert(point, payload));
    assert!(outcome.is_ok(), "benchmark insert failed: {outcome:?}");
}

/// k-NN through the unified query API; the benchmark tree is in-process,
/// so a cluster error is harness corruption, not a recoverable state.
#[must_use]
pub fn dist_knn(tree: &DistSemTree, point: &[f64], k: usize) -> Vec<Neighbor<u64>> {
    match tree
        .query(Query::knn(point, k))
        .and_then(QueryOutcome::neighbors)
    {
        Ok(hits) => hits,
        Err(e) => unreachable!("benchmark knn failed: {e}"),
    }
}

/// Range search through the unified query API (same failure contract as
/// [`dist_knn`]).
#[must_use]
pub fn dist_range(tree: &DistSemTree, point: &[f64], radius: f64) -> Vec<Neighbor<u64>> {
    match tree
        .query(Query::range(point, radius))
        .and_then(QueryOutcome::neighbors)
    {
        Ok(hits) => hits,
        Err(e) => unreachable!("benchmark range failed: {e}"),
    }
}

/// Build a distributed tree over `m` partitions and insert every point in
/// the given (already shuffled) order — the paper's dynamic build.
#[must_use]
pub fn build_dist_tree(points: &[Vec<f64>], m: usize, bucket: usize) -> DistSemTree {
    let config = DistConfig::new(points.first().map_or(DIMS, Vec::len))
        .with_bucket_size(bucket)
        .with_max_partitions(m.max(1) * 2);
    let tree = if m <= 1 {
        DistSemTree::single(config, CostModel::zero())
    } else {
        let sample: Vec<Vec<f64>> = points.iter().take(2048).cloned().collect();
        DistSemTree::with_fanout(config, CostModel::zero(), m, &sample)
    };
    for (i, p) in points.iter().enumerate() {
        dist_insert(&tree, p, i as u64);
    }
    tree
}

/// Build the paper's "1 partition (totally unbalanced)" configuration: a
/// single partition under the degenerate min-split rule, fed the points in
/// sorted order — a true chain.
#[must_use]
pub fn build_chain_dist_tree(points: &[Vec<f64>], bucket: usize) -> DistSemTree {
    let sorted = sorted_points(points);
    let config = DistConfig::new(sorted.first().map_or(DIMS, Vec::len))
        .with_bucket_size(bucket)
        .with_split_rule(semtree_kdtree::SplitRule::DegenerateMin);
    let tree = DistSemTree::single(config, CostModel::zero());
    for (i, p) in sorted.iter().enumerate() {
        dist_insert(&tree, p, i as u64);
    }
    tree
}

/// Sort points lexicographically — inserting in this order degenerates the
/// tree into the paper's "totally unbalanced" chain.
#[must_use]
pub fn sorted_points(points: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let mut sorted = points.to_vec();
    sorted.sort_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .find_map(|(x, y)| x.partial_cmp(y).filter(|o| o.is_ne()))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    sorted
}

/// A range radius with moderate selectivity: the `q`-quantile of pairwise
/// distances over a point sample.
#[must_use]
pub fn pick_radius(points: &[Vec<f64>], q: f64) -> f64 {
    let sample: Vec<&Vec<f64>> = points.iter().take(200).collect();
    let mut dists = Vec::new();
    for i in 0..sample.len() {
        for j in (i + 1)..sample.len() {
            let d = sample[i]
                .iter()
                .zip(sample[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            dists.push(d);
        }
    }
    if dists.is_empty() {
        return 0.1;
    }
    dists.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
    let idx = ((q.clamp(0.0, 1.0)) * (dists.len() - 1) as f64) as usize;
    dists[idx]
}

/// Deterministic query points: a rotation of the data set.
#[must_use]
pub fn query_points(points: &[Vec<f64>], count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| points[(i * 37 + 11) % points.len()].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_triples_are_distinct_and_sized() {
        let ts = distinct_triples(500, 1);
        assert_eq!(ts.len(), 500);
        let mut d = ts.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), 500, "all distinct");
        // Deterministic per seed.
        assert_eq!(ts, distinct_triples(500, 1));
        assert_ne!(ts, distinct_triples(500, 2));
    }

    #[test]
    fn semantic_points_have_configured_dims() {
        let ps = semantic_points(100, 3);
        assert_eq!(ps.len(), 100);
        assert!(ps.iter().all(|p| p.len() == DIMS));
    }

    #[test]
    fn occurrence_points_repeat_a_distinct_palette() {
        let pts = occurrence_points(80, 9);
        assert_eq!(pts, occurrence_points(80, 9), "deterministic per seed");
        assert!(
            pts.len() >= 100,
            "corpus yields a real stream: {}",
            pts.len()
        );
        assert!(pts.iter().all(|p| p.len() == DIMS));
        let mut distinct: Vec<Vec<u64>> = pts
            .iter()
            .map(|p| p.iter().map(|c| c.to_bits()).collect())
            .collect();
        distinct.sort();
        distinct.dedup();
        assert!(
            distinct.len() * 2 < pts.len(),
            "occurrences repeat triples: {} distinct of {}",
            distinct.len(),
            pts.len()
        );
    }

    #[test]
    fn build_dist_tree_round_trips() {
        let ps = semantic_points(200, 4);
        for m in [1, 3] {
            let tree = build_dist_tree(&ps, m, 16);
            assert_eq!(tree.len(), 200);
            assert_eq!(tree.partition_count(), m);
            let hits = dist_knn(&tree, &ps[0], 1);
            assert!(hits[0].dist < 1e-9, "self-query finds itself");
            tree.shutdown();
        }
    }

    #[test]
    fn sorted_points_are_sorted() {
        let ps = semantic_points(50, 5);
        let s = sorted_points(&ps);
        for w in s.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn pick_radius_monotone_in_quantile() {
        let ps = semantic_points(100, 6);
        let small = pick_radius(&ps, 0.05);
        let large = pick_radius(&ps, 0.5);
        assert!(small > 0.0);
        assert!(large >= small);
    }

    #[test]
    fn query_points_cycle_data() {
        let ps = semantic_points(40, 7);
        let qs = query_points(&ps, 10);
        assert_eq!(qs.len(), 10);
        assert!(qs.iter().all(|q| ps.contains(q)));
    }
}
