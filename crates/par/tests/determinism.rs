//! Determinism acceptance suite: every parallel path in the workspace
//! must be **byte-identical** to its sequential twin — for every thread
//! count, and across repeated runs with a fixed seed.
//!
//! The base seed is `SEMTREE_PROPTEST_SEED` when set (same convention
//! as the model suite's `SEMTREE_MODEL_SEED`), so a CI failure can be
//! replayed locally with the exact same inputs.

use semtree_distance::MemoizedDistance;
use semtree_fastmap::FastMap;
use semtree_kdtree::{KdConfig, KdTree};
use semtree_par::metric::euclidean;
use semtree_par::Pool;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const REPEATS: usize = 3;

fn base_seed() -> u64 {
    match std::env::var("SEMTREE_PROPTEST_SEED") {
        Ok(raw) => raw
            .trim()
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("SEMTREE_PROPTEST_SEED must be a u64, got {raw:?}")),
        Err(_) => 0x5EED_DE7E,
    }
}

/// Deterministic synthetic points from a splitmix64 stream.
fn synthetic_points(n: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| {
            (0..dims)
                .map(|_| (next() >> 11) as f64 / (1u64 << 53) as f64 * 100.0)
                .collect()
        })
        .collect()
}

fn embedding_bits(e: &semtree_fastmap::Embedding) -> Vec<u64> {
    (0..e.len())
        .flat_map(|i| e.point(i).iter().map(|c| c.to_bits()))
        .collect()
}

#[test]
fn parallel_embedding_is_bitwise_deterministic() {
    let seed = base_seed();
    let points = synthetic_points(160, 5, seed);
    let dist = |i: usize, j: usize| euclidean(&points[i], &points[j]);
    let reference = FastMap::new(4)
        .with_seed(seed)
        .with_threads(1)
        .embed(points.len(), &dist);
    let want = embedding_bits(&reference);

    for threads in THREAD_COUNTS {
        for run in 0..REPEATS {
            let memo = MemoizedDistance::new(&dist);
            let e = FastMap::new(4)
                .with_seed(seed)
                .with_threads(threads)
                .embed(points.len(), &|i, j| memo.distance(i, j));
            assert_eq!(
                embedding_bits(&e),
                want,
                "embedding differs (threads={threads}, run={run}, seed={seed})"
            );
            assert_eq!(
                e.pivots(),
                reference.pivots(),
                "pivot choice differs (threads={threads}, run={run}, seed={seed})"
            );
        }
    }
}

#[test]
fn parallel_tree_build_is_arena_deterministic() {
    let seed = base_seed() ^ 0x00FF_00FF;
    let points: Vec<(Vec<f64>, u32)> = synthetic_points(300, 3, seed)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, i as u32))
        .collect();
    let config = KdConfig::new(3).with_bucket_size(8);
    let reference = KdTree::bulk_load(config, points.clone());
    let want = format!("{reference:?}");

    for threads in THREAD_COUNTS {
        for run in 0..REPEATS {
            let pool = Pool::sequential().with_threads(threads);
            let tree = KdTree::bulk_load_par(config, points.clone(), &pool);
            assert_eq!(
                format!("{tree:?}"),
                want,
                "parallel build differs (threads={threads}, run={run}, seed={seed})"
            );
        }
    }
}

#[test]
fn batched_knn_is_bitwise_identical_to_sequential() {
    let seed = base_seed() ^ 0xABCD_0123;
    let points: Vec<(Vec<f64>, u32)> = synthetic_points(250, 3, seed)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, i as u32))
        .collect();
    let queries = synthetic_points(40, 3, seed ^ 1);
    let tree = KdTree::bulk_load(KdConfig::new(3).with_bucket_size(8), points);
    let want: Vec<Vec<(u64, u32)>> = queries
        .iter()
        .map(|q| {
            tree.knn(q, 7)
                .into_iter()
                .map(|n| (n.dist.to_bits(), n.payload))
                .collect()
        })
        .collect();

    for threads in THREAD_COUNTS {
        for run in 0..REPEATS {
            let pool = Pool::sequential().with_threads(threads);
            let got: Vec<Vec<(u64, u32)>> = tree
                .knn_batch(&queries, 7, &pool)
                .into_iter()
                .map(|hits| {
                    hits.into_iter()
                        .map(|n| (n.dist.to_bits(), n.payload))
                        .collect()
                })
                .collect();
            assert_eq!(
                got, want,
                "batched knn differs (threads={threads}, run={run}, seed={seed})"
            );
        }
    }
}

#[test]
fn pool_map_and_reduce_are_deterministic_across_thread_counts() {
    let want: Vec<usize> = (0..1000).map(|i| i * i % 97).collect();
    let far = want
        .iter()
        .copied()
        .enumerate()
        .max_by(|a, b| a.1.cmp(&b.1)) // Iterator::max_by keeps the LAST max
        .map(|(i, _)| i);
    for threads in THREAD_COUNTS {
        let pool = Pool::sequential().with_threads(threads);
        assert_eq!(pool.map(1000, &|i| i * i % 97), want, "threads={threads}");
        let got = pool
            .reduce(
                1000,
                &|start, end| {
                    let mut best = (start, start * start % 97);
                    for i in start + 1..end {
                        let key = i * i % 97;
                        if key >= best.1 {
                            best = (i, key);
                        }
                    }
                    best
                },
                &|acc, next| if next.1 >= acc.1 { next } else { acc },
            )
            .map(|(i, _)| i);
        assert_eq!(got, far, "last-maximal argmax differs at threads={threads}");
    }
}
