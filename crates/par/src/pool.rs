//! The production pool: scoped workers driving a [`ChunkedQueue`].
//!
//! A [`Pool`] is pure configuration (a thread count) — workers are
//! spawned per call with `std::thread::scope`, so closures may borrow
//! from the caller's stack and there is no global executor to shut
//! down. Every primitive is **deterministic**: whatever the steal
//! schedule, `map` reassembles per-chunk outputs by start index and
//! `reduce` combines per-chunk folds in ascending chunk order, so for a
//! pure `f` (and a chunk-compatible fold/combine pair) the output is
//! bit-identical to the sequential path for any thread count.

use crate::queue::ChunkedQueue;
use semtree_conc::sync::Mutex;

/// How many chunks each worker nominally receives; the surplus beyond 1
/// is what gives idle workers something to steal.
const CHUNKS_PER_WORKER: usize = 4;

fn chunk_size(items: usize, workers: usize) -> usize {
    items.div_ceil(workers * CHUNKS_PER_WORKER).max(1)
}

/// A scoped work-stealing thread pool.
///
/// `Pool` is `Clone` and cheap to pass around; `threads == 1` (or a
/// job too small to split) runs inline on the caller's thread with no
/// spawning at all, which is also the reference path the parallel
/// schedules are required to reproduce bit-for-bit.
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool sized to the machine (`std::thread::available_parallelism`).
    #[must_use]
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Pool { threads }
    }

    /// A single-threaded pool: every primitive runs inline.
    #[must_use]
    pub fn sequential() -> Self {
        Pool { threads: 1 }
    }

    /// Override the worker count (clamped to at least 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn workers_for(&self, items: usize) -> usize {
        self.threads.min(items).max(1)
    }

    /// Run `body(start, end)` over disjoint chunks covering `0..items`.
    ///
    /// `body` must be safe to call concurrently on disjoint ranges; the
    /// union of all calls covers every index exactly once.
    pub fn for_each_chunk<F>(&self, items: usize, body: &F)
    where
        F: Fn(usize, usize) + Sync,
    {
        let workers = self.workers_for(items);
        if workers <= 1 {
            if items > 0 {
                body(0, items);
            }
            return;
        }
        let queue: ChunkedQueue = ChunkedQueue::new(items, chunk_size(items, workers), workers);
        let run = |w: usize| {
            while let Some(c) = queue.claim(w) {
                body(c.start, c.end);
            }
        };
        std::thread::scope(|scope| {
            for w in 1..workers {
                let run = &run;
                scope.spawn(move || run(w));
            }
            run(0);
        });
    }

    /// `f(i)` for every `i in 0..items`, collected in index order.
    ///
    /// For a pure `f` the result is identical to
    /// `(0..items).map(f).collect()` for any thread count.
    pub fn map<T, F>(&self, items: usize, f: &F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.workers_for(items);
        if workers <= 1 {
            return (0..items).map(f).collect();
        }
        let queue: ChunkedQueue = ChunkedQueue::new(items, chunk_size(items, workers), workers);
        let parts = Mutex::new(Vec::new());
        let run = |w: usize| {
            while let Some(c) = queue.claim(w) {
                let mut vals = Vec::with_capacity(c.end - c.start);
                for i in c.start..c.end {
                    vals.push(f(i));
                }
                parts.lock().push((c.start, vals));
            }
        };
        std::thread::scope(|scope| {
            for w in 1..workers {
                let run = &run;
                scope.spawn(move || run(w));
            }
            run(0);
        });
        let mut parts = std::mem::take(&mut *parts.lock());
        parts.sort_unstable_by_key(|&(start, _)| start);
        let mut out = Vec::with_capacity(items);
        for (_, vals) in parts {
            out.extend(vals);
        }
        out
    }

    /// Fold disjoint chunks of `0..items` with `fold(start, end)` and
    /// combine the per-chunk results **in ascending chunk order**.
    ///
    /// Returns `None` only when `items == 0`. The result is identical to
    /// `fold(0, items)` for any thread count **provided** the pair is
    /// chunk-compatible: `combine(fold(a, m), fold(m, b)) == fold(a, b)`
    /// for all `a <= m <= b` — true of sums, min/max scans with a fixed
    /// tie-break direction, and similar associative folds.
    pub fn reduce<T, F, C>(&self, items: usize, fold: &F, combine: &C) -> Option<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync,
    {
        if items == 0 {
            return None;
        }
        let workers = self.workers_for(items);
        if workers <= 1 {
            return Some(fold(0, items));
        }
        let queue: ChunkedQueue = ChunkedQueue::new(items, chunk_size(items, workers), workers);
        let parts = Mutex::new(Vec::new());
        let run = |w: usize| {
            while let Some(c) = queue.claim(w) {
                let val = fold(c.start, c.end);
                parts.lock().push((c.index, val));
            }
        };
        std::thread::scope(|scope| {
            for w in 1..workers {
                let run = &run;
                scope.spawn(move || run(w));
            }
            run(0);
        });
        let mut parts = std::mem::take(&mut *parts.lock());
        parts.sort_unstable_by_key(|&(index, _)| index);
        parts.into_iter().map(|(_, val)| val).reduce(combine)
    }

    /// `f` applied to every owned item, collected in input order.
    ///
    /// Unlike [`Pool::map`] this hands each worker *ownership* of its
    /// items (needed when the work consumes them, e.g. bulk tree
    /// construction over entry buckets). Items are dealt one at a time
    /// from a shared feed rather than chunked — callers use this for
    /// coarse-grained tasks where per-item dispatch cost is noise.
    pub fn map_vec<I, T, F>(&self, items: Vec<I>, f: &F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let workers = self.workers_for(items.len());
        if workers <= 1 {
            return items.into_iter().map(f).collect();
        }
        let total = items.len();
        let feed = Mutex::new(items.into_iter().enumerate());
        let parts = Mutex::new(Vec::with_capacity(total));
        let run = || loop {
            let next = feed.lock().next();
            match next {
                Some((i, item)) => {
                    let val = f(item);
                    parts.lock().push((i, val));
                }
                None => break,
            }
        };
        std::thread::scope(|scope| {
            let run = &run;
            for _ in 1..workers {
                scope.spawn(run);
            }
            run();
        });
        let mut parts = std::mem::take(&mut *parts.lock());
        parts.sort_unstable_by_key(|&(i, _)| i);
        parts.into_iter().map(|(_, val)| val).collect()
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_matches_sequential_for_every_thread_count() {
        let f = |i: usize| (i as f64).sin() * i as f64;
        let expected: Vec<f64> = (0..500).map(f).collect();
        for threads in [1, 2, 3, 8] {
            let pool = Pool::sequential().with_threads(threads);
            let got = pool.map(500, &f);
            assert_eq!(got.len(), expected.len());
            for (a, b) in got.iter().zip(&expected) {
                assert_eq!(a.to_bits(), b.to_bits(), "bit-identical across schedules");
            }
        }
    }

    #[test]
    fn for_each_chunk_covers_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..333).map(|_| AtomicUsize::new(0)).collect();
        let pool = Pool::sequential().with_threads(4);
        pool.for_each_chunk(333, &|start, end| {
            for h in &hits[start..end] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn reduce_reproduces_the_sequential_fold() {
        // Last-maximal argmax — the fold FastMap's pivot scan uses.
        let key = |i: usize| f64::from((i % 97) as u32);
        let fold = |start: usize, end: usize| {
            let mut best = (start, key(start));
            for i in start + 1..end {
                if key(i) >= best.1 {
                    best = (i, key(i));
                }
            }
            best
        };
        let combine = |a: (usize, f64), b: (usize, f64)| if b.1 >= a.1 { b } else { a };
        let seq = Pool::sequential().reduce(1000, &fold, &combine);
        for threads in [2, 3, 8] {
            let pool = Pool::sequential().with_threads(threads);
            assert_eq!(pool.reduce(1000, &fold, &combine), seq);
        }
        assert_eq!(Pool::new().reduce(0, &fold, &combine), None);
    }

    #[test]
    fn map_vec_consumes_items_in_order() {
        let items: Vec<String> = (0..64).map(|i| format!("item-{i}")).collect();
        let expected: Vec<usize> = items.iter().map(String::len).collect();
        for threads in [1, 4] {
            let pool = Pool::sequential().with_threads(threads);
            let got = pool.map_vec(items.clone(), &|s: String| s.len());
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn empty_and_tiny_jobs_run_inline() {
        let pool = Pool::sequential().with_threads(8);
        assert_eq!(pool.map(0, &|i| i), Vec::<usize>::new());
        assert_eq!(pool.map(1, &|i| i * 2), vec![0]);
        pool.for_each_chunk(0, &|_, _| unreachable!("no chunks for an empty job"));
    }

    #[test]
    fn pool_defaults_to_machine_parallelism() {
        assert!(Pool::new().threads() >= 1);
        assert_eq!(Pool::sequential().threads(), 1);
        assert_eq!(Pool::default().threads(), Pool::new().threads());
    }
}
