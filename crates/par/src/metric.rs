//! Shared Euclidean kernels for the parallel distance paths.
//!
//! One implementation replaces the private copies that had grown in
//! `semtree-kdtree` and `semtree-fastmap`. The squared form is the
//! workhorse: k-NN pruning and neighbor-heap ordering are monotone in
//! the squared distance, so the `sqrt` is deferred to result
//! materialization and never runs in an inner loop.

/// Squared Euclidean distance between two equal-length vectors.
#[must_use]
pub fn euclidean_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length vectors.
#[must_use]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    euclidean_sq(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distances() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean(&[1.5], &[1.5]), 0.0);
        assert_eq!(euclidean(&[], &[]), 0.0);
    }

    #[test]
    fn sq_is_the_square() {
        let a = [0.3, -1.7, 2.2, 9.0];
        let b = [4.1, 0.0, -2.5, 8.5];
        let d = euclidean(&a, &b);
        assert!((d * d - euclidean_sq(&a, &b)).abs() < 1e-12);
    }
}
