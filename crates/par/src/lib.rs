//! Scoped work-stealing parallel engine for the SemTree workspace.
//!
//! The hot paths of the pipeline — FastMap's O(n·k) semantic-distance
//! scans, bulk tree construction, and batched k-NN at serve time — are
//! embarrassingly parallel over index ranges. This crate provides the
//! one engine they all share, in three layers:
//!
//! 1. [`queue::ChunkedQueue`] — the steal/join protocol: a job is split
//!    into contiguous index chunks, pre-distributed round-robin across
//!    per-worker deques; an idle worker first drains its own deque from
//!    the front, then steals from the *back* of its peers' deques. The
//!    queue is generic over the `semtree-conc` [`Shim`], so the exact
//!    protocol production runs is explored under the deterministic model
//!    scheduler in `crates/conc/tests/models.rs`, the same way
//!    `ConnRegistry` and `SequencedLog` are.
//! 2. [`pool::Pool`] — the production instantiation: `std::thread::scope`
//!    workers driving a `ChunkedQueue<StdShim>`, with deterministic
//!    result ordering. `map` reassembles per-chunk outputs by start
//!    index; `reduce` combines per-chunk folds in ascending chunk order,
//!    so for a compatible fold/combine pair the result is *bit-identical*
//!    to the sequential fold regardless of thread count or steal
//!    schedule.
//! 3. [`metric`] — the shared Euclidean kernels (`euclidean`,
//!    `euclidean_sq`) the parallel distance paths use, deduplicating the
//!    private copies that had grown in `semtree-kdtree` and
//!    `semtree-fastmap`.
//!
//! [`Shim`]: semtree_conc::shim::Shim

pub mod metric;
pub mod pool;
pub mod queue;

pub use pool::Pool;
pub use queue::{Chunk, ChunkedQueue};
