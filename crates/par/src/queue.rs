//! Chunked work-stealing deques, generic over the conc [`Shim`].
//!
//! A parallel job over `items` indices is split into contiguous
//! [`Chunk`]s which are pre-distributed round-robin across one deque per
//! worker. During the run no chunk is ever re-enqueued: a worker pops
//! its own deque from the front (ascending ranges, cache-friendly) and,
//! once empty, steals from the *back* of its peers' deques scanning
//! `worker+1, worker+2, …` cyclically — the classic owner-LIFO /
//! thief-FIFO split that keeps owner and thieves on opposite ends.
//!
//! Because chunks are only consumed, `claim` returning `None` proves
//! every chunk has been handed to some worker, which is the entire join
//! protocol: scoped workers simply run until `claim` is dry. The
//! `claimed` counter exists for observability and for the model-checker
//! assertions in `crates/conc/tests/models.rs`.

use std::collections::VecDeque;

use semtree_conc::shim::{Shim, StdShim};

/// One contiguous index range `[start, end)` of a parallel job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Position of this chunk in the job's chunk sequence; chunks are
    /// numbered in ascending `start` order, so combining per-chunk
    /// results by `index` reproduces sequential order.
    pub index: usize,
    /// First item index covered (inclusive).
    pub start: usize,
    /// One past the last item index covered.
    pub end: usize,
}

/// Per-worker deques of pre-distributed chunks with work stealing.
///
/// Generic over the `semtree-conc` [`Shim`] so the steal/join protocol
/// runs unchanged under the deterministic model scheduler; production
/// code instantiates `ChunkedQueue<StdShim>` (the default).
pub struct ChunkedQueue<S: Shim = StdShim> {
    deques: Vec<S::Mutex<VecDeque<Chunk>>>,
    claimed: S::AtomicU64,
    total: u64,
}

impl<S: Shim> ChunkedQueue<S> {
    /// Split `items` indices into chunks of `chunk_size` (the last chunk
    /// may be shorter) and distribute them round-robin across `workers`
    /// deques.
    #[must_use]
    pub fn new(items: usize, chunk_size: usize, workers: usize) -> Self {
        let chunk_size = chunk_size.max(1);
        let workers = workers.max(1);
        let mut buckets: Vec<VecDeque<Chunk>> = (0..workers).map(|_| VecDeque::new()).collect();
        let mut start = 0;
        let mut index = 0;
        while start < items {
            let end = (start + chunk_size).min(items);
            buckets[index % workers].push_back(Chunk { index, start, end });
            start = end;
            index += 1;
        }
        ChunkedQueue {
            deques: buckets.into_iter().map(S::mutex).collect(),
            claimed: S::atomic_u64(0),
            total: index as u64,
        }
    }

    /// Number of workers the queue was sized for.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Total chunks the job was split into.
    #[must_use]
    pub fn chunk_count(&self) -> u64 {
        self.total
    }

    /// Chunks claimed so far.
    #[must_use]
    pub fn claimed(&self) -> u64 {
        S::load(&self.claimed).min(self.total)
    }

    /// True once every chunk has been claimed by some worker.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.claimed() == self.total
    }

    /// Claim one chunk for `worker`: the front of its own deque first,
    /// then the back of each peer deque scanning cyclically from
    /// `worker + 1`. Returns `None` only when every chunk in the job has
    /// been claimed — chunks are never re-enqueued, so a full empty scan
    /// is proof of drain and doubles as the join condition.
    pub fn claim(&self, worker: usize) -> Option<Chunk> {
        let slots = self.deques.len();
        let own = worker % slots;
        if let Some(chunk) = S::lock(&self.deques[own]).pop_front() {
            S::fetch_add(&self.claimed, 1);
            return Some(chunk);
        }
        for offset in 1..slots {
            let victim = (own + offset) % slots;
            if let Some(chunk) = S::lock(&self.deques[victim]).pop_back() {
                S::fetch_add(&self.claimed, 1);
                return Some(chunk);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(queue: &ChunkedQueue, worker: usize) -> Vec<Chunk> {
        let mut out = Vec::new();
        while let Some(c) = queue.claim(worker) {
            out.push(c);
        }
        out
    }

    #[test]
    fn chunks_cover_the_range_exactly_once() {
        for (items, chunk, workers) in [(10, 3, 2), (1, 1, 4), (100, 7, 3), (16, 16, 2)] {
            let queue: ChunkedQueue = ChunkedQueue::new(items, chunk, workers);
            let mut seen = vec![false; items];
            for c in drain_all(&queue, 0) {
                for (i, s) in seen.iter_mut().enumerate().take(c.end).skip(c.start) {
                    assert!(!*s, "index {i} claimed twice");
                    *s = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "every index claimed");
            assert!(queue.is_drained());
            assert_eq!(queue.claimed(), queue.chunk_count());
        }
    }

    #[test]
    fn empty_job_is_born_drained() {
        let queue: ChunkedQueue = ChunkedQueue::new(0, 8, 4);
        assert_eq!(queue.chunk_count(), 0);
        assert!(queue.is_drained());
        assert_eq!(queue.claim(0), None);
        assert_eq!(queue.claim(3), None);
    }

    #[test]
    fn owner_drains_own_deque_in_ascending_order() {
        // Single worker: round-robin puts every chunk in deque 0, and the
        // owner pops from the front, so chunks come back ascending.
        let queue: ChunkedQueue = ChunkedQueue::new(20, 4, 1);
        let chunks = drain_all(&queue, 0);
        assert_eq!(chunks.len(), 5);
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.index, i);
            assert_eq!(c.start, i * 4);
        }
    }

    #[test]
    fn thief_steals_from_peers_once_own_deque_is_empty() {
        let queue: ChunkedQueue = ChunkedQueue::new(8, 1, 2);
        // Worker 1 owns chunks 1, 3, 5, 7; after those it steals 0/2/4/6.
        let chunks = drain_all(&queue, 1);
        assert_eq!(chunks.len(), 8);
        let own: Vec<usize> = chunks[..4].iter().map(|c| c.index).collect();
        assert_eq!(own, [1, 3, 5, 7]);
        assert!(queue.is_drained());
    }

    #[test]
    fn concurrent_workers_claim_each_chunk_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let queue: ChunkedQueue = ChunkedQueue::new(1000, 3, 4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|scope| {
            for w in 0..4 {
                let queue = &queue;
                let hits = &hits;
                scope.spawn(move || {
                    while let Some(c) = queue.claim(w) {
                        for h in &hits[c.start..c.end] {
                            h.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert!(queue.is_drained());
    }
}
