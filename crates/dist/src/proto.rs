//! The inter-partition message protocol (the paper's MPJ layer).

use semtree_cluster::{ComputeNodeId, Wire};
use serde::{Deserialize, Serialize};

use crate::store::LocalNodeId;

/// Requests exchanged between partitions.
#[derive(Debug, Clone, PartialEq)]
pub enum Req {
    /// Insert a point into the sub-tree rooted at `node` of the receiving
    /// partition ("a message containing the point to be added has to be
    /// sent to the correct partition").
    Insert {
        /// Root of the receiving sub-tree.
        node: LocalNodeId,
        /// Query-space coordinates.
        point: Vec<f64>,
        /// Opaque payload (a triple id).
        payload: u64,
    },
    /// k-nearest search in the sub-tree rooted at `node`.
    Knn {
        /// Root of the receiving sub-tree.
        node: LocalNodeId,
        /// Query point `P`.
        point: Vec<f64>,
        /// Number of points `K`.
        k: usize,
        /// Current worst distance in the caller's result set, as a pruning
        /// hint (`None` while `|Rs| < K`).
        worst: Option<f64>,
    },
    /// Range search in the sub-tree rooted at `node`.
    Range {
        /// Root of the receiving sub-tree.
        node: LocalNodeId,
        /// Query point `P`.
        point: Vec<f64>,
        /// Range distance `D`.
        radius: f64,
    },
    /// Build-partition transfer: the receiving (new) partition adopts a
    /// whole leaf bucket as its root.
    AdoptLeaf {
        /// The evicted bucket.
        bucket: Vec<(Vec<f64>, u64)>,
        /// Global depth of the adopted leaf (keeps split-dimension cycling
        /// consistent across partitions).
        depth: u32,
    },
    /// Request the partition's local statistics.
    Stats,
    /// Check the partition's structural invariants.
    Verify,
    /// Export every point stored in this partition's local leaves (not
    /// following remote links) — the building block of repartitioning.
    Export,
}

/// Responses.
#[derive(Debug, Clone, PartialEq)]
pub enum Resp {
    /// Acknowledgement (insert, adopt).
    Done,
    /// Search candidates: `(distance, payload)` pairs.
    Candidates(Vec<(f64, u64)>),
    /// Partition statistics.
    Stats(PartitionStats),
    /// Invariant violations found by [`Req::Verify`] (empty = healthy).
    Violations(Vec<String>),
    /// The partition's local points, from [`Req::Export`].
    Points(Vec<(Vec<f64>, u64)>),
}

/// Per-partition statistics, including the outgoing partition links so a
/// client can walk the whole partition tree.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PartitionStats {
    /// Points stored in this partition's leaves.
    pub points: usize,
    /// Leaf nodes.
    pub leaves: usize,
    /// Routing nodes (internal + edge).
    pub routing: usize,
    /// Edge nodes: routing nodes with at least one remote child.
    pub edge_nodes: usize,
    /// Partitions directly linked below this one.
    pub remote_children: Vec<u32>,
}

impl PartitionStats {
    /// The linked child partitions as compute-node ids.
    #[must_use]
    pub fn remote_children_ids(&self) -> Vec<ComputeNodeId> {
        self.remote_children
            .iter()
            .map(|&p| ComputeNodeId(p))
            .collect()
    }
}

impl Wire for Req {
    fn wire_size(&self) -> usize {
        match self {
            Req::Insert { point, .. } => 8 * point.len() + 16,
            Req::Knn { point, .. } => 8 * point.len() + 32,
            Req::Range { point, .. } => 8 * point.len() + 24,
            Req::AdoptLeaf { bucket, .. } => {
                bucket.iter().map(|(p, _)| 8 * p.len() + 8).sum::<usize>() + 8
            }
            Req::Stats | Req::Verify | Req::Export => 4,
        }
    }
}

impl Wire for Resp {
    fn wire_size(&self) -> usize {
        match self {
            Resp::Done => 4,
            Resp::Candidates(c) => 16 * c.len() + 8,
            Resp::Stats(s) => 40 + 4 * s.remote_children.len(),
            Resp::Violations(v) => v.iter().map(String::len).sum::<usize>() + 8,
            Resp::Points(pts) => pts.iter().map(|(c, _)| 8 * c.len() + 8).sum::<usize>() + 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_scale_with_content() {
        let small = Req::Knn {
            node: LocalNodeId(0),
            point: vec![0.0; 2],
            k: 3,
            worst: None,
        };
        let large = Req::Knn {
            node: LocalNodeId(0),
            point: vec![0.0; 16],
            k: 3,
            worst: None,
        };
        assert!(large.wire_size() > small.wire_size());

        let empty = Resp::Candidates(vec![]);
        let full = Resp::Candidates(vec![(1.0, 2); 10]);
        assert!(full.wire_size() > empty.wire_size());
        assert!(Resp::Done.wire_size() > 0);
        assert!(Req::Stats.wire_size() > 0);
    }

    #[test]
    fn adopt_leaf_size_counts_points() {
        let a = Req::AdoptLeaf {
            bucket: vec![(vec![0.0; 4], 1)],
            depth: 0,
        };
        let b = Req::AdoptLeaf {
            bucket: vec![(vec![0.0; 4], 1); 10],
            depth: 0,
        };
        assert!(b.wire_size() > 5 * a.wire_size());
    }

    #[test]
    fn stats_children_roundtrip() {
        let s = PartitionStats {
            remote_children: vec![3, 5],
            ..Default::default()
        };
        assert_eq!(
            s.remote_children_ids(),
            vec![ComputeNodeId(3), ComputeNodeId(5)]
        );
    }
}
