//! The inter-partition message protocol (the paper's MPJ layer).
//!
//! [`Req`] and [`Resp`] implement both [`Wire`] (simulated byte
//! accounting) and `semtree-net`'s [`Encode`]/[`Decode`] (the real
//! binary codec). The two agree exactly: `wire_size()` returns the
//! precise number of bytes `encode()` produces, so the in-process
//! channel fabric and the TCP fabric report identical `bytes` metrics
//! for identical traffic.

use semtree_cluster::{ComputeNodeId, Wire};
use semtree_net::{Decode, DecodeError, Encode};

use crate::store::LocalNodeId;

/// Requests exchanged between partitions.
#[derive(Debug, Clone, PartialEq)]
pub enum Req {
    /// Insert a point into the sub-tree rooted at `node` of the receiving
    /// partition ("a message containing the point to be added has to be
    /// sent to the correct partition").
    Insert {
        /// Root of the receiving sub-tree.
        node: LocalNodeId,
        /// Query-space coordinates.
        point: Vec<f64>,
        /// Opaque payload (a triple id).
        payload: u64,
    },
    /// k-nearest search in the sub-tree rooted at `node`.
    Knn {
        /// Root of the receiving sub-tree.
        node: LocalNodeId,
        /// Query point `P`.
        point: Vec<f64>,
        /// Number of points `K`.
        k: usize,
        /// Current worst distance in the caller's result set, as a pruning
        /// hint (`None` while `|Rs| < K`).
        worst: Option<f64>,
    },
    /// Range search in the sub-tree rooted at `node`.
    Range {
        /// Root of the receiving sub-tree.
        node: LocalNodeId,
        /// Query point `P`.
        point: Vec<f64>,
        /// Range distance `D`.
        radius: f64,
    },
    /// Build-partition transfer: the receiving (new) partition adopts a
    /// whole leaf bucket as its root.
    AdoptLeaf {
        /// The evicted bucket.
        bucket: Vec<(Vec<f64>, u64)>,
        /// Global depth of the adopted leaf (keeps split-dimension cycling
        /// consistent across partitions).
        depth: u32,
    },
    /// Request the partition's local statistics.
    Stats,
    /// Check the partition's structural invariants.
    Verify,
    /// Export every point stored in this partition's local leaves (not
    /// following remote links) — the building block of repartitioning.
    Export,
    /// Batched k-nearest search: answer every query in `points` against
    /// the sub-tree rooted at `node` in one round trip. The serving
    /// partition may fan the batch out over its worker pool; answers come
    /// back as [`Resp::CandidateBatches`] in query order.
    KnnBatch {
        /// Root of the receiving sub-tree.
        node: LocalNodeId,
        /// Query points, one batch entry per point.
        points: Vec<Vec<f64>>,
        /// Number of points `K` per query.
        k: usize,
    },
}

/// Responses.
#[derive(Debug, Clone, PartialEq)]
pub enum Resp {
    /// Acknowledgement (insert, adopt).
    Done,
    /// Search candidates: `(distance, payload)` pairs.
    Candidates(Vec<(f64, u64)>),
    /// Partition statistics.
    Stats(PartitionStats),
    /// Invariant violations found by [`Req::Verify`] (empty = healthy).
    Violations(Vec<String>),
    /// The partition's local points, from [`Req::Export`].
    Points(Vec<(Vec<f64>, u64)>),
    /// The request failed inside the serving partition (e.g. a traversal
    /// hit a dead downstream partition). Carries a human-readable cause
    /// so failures propagate across process boundaries instead of
    /// panicking the server.
    Error(String),
    /// One candidate list per query of a [`Req::KnnBatch`], in query
    /// order.
    CandidateBatches(Vec<Vec<(f64, u64)>>),
}

/// Per-partition statistics, including the outgoing partition links so a
/// client can walk the whole partition tree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PartitionStats {
    /// Points stored in this partition's leaves.
    pub points: usize,
    /// Leaf nodes.
    pub leaves: usize,
    /// Routing nodes (internal + edge).
    pub routing: usize,
    /// Edge nodes: routing nodes with at least one remote child.
    pub edge_nodes: usize,
    /// Partitions directly linked below this one.
    pub remote_children: Vec<u32>,
}

impl PartitionStats {
    /// The linked child partitions as compute-node ids.
    #[must_use]
    pub fn remote_children_ids(&self) -> Vec<ComputeNodeId> {
        self.remote_children
            .iter()
            .map(|&p| ComputeNodeId(p))
            .collect()
    }
}

// ----------------------------------------------------------------------
// Binary codec (semtree-net)
// ----------------------------------------------------------------------

impl Encode for LocalNodeId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for LocalNodeId {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(LocalNodeId(u32::decode(buf)?))
    }
}

impl Encode for PartitionStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.points.encode(out);
        self.leaves.encode(out);
        self.routing.encode(out);
        self.edge_nodes.encode(out);
        self.remote_children.encode(out);
    }
}

impl Decode for PartitionStats {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(PartitionStats {
            points: usize::decode(buf)?,
            leaves: usize::decode(buf)?,
            routing: usize::decode(buf)?,
            edge_nodes: usize::decode(buf)?,
            remote_children: Vec::decode(buf)?,
        })
    }
}

impl Encode for Req {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Req::Insert {
                node,
                point,
                payload,
            } => {
                out.push(0);
                node.encode(out);
                point.encode(out);
                payload.encode(out);
            }
            Req::Knn {
                node,
                point,
                k,
                worst,
            } => {
                out.push(1);
                node.encode(out);
                point.encode(out);
                k.encode(out);
                worst.encode(out);
            }
            Req::Range {
                node,
                point,
                radius,
            } => {
                out.push(2);
                node.encode(out);
                point.encode(out);
                radius.encode(out);
            }
            Req::AdoptLeaf { bucket, depth } => {
                out.push(3);
                bucket.encode(out);
                depth.encode(out);
            }
            Req::Stats => out.push(4),
            Req::Verify => out.push(5),
            Req::Export => out.push(6),
            Req::KnnBatch { node, points, k } => {
                out.push(7);
                node.encode(out);
                points.encode(out);
                k.encode(out);
            }
        }
    }
}

impl Decode for Req {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(Req::Insert {
                node: LocalNodeId::decode(buf)?,
                point: Vec::decode(buf)?,
                payload: u64::decode(buf)?,
            }),
            1 => Ok(Req::Knn {
                node: LocalNodeId::decode(buf)?,
                point: Vec::decode(buf)?,
                k: usize::decode(buf)?,
                worst: Option::decode(buf)?,
            }),
            2 => Ok(Req::Range {
                node: LocalNodeId::decode(buf)?,
                point: Vec::decode(buf)?,
                radius: f64::decode(buf)?,
            }),
            3 => Ok(Req::AdoptLeaf {
                bucket: Vec::decode(buf)?,
                depth: u32::decode(buf)?,
            }),
            4 => Ok(Req::Stats),
            5 => Ok(Req::Verify),
            6 => Ok(Req::Export),
            7 => Ok(Req::KnnBatch {
                node: LocalNodeId::decode(buf)?,
                points: Vec::decode(buf)?,
                k: usize::decode(buf)?,
            }),
            other => Err(DecodeError::new(format!("bad Req tag {other}"))),
        }
    }
}

impl Encode for Resp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Resp::Done => out.push(0),
            Resp::Candidates(c) => {
                out.push(1);
                c.encode(out);
            }
            Resp::Stats(s) => {
                out.push(2);
                s.encode(out);
            }
            Resp::Violations(v) => {
                out.push(3);
                v.encode(out);
            }
            Resp::Points(pts) => {
                out.push(4);
                pts.encode(out);
            }
            Resp::Error(msg) => {
                out.push(5);
                msg.encode(out);
            }
            Resp::CandidateBatches(b) => {
                out.push(6);
                b.encode(out);
            }
        }
    }
}

impl Decode for Resp {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(Resp::Done),
            1 => Ok(Resp::Candidates(Vec::decode(buf)?)),
            2 => Ok(Resp::Stats(PartitionStats::decode(buf)?)),
            3 => Ok(Resp::Violations(Vec::decode(buf)?)),
            4 => Ok(Resp::Points(Vec::decode(buf)?)),
            5 => Ok(Resp::Error(String::decode(buf)?)),
            6 => Ok(Resp::CandidateBatches(Vec::decode(buf)?)),
            other => Err(DecodeError::new(format!("bad Resp tag {other}"))),
        }
    }
}

// ----------------------------------------------------------------------
// Simulated byte accounting — exact codec sizes, computed arithmetically
// ----------------------------------------------------------------------

impl Wire for Req {
    fn wire_size(&self) -> usize {
        // Tag byte + fields: LocalNodeId = 4, usize/u64/f64 = 8,
        // Vec<f64> = 8 + 8·len, Option<f64> = 1 or 9.
        match self {
            Req::Insert { point, .. } => 1 + 4 + (8 + 8 * point.len()) + 8,
            Req::Knn { point, worst, .. } => {
                1 + 4 + (8 + 8 * point.len()) + 8 + if worst.is_some() { 9 } else { 1 }
            }
            Req::Range { point, .. } => 1 + 4 + (8 + 8 * point.len()) + 8,
            Req::AdoptLeaf { bucket, .. } => {
                1 + 8 + bucket.iter().map(|(p, _)| 16 + 8 * p.len()).sum::<usize>() + 4
            }
            Req::Stats | Req::Verify | Req::Export => 1,
            Req::KnnBatch { points, .. } => {
                1 + 4 + 8 + points.iter().map(|p| 8 + 8 * p.len()).sum::<usize>() + 8
            }
        }
    }
}

impl Wire for Resp {
    fn wire_size(&self) -> usize {
        match self {
            Resp::Done => 1,
            Resp::Candidates(c) => 1 + 8 + 16 * c.len(),
            Resp::Stats(s) => 1 + 4 * 8 + 8 + 4 * s.remote_children.len(),
            Resp::Violations(v) => 1 + 8 + v.iter().map(|m| 8 + m.len()).sum::<usize>(),
            Resp::Points(pts) => 1 + 8 + pts.iter().map(|(c, _)| 16 + 8 * c.len()).sum::<usize>(),
            Resp::Error(msg) => 1 + 8 + msg.len(),
            Resp::CandidateBatches(b) => 1 + 8 + b.iter().map(|c| 8 + 16 * c.len()).sum::<usize>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semtree_net::decode_exact;

    fn representative_reqs() -> Vec<Req> {
        vec![
            Req::Insert {
                node: LocalNodeId(3),
                point: vec![1.5, -2.25, 0.0],
                payload: 42,
            },
            Req::Knn {
                node: LocalNodeId(0),
                point: vec![0.5; 7],
                k: 10,
                worst: None,
            },
            Req::Knn {
                node: LocalNodeId(9),
                point: vec![],
                k: 1,
                worst: Some(3.75),
            },
            Req::Range {
                node: LocalNodeId(1),
                point: vec![9.0, 8.0],
                radius: 2.5,
            },
            Req::AdoptLeaf {
                bucket: vec![
                    (vec![1.0, 2.0], 7),
                    (vec![3.0, 4.0], 8),
                    (vec![5.0, 6.0], 9),
                ],
                depth: 5,
            },
            Req::AdoptLeaf {
                bucket: vec![],
                depth: 0,
            },
            Req::Stats,
            Req::Verify,
            Req::Export,
            Req::KnnBatch {
                node: LocalNodeId(2),
                points: vec![vec![1.0, 2.0], vec![], vec![3.0, 4.0, 5.0]],
                k: 4,
            },
            Req::KnnBatch {
                node: LocalNodeId(0),
                points: vec![],
                k: 1,
            },
        ]
    }

    fn representative_resps() -> Vec<Resp> {
        vec![
            Resp::Done,
            Resp::Candidates(vec![]),
            Resp::Candidates(vec![(0.5, 1), (1.5, 2)]),
            Resp::Stats(PartitionStats {
                points: 100,
                leaves: 9,
                routing: 8,
                edge_nodes: 2,
                remote_children: vec![3, 5, 7],
            }),
            Resp::Stats(PartitionStats::default()),
            Resp::Violations(vec![]),
            Resp::Violations(vec!["bad depth".into(), "".into()]),
            Resp::Points(vec![(vec![1.0], 1), (vec![2.0, 3.0], 2)]),
            Resp::Error("partition 131072 unreachable".into()),
            Resp::Error(String::new()),
            Resp::CandidateBatches(vec![]),
            Resp::CandidateBatches(vec![vec![(0.5, 1), (1.5, 2)], vec![], vec![(2.5, 3)]]),
        ]
    }

    /// Satellite 1's acceptance: the simulated size **is** the encoded
    /// size, for every message shape the protocol can produce.
    #[test]
    fn wire_size_equals_encoded_length() {
        for req in representative_reqs() {
            assert_eq!(
                req.wire_size(),
                req.to_bytes().len(),
                "Req size mismatch: {req:?}"
            );
        }
        for resp in representative_resps() {
            assert_eq!(
                resp.wire_size(),
                resp.to_bytes().len(),
                "Resp size mismatch: {resp:?}"
            );
        }
    }

    #[test]
    fn protocol_messages_round_trip_through_the_codec() {
        for req in representative_reqs() {
            let back: Req = decode_exact(&req.to_bytes()).expect("req decodes");
            assert_eq!(back, req);
        }
        for resp in representative_resps() {
            let back: Resp = decode_exact(&resp.to_bytes()).expect("resp decodes");
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn corrupt_tags_are_rejected() {
        assert!(decode_exact::<Req>(&[200]).is_err());
        assert!(decode_exact::<Resp>(&[200]).is_err());
        // Trailing garbage is rejected too.
        let mut bytes = Req::Stats.to_bytes();
        bytes.push(0);
        assert!(decode_exact::<Req>(&bytes).is_err());
    }

    #[test]
    fn wire_sizes_scale_with_content() {
        let small = Req::Knn {
            node: LocalNodeId(0),
            point: vec![0.0; 2],
            k: 3,
            worst: None,
        };
        let large = Req::Knn {
            node: LocalNodeId(0),
            point: vec![0.0; 16],
            k: 3,
            worst: None,
        };
        assert!(large.wire_size() > small.wire_size());

        let empty = Resp::Candidates(vec![]);
        let full = Resp::Candidates(vec![(1.0, 2); 10]);
        assert!(full.wire_size() > empty.wire_size());
        assert!(Resp::Done.wire_size() > 0);
        assert!(Req::Stats.wire_size() > 0);
    }

    #[test]
    fn adopt_leaf_size_counts_points() {
        let a = Req::AdoptLeaf {
            bucket: vec![(vec![0.0; 4], 1)],
            depth: 0,
        };
        let b = Req::AdoptLeaf {
            bucket: vec![(vec![0.0; 4], 1); 10],
            depth: 0,
        };
        assert!(b.wire_size() > 5 * a.wire_size());
    }

    #[test]
    fn stats_children_roundtrip() {
        let s = PartitionStats {
            remote_children: vec![3, 5],
            ..Default::default()
        };
        assert_eq!(
            s.remote_children_ids(),
            vec![ComputeNodeId(3), ComputeNodeId(5)]
        );
    }
}
