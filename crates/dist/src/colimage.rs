//! Columnar snapshot-blob codec for [`StoreImage`].
//!
//! A verbatim store image serializes every node row-by-row, repeating
//! point coordinates and node framing for each entry. This module
//! regroups the image into `semtree-colz` columns — node kinds and
//! parent slots run-length encode, depths delta-encode, coordinates go
//! through the adaptive point codec — which is what makes per-partition
//! snapshots (the dominant on-disk bytes of a quiescent WAL) compress.
//! The WAL tags blobs written this way `SNAPSHOT_FORMAT_COLUMNAR`;
//! verbatim blobs keep working unchanged.
//!
//! Blob layout (all columns in order; every count cross-checked on
//! decode):
//!
//! ```text
//! header       UIntColumn    dims · bucket_size · split_rule · points · n_nodes
//! kinds        RleColumn     0 routing · 1 leaf, per node
//! depths       DeltaColumn   per-node global depth
//! parent_tags  RleColumn     0 root · 1 left child · 2 right child
//! parents      UIntColumn    parent id per non-root node
//! split_dims   UIntColumn    per routing node
//! split_vals   F64Column     per routing node
//! child_tags   RleColumn     0 local · 1 remote; left then right per routing node
//! child_ids    UIntColumn    local node id, or remote partition id
//! remote_nodes UIntColumn    remote node id per remote child
//! bucket_lens  UIntColumn    per leaf node
//! payloads     UIntColumn    all bucket payloads, leaf-major
//! points       PointsColumn  all bucket points, leaf-major
//! ```

use semtree_colz::{ColumnCodec, DeltaColumn, F64Column, PointsColumn, RleColumn, UIntColumn};

use crate::store::{ChildImage, NodeImage, NodeKindImage, StoreImage};

const KIND_ROUTING: u64 = 0;
const KIND_LEAF: u64 = 1;
const PARENT_NONE: u64 = 0;
const PARENT_LEFT: u64 = 1;
const PARENT_RIGHT: u64 = 2;
const CHILD_LOCAL: u64 = 0;
const CHILD_REMOTE: u64 = 1;

/// Encode a store image as a columnar snapshot blob.
pub(crate) fn encode_image(image: &StoreImage) -> Vec<u8> {
    let header = [
        image.dims as u64,
        image.bucket_size as u64,
        u64::from(image.split_rule),
        image.points as u64,
        image.nodes.len() as u64,
    ];
    let mut kinds = Vec::with_capacity(image.nodes.len());
    let mut depths = Vec::with_capacity(image.nodes.len());
    let mut parent_tags = Vec::with_capacity(image.nodes.len());
    let mut parents = Vec::new();
    let mut split_dims = Vec::new();
    let mut split_vals = Vec::new();
    let mut child_tags = Vec::new();
    let mut child_ids = Vec::new();
    let mut remote_nodes = Vec::new();
    let mut bucket_lens = Vec::new();
    let mut payloads = Vec::new();
    let mut points = Vec::new();

    for node in &image.nodes {
        depths.push(u64::from(node.depth));
        match node.parent {
            None => parent_tags.push(PARENT_NONE),
            Some((p, is_left)) => {
                parent_tags.push(if is_left { PARENT_LEFT } else { PARENT_RIGHT });
                parents.push(u64::from(p));
            }
        }
        match &node.kind {
            NodeKindImage::Routing {
                split_dim,
                split_val,
                left,
                right,
            } => {
                kinds.push(KIND_ROUTING);
                split_dims.push(*split_dim as u64);
                split_vals.push(*split_val);
                for child in [left, right] {
                    match child {
                        ChildImage::Local(id) => {
                            child_tags.push(CHILD_LOCAL);
                            child_ids.push(u64::from(*id));
                        }
                        ChildImage::Remote { partition, node } => {
                            child_tags.push(CHILD_REMOTE);
                            child_ids.push(u64::from(*partition));
                            remote_nodes.push(u64::from(*node));
                        }
                    }
                }
            }
            NodeKindImage::Leaf { bucket } => {
                kinds.push(KIND_LEAF);
                bucket_lens.push(bucket.len() as u64);
                for (point, payload) in bucket {
                    payloads.push(*payload);
                    points.push(point.clone());
                }
            }
        }
    }

    let mut out = Vec::new();
    UIntColumn::encode(&header, &mut out);
    RleColumn::encode(&kinds, &mut out);
    DeltaColumn::encode(&depths, &mut out);
    RleColumn::encode(&parent_tags, &mut out);
    UIntColumn::encode(&parents, &mut out);
    UIntColumn::encode(&split_dims, &mut out);
    F64Column::encode(&split_vals, &mut out);
    RleColumn::encode(&child_tags, &mut out);
    UIntColumn::encode(&child_ids, &mut out);
    UIntColumn::encode(&remote_nodes, &mut out);
    UIntColumn::encode(&bucket_lens, &mut out);
    UIntColumn::encode(&payloads, &mut out);
    PointsColumn::encode(&points, &mut out);
    out
}

fn to_u32(value: u64, context: &str) -> Result<u32, String> {
    u32::try_from(value).map_err(|_| format!("columnar snapshot: {context}"))
}

fn to_usize(value: u64, context: &str) -> Result<usize, String> {
    usize::try_from(value).map_err(|_| format!("columnar snapshot: {context}"))
}

/// Decode a columnar snapshot blob back into the exact store image.
pub(crate) fn decode_image(bytes: &[u8]) -> Result<StoreImage, String> {
    let fail = |context: &str| format!("columnar snapshot: {context}");
    let colz = |e: semtree_colz::ColzError| format!("columnar snapshot: {e}");

    let mut buf = bytes;
    let header = UIntColumn::decode(&mut buf).map_err(colz)?;
    let [dims, bucket_size, split_rule, points_total, n_nodes] = header[..] else {
        return Err(fail("header must hold exactly five values"));
    };
    let kinds = RleColumn::decode(&mut buf).map_err(colz)?;
    let depths = DeltaColumn::decode(&mut buf).map_err(colz)?;
    let parent_tags = RleColumn::decode(&mut buf).map_err(colz)?;
    let parents = UIntColumn::decode(&mut buf).map_err(colz)?;
    let split_dims = UIntColumn::decode(&mut buf).map_err(colz)?;
    let split_vals = F64Column::decode(&mut buf).map_err(colz)?;
    let child_tags = RleColumn::decode(&mut buf).map_err(colz)?;
    let child_ids = UIntColumn::decode(&mut buf).map_err(colz)?;
    let remote_nodes = UIntColumn::decode(&mut buf).map_err(colz)?;
    let bucket_lens = UIntColumn::decode(&mut buf).map_err(colz)?;
    let payloads = UIntColumn::decode(&mut buf).map_err(colz)?;
    let points = PointsColumn::decode(&mut buf).map_err(colz)?;
    if !buf.is_empty() {
        return Err(fail("trailing bytes after columns"));
    }

    let n_nodes = to_usize(n_nodes, "node count exceeds usize")?;
    if kinds.len() != n_nodes || depths.len() != n_nodes || parent_tags.len() != n_nodes {
        return Err(fail("per-node columns disagree with the header"));
    }
    let routing = kinds.iter().filter(|&&k| k == KIND_ROUTING).count();
    if split_dims.len() != routing || split_vals.len() != routing {
        return Err(fail("routing columns disagree with the kind column"));
    }
    if child_tags.len() != 2 * routing || child_ids.len() != 2 * routing {
        return Err(fail("child columns disagree with the routing count"));
    }
    let remote = child_tags.iter().filter(|&&t| t == CHILD_REMOTE).count();
    if remote_nodes.len() != remote {
        return Err(fail("remote node column disagrees with the child tags"));
    }
    let leaves = kinds.len() - routing;
    if bucket_lens.len() != leaves {
        return Err(fail("bucket length column disagrees with the kind column"));
    }

    let mut nodes = Vec::with_capacity(n_nodes);
    let mut next_parent = 0usize;
    let mut next_routing = 0usize;
    let mut next_child = 0usize;
    let mut next_remote = 0usize;
    let mut next_leaf = 0usize;
    let mut point_cursor = 0usize;
    for (i, &kind) in kinds.iter().enumerate() {
        let parent = match parent_tags[i] {
            PARENT_NONE => None,
            tag @ (PARENT_LEFT | PARENT_RIGHT) => {
                let p = *parents
                    .get(next_parent)
                    .ok_or_else(|| fail("parent column underflow"))?;
                next_parent += 1;
                Some((to_u32(p, "parent id exceeds u32")?, tag == PARENT_LEFT))
            }
            _ => return Err(fail("unknown parent tag")),
        };
        let kind = match kind {
            KIND_ROUTING => {
                let j = next_routing;
                next_routing += 1;
                let mut children = [ChildImage::Local(0); 2];
                for slot in &mut children {
                    let tag = child_tags[next_child];
                    let id = child_ids[next_child];
                    next_child += 1;
                    *slot = match tag {
                        CHILD_LOCAL => ChildImage::Local(to_u32(id, "child id exceeds u32")?),
                        CHILD_REMOTE => {
                            let node = *remote_nodes
                                .get(next_remote)
                                .ok_or_else(|| fail("remote node column underflow"))?;
                            next_remote += 1;
                            ChildImage::Remote {
                                partition: to_u32(id, "partition id exceeds u32")?,
                                node: to_u32(node, "remote node id exceeds u32")?,
                            }
                        }
                        _ => return Err(fail("unknown child tag")),
                    };
                }
                NodeKindImage::Routing {
                    split_dim: to_usize(split_dims[j], "split dim exceeds usize")?,
                    split_val: split_vals[j],
                    left: children[0],
                    right: children[1],
                }
            }
            KIND_LEAF => {
                let len = to_usize(bucket_lens[next_leaf], "bucket length exceeds usize")?;
                next_leaf += 1;
                let end = point_cursor
                    .checked_add(len)
                    .filter(|&end| end <= points.len() && end <= payloads.len())
                    .ok_or_else(|| fail("leaf bucket overruns its columns"))?;
                let bucket = (point_cursor..end)
                    .map(|j| (points[j].clone(), payloads[j]))
                    .collect();
                point_cursor = end;
                NodeKindImage::Leaf { bucket }
            }
            _ => return Err(fail("unknown node kind")),
        };
        nodes.push(NodeImage {
            kind,
            depth: to_u32(depths[i], "depth exceeds u32")?,
            parent,
        });
    }
    if next_parent != parents.len()
        || point_cursor != points.len()
        || point_cursor != payloads.len()
    {
        return Err(fail("per-kind columns not fully consumed"));
    }

    Ok(StoreImage {
        dims: to_usize(dims, "dims exceeds usize")?,
        bucket_size: to_usize(bucket_size, "bucket size exceeds usize")?,
        split_rule: u8::try_from(split_rule).map_err(|_| fail("split rule tag exceeds u8"))?,
        points: to_usize(points_total, "point count exceeds usize")?,
        nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use semtree_net::Encode as _;

    fn sample_image() -> StoreImage {
        // A small arena with every feature: routing root, a remote right
        // child, parent backlinks, and leaf buckets drawn from a small
        // point palette (the occurrence-heavy shape real corpora have).
        let palette: Vec<Vec<f64>> = (0..6)
            .map(|i| (0..4).map(|d| f64::from(i * 4 + d) * 0.125).collect())
            .collect();
        let bucket = |seed: usize, n: usize| -> Vec<(Vec<f64>, u64)> {
            (0..n)
                .map(|j| (palette[(seed + j) % 6].clone(), (seed * 100 + j) as u64))
                .collect()
        };
        StoreImage {
            dims: 4,
            bucket_size: 8,
            split_rule: 0,
            points: 150 + 149,
            nodes: vec![
                NodeImage {
                    kind: NodeKindImage::Routing {
                        split_dim: 2,
                        split_val: 0.375,
                        left: ChildImage::Local(1),
                        right: ChildImage::Remote {
                            partition: 0x0002_0001,
                            node: 0,
                        },
                    },
                    depth: 0,
                    parent: None,
                },
                NodeImage {
                    kind: NodeKindImage::Routing {
                        split_dim: 3,
                        split_val: -1.5,
                        left: ChildImage::Local(2),
                        right: ChildImage::Local(3),
                    },
                    depth: 1,
                    parent: Some((0, true)),
                },
                NodeImage {
                    kind: NodeKindImage::Leaf {
                        bucket: bucket(1, 150),
                    },
                    depth: 2,
                    parent: Some((1, true)),
                },
                NodeImage {
                    kind: NodeKindImage::Leaf {
                        bucket: bucket(2, 149),
                    },
                    depth: 2,
                    parent: Some((1, false)),
                },
            ],
        }
    }

    #[test]
    fn images_round_trip_exactly() {
        for image in [
            StoreImage {
                dims: 2,
                bucket_size: 4,
                split_rule: 1,
                points: 0,
                nodes: Vec::new(),
            },
            sample_image(),
        ] {
            let blob = encode_image(&image);
            let back = decode_image(&blob).expect("round trip");
            assert_eq!(back, image);
        }
    }

    #[test]
    fn columnar_blobs_beat_verbatim_by_5x_on_repetitive_buckets() {
        let image = sample_image();
        let verbatim = image.to_bytes();
        let blob = encode_image(&image);
        assert!(
            blob.len() * 5 < verbatim.len(),
            "columnar {} vs verbatim {}",
            blob.len(),
            verbatim.len()
        );
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let blob = encode_image(&sample_image());
        for cut in [0, 1, blob.len() / 3, blob.len() - 1] {
            assert!(decode_image(&blob[..cut]).is_err(), "cut at {cut}");
        }
        let mut extended = blob.clone();
        extended.push(0);
        assert!(decode_image(&extended).is_err());
    }

    #[test]
    fn header_and_schedule_mismatches_are_rejected() {
        // Header claims two nodes, but the per-node columns hold none.
        let mut bad = Vec::new();
        UIntColumn::encode(&[2, 4, 0, 0, 2], &mut bad);
        RleColumn::encode(&[], &mut bad);
        DeltaColumn::encode(&[], &mut bad);
        RleColumn::encode(&[], &mut bad);
        for _ in 0..5 {
            UIntColumn::encode(&[], &mut bad);
        }
        // Remaining columns: child_tags (RLE), child_ids, remote_nodes,
        // bucket_lens, payloads, points — the early disagreement must
        // already reject the blob.
        RleColumn::encode(&[], &mut bad);
        for _ in 0..4 {
            UIntColumn::encode(&[], &mut bad);
        }
        PointsColumn::encode(&[], &mut bad);
        assert!(decode_image(&bad).is_err());
    }
}
