//! The distributed SemTree index (paper §III-B).
//!
//! SemTree is "a distributed index particularly suitable for managing
//! semantic extracted data": a bucketed KD-tree whose nodes are spread over
//! **partitions**, each hosted by a compute node of the simulated cluster.
//! Data lives only in leaf buckets; internal *routing* nodes carry the
//! split index `Sr` and split value `Sv`. A routing node is an **edge node**
//! when at least one child is the root of a different partition, an
//! *internal* node otherwise — exactly the paper's taxonomy.
//!
//! Implemented algorithms:
//!
//! 1. **Distributed insertion** (§III-B.1): navigation compares `P[Sr]`
//!    against `Sv`; if the chosen child lives on another partition
//!    (`Cp ≠ Childp`) the point travels there in a message. A saturated
//!    leaf bucket splits into two children and its points move down.
//! 2. **Build partition** (§III-B.2): when a partition's *resource
//!    condition* fires (statically fixed or dynamically evaluated — see
//!    [`CapacityPolicy`]), leaves of the overfull partition move into newly
//!    created partitions and a direct link replaces them, leaving "some
//!    partitions … used just for routing and others for storing data".
//! 3. **Distributed k-nearest** (§III-B.3): standard KD backtracking; a
//!    sub-tree is descended iff the result set is not full (`|Rs| < K`) or
//!    the splitting hyperplane is closer than the current worst result.
//!    Crossing a partition border exchanges a request/response pair, with
//!    the current worst distance piggy-backed as a pruning hint.
//! 4. **Distributed range search** (§III-B.4): both children are descended
//!    whenever `|P[SI] − Sv| ≤ D`; when both live on *other* partitions
//!    (a border node) they are searched **in parallel**, and the partial
//!    result sets are merged on the way back.
//!
//! # Table I (the paper's k-search parameter glossary)
//!
//! | Field | Reference | Here |
//! |---|---|---|
//! | Node status `S` | Not/Left/Right/All visited | implicit in the recursion |
//! | Number of points `K` | results wanted | `k` argument of [`DistSemTree::knn`] |
//! | Distance `D` | current worst / range radius | the `worst` pruning hint / `radius` |
//! | Result-set `Rs` | the k best so far | the bounded max-heap |
//! | Point `P` | query point | `point` argument |
//!
//! # Example
//!
//! ```
//! use semtree_cluster::CostModel;
//! use semtree_dist::{CapacityPolicy, DistConfig, DistSemTree};
//!
//! let config = DistConfig::new(2).with_bucket_size(8);
//! // Three partitions (paper Figure 5's "3 partitions" series): one root
//! // routing partition + two data partitions, split on a data sample.
//! let sample: Vec<Vec<f64>> = (0..32).map(|i| vec![f64::from(i), 0.0]).collect();
//! let tree = DistSemTree::with_fanout(config, CostModel::zero(), 3, &sample);
//! for i in 0..100u32 {
//!     tree.insert(&[f64::from(i % 10), f64::from(i / 10)], u64::from(i));
//! }
//! let hits = tree.knn(&[3.1, 4.8], 3);
//! assert_eq!(hits.len(), 3);
//! assert_eq!(hits[0].payload, 53);
//! tree.shutdown();
//! ```

mod actor;
mod colimage;
mod deploy;
mod mirror;
mod proto;
mod recovery;
mod store;
mod tree;

pub use deploy::{
    build_local_durable, build_tree, build_tree_durable, join_cluster, join_cluster_durable,
    serve_clients, serve_clients_with, serve_cluster, ClientMetrics, ClientReq, ClientResp,
    DeployError, DistFabric, NetClient, NetDeployConfig, PendingReply, PipelinedClient,
    ServeOptions, WorkerHandle,
};
pub use proto::{PartitionStats, Req, Resp};
pub use recovery::{inspect_wal, SnapshotCompression, WalInspection};
pub use semtree_kdtree::Neighbor;
pub use semtree_reactor::{effective_reactors, Backend as PollerBackend};
pub use semtree_wal::WalOptions;
pub use store::LocalNodeId;
pub use tree::{CapacityPolicy, DistConfig, DistSemTree, GlobalStats, Query, QueryOutcome};
