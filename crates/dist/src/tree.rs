//! The `DistSemTree` facade: configuration, construction, and the public
//! insert/k-NN/range operations.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use semtree_cluster::{
    ChannelFabric, Cluster, ClusterError, ClusterMetrics, CompleteFn, ComputeNodeId, CostModel,
    Transport,
};
use semtree_kdtree::{Neighbor, SplitRule};

use crate::actor::PartitionActor;
use crate::mirror::ReadHandle;
use crate::proto::{PartitionStats, Req, Resp};
use crate::recovery::WalHandle;
use crate::store::{Child, LocalNodeId, PNodeKind, PartitionStore};

/// The per-partition *resource condition* of the insertion algorithm: "the
/// condition can be dynamically evaluated at run-time — for example, it may
/// depend on the percentage of the available storage resources of each
/// partition — or statically fixed".
#[derive(Clone)]
pub enum CapacityPolicy {
    /// Never triggers build-partition.
    Unlimited,
    /// Statically fixed: at most this many points per partition.
    MaxPoints(usize),
    /// Dynamically evaluated: the closure receives the partition's current
    /// point count and returns `true` when the partition is over budget.
    Dynamic(Arc<dyn Fn(usize) -> bool + Send + Sync>),
}

impl CapacityPolicy {
    pub(crate) fn exceeded(&self, points: usize) -> bool {
        match self {
            CapacityPolicy::Unlimited => false,
            CapacityPolicy::MaxPoints(max) => points > *max,
            CapacityPolicy::Dynamic(f) => f(points),
        }
    }
}

impl std::fmt::Debug for CapacityPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CapacityPolicy::Unlimited => f.write_str("Unlimited"),
            CapacityPolicy::MaxPoints(n) => write!(f, "MaxPoints({n})"),
            CapacityPolicy::Dynamic(_) => f.write_str("Dynamic(..)"),
        }
    }
}

/// Distributed-tree configuration.
#[derive(Debug, Clone)]
pub struct DistConfig {
    pub(crate) dims: usize,
    pub(crate) bucket_size: usize,
    pub(crate) capacity: CapacityPolicy,
    pub(crate) max_partitions: usize,
    pub(crate) split_rule: SplitRule,
}

impl DistConfig {
    /// Defaults: bucket size 32, unlimited capacity, up to 64 partitions.
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    #[must_use]
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "dimensionality must be at least 1");
        DistConfig {
            dims,
            bucket_size: 32,
            capacity: CapacityPolicy::Unlimited,
            max_partitions: 64,
            split_rule: SplitRule::Cycle,
        }
    }

    /// Leaf split rule; [`SplitRule::DegenerateMin`] reproduces the
    /// paper's "totally unbalanced" series.
    #[must_use]
    pub fn with_split_rule(mut self, split_rule: SplitRule) -> Self {
        self.split_rule = split_rule;
        self
    }

    /// Leaf bucket capacity `Bs`.
    ///
    /// # Panics
    /// Panics if `bucket_size == 0`.
    #[must_use]
    pub fn with_bucket_size(mut self, bucket_size: usize) -> Self {
        assert!(bucket_size > 0, "bucket size must be at least 1");
        self.bucket_size = bucket_size;
        self
    }

    /// Per-partition resource condition.
    #[must_use]
    pub fn with_capacity(mut self, capacity: CapacityPolicy) -> Self {
        self.capacity = capacity;
        self
    }

    /// Cap on the number of compute nodes / partitions.
    ///
    /// # Panics
    /// Panics if `max_partitions == 0`.
    #[must_use]
    pub fn with_max_partitions(mut self, max_partitions: usize) -> Self {
        assert!(max_partitions > 0, "at least one partition is required");
        self.max_partitions = max_partitions;
        self
    }

    /// Point dimensionality.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Leaf bucket capacity.
    #[must_use]
    pub fn bucket_size(&self) -> usize {
        self.bucket_size
    }
}

/// Planar points (`dims = 2`) with [`DistConfig::new`]'s defaults —
/// mirrors `KdConfig::default()` so the two tree layers start from the
/// same configuration shape.
impl Default for DistConfig {
    fn default() -> Self {
        DistConfig::new(2)
    }
}

/// Configuration + partition accounting shared by every actor.
pub(crate) struct SharedConfig {
    pub(crate) dims: usize,
    pub(crate) bucket_size: usize,
    pub(crate) split_rule: SplitRule,
    pub(crate) capacity: CapacityPolicy,
    pub(crate) max_partitions: usize,
    /// The process-wide WAL, `None` when running without durability.
    pub(crate) wal: Option<Arc<WalHandle>>,
    partitions: AtomicUsize,
    /// Lock-free read handles registered by fully-local partition
    /// actors, keyed by hosting compute node. Leaf lock (rank 21 in
    /// semtree-check's order): nothing is acquired while it is held.
    read_handles: Mutex<HashMap<ComputeNodeId, Arc<ReadHandle>>>,
    /// Metrics sink for optimistic-read retry accounting; set once the
    /// owning fabric is known, absent in bare unit-test stores.
    metrics: OnceLock<Arc<ClusterMetrics>>,
}

impl SharedConfig {
    pub(crate) fn new(config: &DistConfig) -> Arc<Self> {
        Self::new_with_wal(config, None)
    }

    pub(crate) fn new_with_wal(config: &DistConfig, wal: Option<Arc<WalHandle>>) -> Arc<Self> {
        Arc::new(SharedConfig {
            dims: config.dims,
            bucket_size: config.bucket_size,
            split_rule: config.split_rule,
            capacity: config.capacity.clone(),
            max_partitions: config.max_partitions,
            wal,
            partitions: AtomicUsize::new(0),
            read_handles: Mutex::new(HashMap::new()),
            metrics: OnceLock::new(),
        })
    }

    /// Publish (or refresh) the lock-free read handle for the partition
    /// hosted on `node`.
    pub(crate) fn register_read_handle(&self, node: ComputeNodeId, handle: Arc<ReadHandle>) {
        self.read_handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(node, handle);
    }

    /// The read handle registered for `node`, if any.
    pub(crate) fn read_handle(&self, node: ComputeNodeId) -> Option<Arc<ReadHandle>> {
        self.read_handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&node)
            .cloned()
    }

    /// Attach the cluster metrics sink (idempotent; first caller wins).
    pub(crate) fn set_metrics(&self, metrics: Arc<ClusterMetrics>) {
        let _ = self.metrics.set(metrics);
    }

    /// Account one optimistic read that validated after `retries`
    /// writer races; a no-op when no metrics sink is attached.
    pub(crate) fn record_read_retries(&self, retries: u64) {
        if let Some(m) = self.metrics.get() {
            m.record_read_retries(retries);
        }
    }

    /// Atomically claim a slot for one more partition; `false` when the
    /// cluster is out of compute nodes.
    pub(crate) fn try_reserve_partition(&self) -> bool {
        self.partitions
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
                (cur < self.max_partitions).then_some(cur + 1)
            })
            .is_ok()
    }

    /// Return a previously reserved slot (a build-partition transfer
    /// failed after reserving).
    pub(crate) fn release_partition(&self) {
        self.partitions.fetch_sub(1, Ordering::SeqCst);
    }

    fn partition_count(&self) -> usize {
        self.partitions.load(Ordering::SeqCst)
    }
}

/// Whole-tree statistics gathered by walking the partition tree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GlobalStats {
    /// `(compute node id, stats)` per partition, root first (BFS order).
    pub partitions: Vec<(u32, PartitionStats)>,
}

impl GlobalStats {
    /// Total stored points across partitions.
    #[must_use]
    pub fn total_points(&self) -> usize {
        self.partitions.iter().map(|(_, s)| s.points).sum()
    }

    /// Number of partitions.
    #[must_use]
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Partitions that only route (store no points) — the paper's "some
    /// partitions are used just for routing and others for storing data".
    #[must_use]
    pub fn routing_only(&self) -> usize {
        self.partitions
            .iter()
            .filter(|(_, s)| s.points == 0 && s.routing > 0)
            .count()
    }

    /// Total routing nodes hosted by the root partition (the paper's
    /// `2·M − 1` claim for a pure-routing root over `M − 1` data
    /// partitions).
    #[must_use]
    pub fn root_routing_nodes(&self) -> usize {
        self.partitions.first().map_or(0, |(_, s)| s.routing)
    }
}

/// One typed request against a [`DistSemTree`] — the input to
/// [`DistSemTree::query`], the unified entry point that replaced the
/// accreted `try_*`/panicking method pairs.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Store one point with its payload (the distributed insertion
    /// algorithm, starting "from the root node of the root partition").
    Insert {
        /// Point coordinates (must match the configured dimensionality).
        point: Vec<f64>,
        /// Caller-owned identifier carried with the point.
        payload: u64,
    },
    /// The `k` nearest stored points to `point`.
    Knn {
        /// Query point.
        point: Vec<f64>,
        /// Result-set size `K`.
        k: usize,
    },
    /// The `k` nearest stored points to every entry of `points`,
    /// answered in one round trip to the root partition.
    KnnBatch {
        /// Query points, answered in order.
        points: Vec<Vec<f64>>,
        /// Result-set size `K` per query.
        k: usize,
    },
    /// Every stored point within `radius` of `point` (inclusive).
    Range {
        /// Query point.
        point: Vec<f64>,
        /// Inclusive search radius `D`.
        radius: f64,
    },
}

impl Query {
    /// [`Query::Insert`] from borrowed coordinates.
    #[must_use]
    pub fn insert(point: &[f64], payload: u64) -> Self {
        Query::Insert {
            point: point.to_vec(),
            payload,
        }
    }

    /// [`Query::Knn`] from borrowed coordinates.
    #[must_use]
    pub fn knn(point: &[f64], k: usize) -> Self {
        Query::Knn {
            point: point.to_vec(),
            k,
        }
    }

    /// [`Query::KnnBatch`] from borrowed query points.
    #[must_use]
    pub fn knn_batch(points: &[Vec<f64>], k: usize) -> Self {
        Query::KnnBatch {
            points: points.to_vec(),
            k,
        }
    }

    /// [`Query::Range`] from borrowed coordinates.
    #[must_use]
    pub fn range(point: &[f64], radius: f64) -> Self {
        Query::Range {
            point: point.to_vec(),
            radius,
        }
    }
}

/// The successful result of [`DistSemTree::query`], one variant per
/// [`Query`] shape. The typed accessors convert a shape mismatch into a
/// [`ClusterError`] instead of panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// An [`Query::Insert`] was applied and acknowledged.
    Inserted,
    /// Hits for [`Query::Knn`] / [`Query::Range`], closest first.
    Neighbors(Vec<Neighbor<u64>>),
    /// Per-query hits for [`Query::KnnBatch`], in input order, each
    /// closest first.
    NeighborBatches(Vec<Vec<Neighbor<u64>>>),
}

impl QueryOutcome {
    fn mismatch(expected: &str, got: &Self) -> ClusterError {
        ClusterError::Remote(format!("expected {expected} outcome, got {got:?}"))
    }

    /// Confirm this outcome acknowledges an insert.
    ///
    /// # Errors
    /// Fails when the outcome is not [`QueryOutcome::Inserted`].
    pub fn inserted(self) -> Result<(), ClusterError> {
        match self {
            QueryOutcome::Inserted => Ok(()),
            other => Err(Self::mismatch("insert", &other)),
        }
    }

    /// The neighbour list of a k-NN or range outcome.
    ///
    /// # Errors
    /// Fails when the outcome is not [`QueryOutcome::Neighbors`].
    pub fn neighbors(self) -> Result<Vec<Neighbor<u64>>, ClusterError> {
        match self {
            QueryOutcome::Neighbors(hits) => Ok(hits),
            other => Err(Self::mismatch("neighbors", &other)),
        }
    }

    /// The per-query neighbour lists of a batched k-NN outcome.
    ///
    /// # Errors
    /// Fails when the outcome is not [`QueryOutcome::NeighborBatches`].
    pub fn neighbor_batches(self) -> Result<Vec<Vec<Neighbor<u64>>>, ClusterError> {
        match self {
            QueryOutcome::NeighborBatches(batches) => Ok(batches),
            other => Err(Self::mismatch("neighbor batches", &other)),
        }
    }
}

fn to_neighbors(candidates: Vec<(f64, u64)>) -> Vec<Neighbor<u64>> {
    candidates
        .into_iter()
        .map(|(dist, payload)| Neighbor { dist, payload })
        .collect()
}

/// Map an insert's actor response. Shared by the blocking and pipelined
/// query paths so both produce identical outcomes.
fn expect_done(resp: Resp) -> Result<QueryOutcome, ClusterError> {
    match resp {
        Resp::Done => Ok(QueryOutcome::Inserted),
        Resp::Error(msg) => Err(ClusterError::Remote(msg)),
        other => Err(ClusterError::Remote(format!(
            "expected done, got {other:?}"
        ))),
    }
}

/// Map a search's actor response to its raw candidate list.
fn expect_candidates(resp: Resp) -> Result<Vec<(f64, u64)>, ClusterError> {
    match resp {
        Resp::Candidates(c) => Ok(c),
        Resp::Error(msg) => Err(ClusterError::Remote(msg)),
        other => Err(ClusterError::Remote(format!(
            "expected candidates, got {other:?}"
        ))),
    }
}

/// Map a batched search's actor response.
fn expect_batches(resp: Resp) -> Result<QueryOutcome, ClusterError> {
    match resp {
        Resp::CandidateBatches(b) => Ok(QueryOutcome::NeighborBatches(
            b.into_iter().map(to_neighbors).collect(),
        )),
        Resp::Error(msg) => Err(ClusterError::Remote(msg)),
        other => Err(ClusterError::Remote(format!(
            "expected candidate batches, got {other:?}"
        ))),
    }
}

/// Range results are distance-sorted before they leave the facade.
fn sorted_range_outcome(candidates: Vec<(f64, u64)>) -> QueryOutcome {
    let mut out = to_neighbors(candidates);
    out.sort_by(|a, b| a.dist.total_cmp(&b.dist));
    QueryOutcome::Neighbors(out)
}

/// The distributed SemTree: a cluster of partition actors behind a
/// synchronous client API.
pub struct DistSemTree {
    cluster: Cluster<PartitionActor>,
    root: ComputeNodeId,
    shared: Arc<SharedConfig>,
    /// Shared (not inline) so pipelined completion callbacks can bump it
    /// from whatever thread finishes an insert.
    inserted: Arc<AtomicU64>,
    cost: CostModel,
}

impl DistSemTree {
    /// Single-partition tree (the sequential baseline, "1 partition").
    #[must_use]
    pub fn single(config: DistConfig, cost: CostModel) -> Self {
        DistSemTree::build_on(Cluster::new(cost), config, cost, 1, &[])
            .expect("in-process construction cannot fail")
    }

    /// `partitions`-partition tree: one pure-routing root partition whose
    /// routing tree splits the space into `partitions − 1` regions (by
    /// medians of `sample`), each hosted by its own data partition. This is
    /// how the experiments pin the paper's "3 / 5 / 9 partitions" series.
    ///
    /// # Panics
    /// Panics if `partitions == 0`, or if `partitions > 1` with an empty
    /// sample or a `max_partitions` smaller than `partitions`.
    #[must_use]
    pub fn with_fanout(
        config: DistConfig,
        cost: CostModel,
        partitions: usize,
        sample: &[Vec<f64>],
    ) -> Self {
        DistSemTree::build_on(Cluster::new(cost), config, cost, partitions, sample)
            .expect("in-process construction cannot fail")
    }

    /// Build over an explicit [`Transport`] — `local` hosts this process's
    /// nodes (the root partition always lives here), `transport` routes
    /// and *places* the data partitions: under `semtree-net` they land on
    /// worker processes, round-robin.
    ///
    /// # Errors
    /// Fails when a data partition cannot be spawned or seeded — e.g. no
    /// worker process is reachable.
    ///
    /// # Panics
    /// Panics on the same configuration errors as
    /// [`with_fanout`](DistSemTree::with_fanout).
    pub fn over_transport(
        local: Arc<ChannelFabric<Req, Resp>>,
        transport: Arc<dyn Transport<Req, Resp>>,
        config: DistConfig,
        cost: CostModel,
        partitions: usize,
        sample: &[Vec<f64>],
    ) -> Result<Self, ClusterError> {
        DistSemTree::over_transport_with_wal(
            local, transport, config, cost, partitions, sample, None,
        )
    }

    /// [`over_transport`](DistSemTree::over_transport) with a WAL: the
    /// locally hosted partitions (at least the root) log every mutation
    /// and snapshot their initial state.
    pub(crate) fn over_transport_with_wal(
        local: Arc<ChannelFabric<Req, Resp>>,
        transport: Arc<dyn Transport<Req, Resp>>,
        config: DistConfig,
        cost: CostModel,
        partitions: usize,
        sample: &[Vec<f64>],
        wal: Option<Arc<WalHandle>>,
    ) -> Result<Self, ClusterError> {
        DistSemTree::build_on_with_wal(
            Cluster::from_parts(local, transport),
            config,
            cost,
            partitions,
            sample,
            wal,
        )
    }

    /// Shared construction path: install the member factory, then spawn
    /// the root locally and the data partitions through the transport.
    fn build_on(
        cluster: Cluster<PartitionActor>,
        config: DistConfig,
        cost: CostModel,
        partitions: usize,
        sample: &[Vec<f64>],
    ) -> Result<Self, ClusterError> {
        DistSemTree::build_on_with_wal(cluster, config, cost, partitions, sample, None)
    }

    pub(crate) fn build_on_with_wal(
        cluster: Cluster<PartitionActor>,
        config: DistConfig,
        cost: CostModel,
        partitions: usize,
        sample: &[Vec<f64>],
        wal: Option<Arc<WalHandle>>,
    ) -> Result<Self, ClusterError> {
        assert!(partitions > 0, "at least one partition is required");
        let shared = SharedConfig::new_with_wal(&config, wal);
        shared.set_metrics(cluster.metrics_handle());
        install_member_factory(&cluster, &shared);

        if partitions == 1 {
            assert!(shared.try_reserve_partition());
            // Build the root store explicitly so its initial image can be
            // snapshotted once the spawn assigns the partition id.
            let store = PartitionStore::new_leaf_with_rule(
                config.dims,
                config.bucket_size,
                config.split_rule,
                Vec::new(),
                0,
            );
            let image = shared.wal.as_ref().map(|_| store.to_image());
            let root = cluster.spawn(PartitionActor::with_store(store, Arc::clone(&shared)));
            snapshot_initial(&shared, root, image)?;
            return Ok(DistSemTree {
                cluster,
                root,
                shared,
                inserted: Arc::new(AtomicU64::new(0)),
                cost,
            });
        }
        assert!(
            partitions >= 3,
            "a routing root needs at least two data partitions (use 1, or ≥ 3)"
        );
        assert!(
            config.max_partitions >= partitions,
            "max_partitions ({}) below requested partitions ({partitions})",
            config.max_partitions
        );
        assert!(
            !sample.is_empty(),
            "a non-empty sample is required to choose the fan-out splits"
        );
        for p in sample {
            assert_eq!(p.len(), config.dims, "sample dimensionality mismatch");
        }

        // Data partitions are spawned as the recursion reaches its leaves;
        // the root's routing tree is assembled in a local store whose first
        // pushed node (the routing root) becomes node 0.
        let mut store = PartitionStore::empty_arena(config.dims, config.bucket_size);
        let mut sample: Vec<&[f64]> = sample.iter().map(Vec::as_slice).collect();
        let root_child = build_fanout(
            &cluster,
            &shared,
            &mut store,
            &mut sample,
            partitions - 1,
            0,
            config.dims,
        )?;
        match root_child {
            Child::Local(id) => debug_assert_eq!(id, LocalNodeId(0)),
            Child::Remote { .. } => unreachable!("fan-out of ≥2 leaves roots locally"),
        }

        assert!(shared.try_reserve_partition()); // the root partition itself
        let image = shared.wal.as_ref().map(|_| store.to_image());
        let root = cluster.spawn(PartitionActor::with_store(store, Arc::clone(&shared)));
        snapshot_initial(&shared, root, image)?;
        Ok(DistSemTree {
            cluster,
            root,
            shared,
            inserted: Arc::new(AtomicU64::new(0)),
            cost,
        })
    }

    /// Execute one typed [`Query`] — the single entry point for every
    /// data operation.
    ///
    /// Writes always travel through the root partition's actor mailbox
    /// (preserving WAL-before-apply ordering). Reads take a lock-free
    /// fast path when the root partition is fully local: they run
    /// against the actor's seqlock [`Mirror`](crate::mirror::Mirror)
    /// without entering the mailbox, retrying only when racing an
    /// in-flight insert, and the answer is byte-identical to the
    /// mailbox path. Retries land in the cluster metrics
    /// (`reads_retried`).
    ///
    /// # Errors
    /// Fails when a partition the operation must visit is unreachable
    /// (dead node, network fault) or reports a failure of its own.
    pub fn query(&self, query: Query) -> Result<QueryOutcome, ClusterError> {
        match query {
            Query::Insert { point, payload } => {
                let outcome = expect_done(self.cluster.call(
                    self.root,
                    Req::Insert {
                        node: LocalNodeId(0),
                        point,
                        payload,
                    },
                )?)?;
                self.inserted.fetch_add(1, Ordering::Relaxed);
                Ok(outcome)
            }
            Query::Knn { point, k } => {
                if let Some((hits, retries)) = self.direct_read(|h| h.knn(&point, k, None)) {
                    self.shared.record_read_retries(retries);
                    return Ok(QueryOutcome::Neighbors(to_neighbors(hits)));
                }
                let candidates = expect_candidates(self.cluster.call(
                    self.root,
                    Req::Knn {
                        node: LocalNodeId(0),
                        point,
                        k,
                        worst: None,
                    },
                )?)?;
                Ok(QueryOutcome::Neighbors(to_neighbors(candidates)))
            }
            Query::KnnBatch { points, k } => expect_batches(self.cluster.call(
                self.root,
                Req::KnnBatch {
                    node: LocalNodeId(0),
                    points,
                    k,
                },
            )?),
            Query::Range { point, radius } => {
                let candidates =
                    if let Some((hits, retries)) = self.direct_read(|h| h.range(&point, radius)) {
                        self.shared.record_read_retries(retries);
                        hits
                    } else {
                        expect_candidates(self.cluster.call(
                            self.root,
                            Req::Range {
                                node: LocalNodeId(0),
                                point,
                                radius,
                            },
                        )?)?
                    };
                Ok(sorted_range_outcome(candidates))
            }
        }
    }

    /// Pipelined form of [`query`](DistSemTree::query): dispatch the
    /// operation and return immediately; `complete` runs exactly once
    /// with the identical outcome the blocking path would have produced,
    /// on whatever thread finishes the work — the root actor's thread
    /// in-process, a network demux reader under `semtree-net`, or this
    /// thread when the lock-free read fast path answers inline. This is
    /// what lets one serving executor keep hundreds of worker round
    /// trips in flight.
    pub fn submit_query(&self, query: Query, complete: CompleteFn<QueryOutcome>) {
        match query {
            Query::Insert { point, payload } => {
                let inserted = Arc::clone(&self.inserted);
                self.cluster.submit(
                    self.root,
                    Req::Insert {
                        node: LocalNodeId(0),
                        point,
                        payload,
                    },
                    Box::new(move |resp| {
                        let outcome = resp.and_then(expect_done);
                        if outcome.is_ok() {
                            inserted.fetch_add(1, Ordering::Relaxed);
                        }
                        complete(outcome);
                    }),
                );
            }
            Query::Knn { point, k } => {
                if let Some((hits, retries)) = self.direct_read(|h| h.knn(&point, k, None)) {
                    self.shared.record_read_retries(retries);
                    complete(Ok(QueryOutcome::Neighbors(to_neighbors(hits))));
                    return;
                }
                self.cluster.submit(
                    self.root,
                    Req::Knn {
                        node: LocalNodeId(0),
                        point,
                        k,
                        worst: None,
                    },
                    Box::new(move |resp| {
                        complete(
                            resp.and_then(expect_candidates)
                                .map(|c| QueryOutcome::Neighbors(to_neighbors(c))),
                        );
                    }),
                );
            }
            Query::KnnBatch { points, k } => {
                self.cluster.submit(
                    self.root,
                    Req::KnnBatch {
                        node: LocalNodeId(0),
                        points,
                        k,
                    },
                    Box::new(move |resp| complete(resp.and_then(expect_batches))),
                );
            }
            Query::Range { point, radius } => {
                if let Some((hits, retries)) = self.direct_read(|h| h.range(&point, radius)) {
                    self.shared.record_read_retries(retries);
                    complete(Ok(sorted_range_outcome(hits)));
                    return;
                }
                self.cluster.submit(
                    self.root,
                    Req::Range {
                        node: LocalNodeId(0),
                        point,
                        radius,
                    },
                    Box::new(move |resp| {
                        complete(resp.and_then(expect_candidates).map(sorted_range_outcome));
                    }),
                );
            }
        }
    }

    /// Try the lock-free read fast path: only when the root partition
    /// has registered a [`ReadHandle`] and it is still fully local.
    fn direct_read<T>(&self, read: impl FnOnce(&ReadHandle) -> Option<T>) -> Option<T> {
        let handle = self.shared.read_handle(self.root)?;
        read(&handle)
    }

    /// Insert a point via the distributed insertion algorithm, starting
    /// "from the root node of the root partition".
    ///
    /// # Errors
    /// Fails when the target partition is unreachable (dead node, network
    /// fault) or reports a failure of its own.
    #[deprecated(note = "use DistSemTree::query with Query::Insert")]
    pub fn try_insert(&self, point: &[f64], payload: u64) -> Result<(), ClusterError> {
        self.query(Query::insert(point, payload))?.inserted()
    }

    /// Infallible insert for healthy clusters.
    ///
    /// # Panics
    /// Panics when the insert fails.
    #[deprecated(note = "use DistSemTree::query with Query::Insert")]
    pub fn insert(&self, point: &[f64], payload: u64) {
        self.query(Query::insert(point, payload))
            .and_then(QueryOutcome::inserted)
            .expect("distributed insert failed");
    }

    /// Distributed k-nearest query; hits come back closest first.
    ///
    /// # Errors
    /// Fails when any partition the search must visit is unreachable.
    #[deprecated(note = "use DistSemTree::query with Query::Knn")]
    pub fn try_knn(&self, point: &[f64], k: usize) -> Result<Vec<Neighbor<u64>>, ClusterError> {
        self.query(Query::knn(point, k))?.neighbors()
    }

    /// Infallible k-nearest query for healthy clusters.
    ///
    /// # Panics
    /// Panics when the query fails.
    #[deprecated(note = "use DistSemTree::query with Query::Knn")]
    #[must_use]
    pub fn knn(&self, point: &[f64], k: usize) -> Vec<Neighbor<u64>> {
        self.query(Query::knn(point, k))
            .and_then(QueryOutcome::neighbors)
            .expect("distributed knn failed")
    }

    /// Batched distributed k-nearest query: every query in `points` is
    /// answered in one round trip to the root partition, which fans
    /// fully-local batches out over its worker pool. Answers come back
    /// in query order, each closest first — identical to issuing
    /// [`Query::Knn`] per query.
    ///
    /// # Errors
    /// Fails when any partition a search must visit is unreachable.
    #[deprecated(note = "use DistSemTree::query with Query::KnnBatch")]
    pub fn try_knn_batch(
        &self,
        points: &[Vec<f64>],
        k: usize,
    ) -> Result<Vec<Vec<Neighbor<u64>>>, ClusterError> {
        self.query(Query::knn_batch(points, k))?.neighbor_batches()
    }

    /// Distributed range query (inclusive radius); hits closest first.
    ///
    /// # Errors
    /// Fails when any partition the search must visit is unreachable.
    #[deprecated(note = "use DistSemTree::query with Query::Range")]
    pub fn try_range(
        &self,
        point: &[f64],
        radius: f64,
    ) -> Result<Vec<Neighbor<u64>>, ClusterError> {
        self.query(Query::range(point, radius))?.neighbors()
    }

    /// Infallible range query for healthy clusters.
    ///
    /// # Panics
    /// Panics when the query fails.
    #[deprecated(note = "use DistSemTree::query with Query::Range")]
    #[must_use]
    pub fn range(&self, point: &[f64], radius: f64) -> Vec<Neighbor<u64>> {
        self.query(Query::range(point, radius))
            .and_then(QueryOutcome::neighbors)
            .expect("distributed range failed")
    }

    /// Number of points inserted through this facade.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inserted.load(Ordering::Relaxed) as usize
    }

    /// Whether no points were inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live partition count.
    #[must_use]
    pub fn partition_count(&self) -> usize {
        self.shared.partition_count()
    }

    /// The point dimensionality this tree was configured with.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.shared.dims
    }

    /// Interconnect metrics (messages, bytes, spawns, simulated delay).
    #[must_use]
    pub fn metrics(&self) -> semtree_cluster::MetricsSnapshot {
        self.cluster.metrics()
    }

    /// The live metrics sink, shared with serving fabrics so request
    /// latency lands in the same snapshot as interconnect counters.
    #[must_use]
    pub fn metrics_handle(&self) -> Arc<semtree_cluster::ClusterMetrics> {
        self.cluster.metrics_handle()
    }

    /// Reset interconnect metrics between experiment phases.
    pub fn reset_metrics(&self) {
        self.cluster.reset_metrics();
    }

    /// Walk the partition tree and gather per-partition statistics.
    ///
    /// # Errors
    /// Fails when any partition in the walk is unreachable.
    pub fn try_global_stats(&self) -> Result<GlobalStats, ClusterError> {
        let mut out = GlobalStats::default();
        let mut queue = std::collections::VecDeque::from([self.root]);
        let mut seen = std::collections::HashSet::new();
        while let Some(pid) = queue.pop_front() {
            if !seen.insert(pid) {
                continue;
            }
            match self.cluster.call(pid, Req::Stats)? {
                Resp::Stats(stats) => {
                    queue.extend(stats.remote_children_ids());
                    out.partitions.push((pid.0, stats));
                }
                Resp::Error(msg) => return Err(ClusterError::Remote(msg)),
                other => {
                    return Err(ClusterError::Remote(format!(
                        "expected stats, got {other:?}"
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Infallible [`try_global_stats`](DistSemTree::try_global_stats).
    ///
    /// # Panics
    /// Panics when any partition is unreachable.
    #[must_use]
    pub fn global_stats(&self) -> GlobalStats {
        self.try_global_stats().expect("partition walk failed")
    }

    /// Check every partition's structural invariants plus cross-partition
    /// point conservation; returns human-readable violations
    /// (empty = healthy). Intended for tests and post-migration audits.
    #[must_use]
    pub fn verify(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let stats = match self.try_global_stats() {
            Ok(stats) => stats,
            Err(e) => return vec![format!("partition walk failed: {e}")],
        };
        for &(pid, _) in &stats.partitions {
            match self.cluster.call(ComputeNodeId(pid), Req::Verify) {
                Ok(Resp::Violations(v)) => {
                    violations.extend(v.into_iter().map(|m| format!("partition {pid}: {m}")))
                }
                Ok(other) => {
                    violations.push(format!("partition {pid}: bad verify reply {other:?}"))
                }
                Err(e) => violations.push(format!("partition {pid}: unreachable: {e}")),
            }
        }
        let total = stats.total_points();
        if total != self.len() {
            violations.push(format!(
                "{} points inserted but {total} reachable across partitions",
                self.len()
            ));
        }
        violations
    }

    /// Export every stored point, in partition BFS order.
    ///
    /// # Errors
    /// Fails when any partition is unreachable.
    pub fn try_export_points(&self) -> Result<Vec<(Vec<f64>, u64)>, ClusterError> {
        let stats = self.try_global_stats()?;
        let mut out = Vec::with_capacity(self.len());
        for &(pid, _) in &stats.partitions {
            match self.cluster.call(ComputeNodeId(pid), Req::Export)? {
                Resp::Points(pts) => out.extend(pts),
                Resp::Error(msg) => return Err(ClusterError::Remote(msg)),
                other => {
                    return Err(ClusterError::Remote(format!(
                        "expected points, got {other:?}"
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Infallible [`try_export_points`](DistSemTree::try_export_points).
    ///
    /// # Panics
    /// Panics when any partition is unreachable.
    #[must_use]
    pub fn export_points(&self) -> Vec<(Vec<f64>, u64)> {
        self.try_export_points().expect("export failed")
    }

    /// Rebuild this tree balanced across exactly `partitions` partitions —
    /// the distributed analogue of `KdTree::rebalance`, answering the
    /// paper's observation that "once built, modifying or rebalancing a
    /// Kd-tree is a non-trivial task". All points are exported, the old
    /// cluster is shut down, and a fresh fan-out tree is loaded from them.
    /// The explicit layout supersedes any dynamic capacity policy the old
    /// tree had (the policy is reset to [`CapacityPolicy::Unlimited`]).
    #[must_use]
    pub fn repartitioned(self, partitions: usize) -> DistSemTree {
        let points = self.export_points();
        let config = DistConfig {
            dims: self.shared.dims,
            bucket_size: self.shared.bucket_size,
            capacity: CapacityPolicy::Unlimited,
            max_partitions: self.shared.max_partitions.max(partitions),
            split_rule: SplitRule::Cycle,
        };
        let cost = self.cost;
        self.shutdown();
        let tree = if partitions <= 1 || points.is_empty() {
            DistSemTree::single(config, cost)
        } else {
            let sample: Vec<Vec<f64>> = points.iter().take(4096).map(|(c, _)| c.clone()).collect();
            DistSemTree::with_fanout(config, cost, partitions, &sample)
        };
        for (coords, payload) in points {
            tree.query(Query::insert(&coords, payload))
                .and_then(QueryOutcome::inserted)
                .expect("re-insert during repartition failed");
        }
        tree
    }

    /// Stop every partition's compute node.
    pub fn shutdown(self) {
        self.cluster.shutdown();
    }
}

/// Write a just-spawned local partition's initial image to the WAL, now
/// that the spawn has assigned its partition id.
fn snapshot_initial(
    shared: &Arc<SharedConfig>,
    partition: ComputeNodeId,
    image: Option<crate::store::StoreImage>,
) -> Result<(), ClusterError> {
    if let (Some(wal), Some(image)) = (shared.wal.as_ref(), image) {
        wal.snapshot_image(partition, &image)
            .map_err(|e| ClusterError::Remote(format!("wal snapshot failed: {e}")))?;
    }
    Ok(())
}

/// Install the factory the transport uses for member spawns: every new
/// member is a fresh partition actor sharing this process's config.
pub(crate) fn install_member_factory(
    cluster: &Cluster<PartitionActor>,
    shared: &Arc<SharedConfig>,
) {
    let shared = Arc::clone(shared);
    cluster.set_node_factory(Box::new(move || {
        Box::new(PartitionActor::fresh(Arc::clone(&shared)))
    }));
}

/// Recursive fan-out construction: a routing tree over `target_leaves`
/// regions; each region leaf becomes a freshly spawned data partition,
/// placed by the transport (a remote process under `semtree-net`).
fn build_fanout(
    cluster: &Cluster<PartitionActor>,
    shared: &Arc<SharedConfig>,
    store: &mut PartitionStore,
    sample: &mut [&[f64]],
    target_leaves: usize,
    depth: u32,
    dims: usize,
) -> Result<Child, ClusterError> {
    if target_leaves <= 1 {
        assert!(shared.try_reserve_partition(), "partition budget exhausted");
        let pid = match cluster.spawn_member() {
            Ok(pid) => pid,
            Err(e) => {
                shared.release_partition();
                return Err(e);
            }
        };
        match cluster.call(
            pid,
            Req::AdoptLeaf {
                bucket: Vec::new(),
                depth,
            },
        )? {
            Resp::Done => {}
            Resp::Error(msg) => return Err(ClusterError::Remote(msg)),
            other => {
                return Err(ClusterError::Remote(format!(
                    "unexpected AdoptLeaf reply {other:?}"
                )))
            }
        }
        return Ok(Child::Remote {
            partition: pid,
            node: LocalNodeId(0),
        });
    }
    let dim = depth as usize % dims;
    sample.sort_by(|a, b| a[dim].partial_cmp(&b[dim]).expect("finite coordinates"));
    let split_val = sample[sample.len() / 2][dim];
    // Left region gets the larger half of the leaf budget.
    let left_target = target_leaves.div_ceil(2);
    let right_target = target_leaves - left_target;
    // Split the sample at the value boundary so both sides stay non-empty
    // where possible.
    let boundary = sample.partition_point(|p| p[dim] <= split_val);
    let boundary = boundary.clamp(1, sample.len().saturating_sub(1).max(1));
    let node = store.push_node(
        PNodeKind::Routing {
            split_dim: dim,
            split_val,
            left: Child::Local(LocalNodeId(u32::MAX)), // patched below
            right: Child::Local(LocalNodeId(u32::MAX)),
        },
        depth,
    );
    let (left_sample, right_sample) = sample.split_at_mut(boundary);
    let left = build_fanout(
        cluster,
        shared,
        store,
        left_sample,
        left_target,
        depth + 1,
        dims,
    )?;
    let right = build_fanout(
        cluster,
        shared,
        store,
        right_sample,
        right_target,
        depth + 1,
        dims,
    )?;
    if let Child::Local(id) = left {
        store.set_parent(id, node, true);
    }
    if let Child::Local(id) = right {
        store.set_parent(id, node, false);
    }
    store.patch_routing_children(node, left, right);
    Ok(Child::Local(node))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<(Vec<f64>, u64)> {
        (0..n)
            .map(|i| (vec![(i % 17) as f64, (i / 17) as f64], i as u64))
            .collect()
    }

    fn brute_knn(points: &[(Vec<f64>, u64)], q: &[f64], k: usize) -> Vec<(f64, u64)> {
        let mut all: Vec<(f64, u64)> = points
            .iter()
            .map(|(c, p)| {
                let d = c
                    .iter()
                    .zip(q)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt();
                (d, *p)
            })
            .collect();
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        all.truncate(k);
        all
    }

    fn ins(tree: &DistSemTree, point: &[f64], payload: u64) {
        tree.query(Query::insert(point, payload))
            .and_then(QueryOutcome::inserted)
            .expect("insert failed");
    }

    fn knn_q(tree: &DistSemTree, point: &[f64], k: usize) -> Vec<Neighbor<u64>> {
        tree.query(Query::knn(point, k))
            .and_then(QueryOutcome::neighbors)
            .expect("knn failed")
    }

    fn range_q(tree: &DistSemTree, point: &[f64], radius: f64) -> Vec<Neighbor<u64>> {
        tree.query(Query::range(point, radius))
            .and_then(QueryOutcome::neighbors)
            .expect("range failed")
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_still_answer_correctly() {
        // The pre-`Query` entry points remain as thin wrappers; this is the
        // one test that exercises them directly.
        let tree = DistSemTree::single(DistConfig::new(1).with_bucket_size(4), CostModel::zero());
        for i in 0..20u64 {
            tree.insert(&[i as f64], i);
        }
        tree.try_insert(&[20.0], 20).expect("try_insert");
        assert_eq!(tree.knn(&[3.2], 2).len(), 2);
        assert_eq!(tree.try_knn(&[3.2], 2).expect("try_knn").len(), 2);
        assert_eq!(tree.range(&[5.0], 1.0).len(), 3);
        assert_eq!(tree.try_range(&[5.0], 1.0).expect("try_range").len(), 3);
        let batches = tree
            .try_knn_batch(&[vec![1.1], vec![9.9]], 3)
            .expect("try_knn_batch");
        assert_eq!(batches.len(), 2);
        tree.shutdown();
    }

    #[test]
    fn single_partition_knn_and_range_match_brute_force() {
        let points = grid(300);
        let tree = DistSemTree::single(DistConfig::new(2).with_bucket_size(8), CostModel::zero());
        for (c, p) in &points {
            ins(&tree, c, *p);
        }
        assert_eq!(tree.len(), 300);
        assert_eq!(tree.partition_count(), 1);

        let q = [4.3, 7.8];
        let got = knn_q(&tree, &q, 5);
        let want = brute_knn(&points, &q, 5);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist - w.0).abs() < 1e-9);
        }

        let got = range_q(&tree, &q, 3.0);
        let want = points
            .iter()
            .filter(|(c, _)| {
                c.iter()
                    .zip(&q)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt()
                    <= 3.0
            })
            .count();
        assert_eq!(got.len(), want);
        tree.shutdown();
    }

    #[test]
    fn fanout_trees_match_brute_force_for_all_paper_partition_counts() {
        let points = grid(400);
        let sample: Vec<Vec<f64>> = points.iter().map(|(c, _)| c.clone()).take(100).collect();
        for m in [1usize, 3, 5, 9] {
            let tree = DistSemTree::with_fanout(
                DistConfig::new(2)
                    .with_bucket_size(8)
                    .with_max_partitions(16),
                CostModel::zero(),
                m,
                &sample,
            );
            for (c, p) in &points {
                ins(&tree, c, *p);
            }
            assert_eq!(tree.partition_count(), m, "partition count for M={m}");

            let q = [8.0, 11.0];
            let got = knn_q(&tree, &q, 7);
            let want = brute_knn(&points, &q, 7);
            assert_eq!(got.len(), 7, "M={m}");
            for (g, w) in got.iter().zip(&want) {
                assert!((g.dist - w.0).abs() < 1e-9, "M={m}: {} vs {}", g.dist, w.0);
            }

            let got_range = range_q(&tree, &q, 4.0);
            let want_range = points
                .iter()
                .filter(|(c, _)| {
                    c.iter()
                        .zip(&q)
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum::<f64>()
                        .sqrt()
                        <= 4.0
                })
                .count();
            assert_eq!(got_range.len(), want_range, "M={m}");
            tree.shutdown();
        }
    }

    #[test]
    fn knn_batch_matches_per_query_knn_on_single_and_partitioned_trees() {
        let points = grid(400);
        let queries: Vec<Vec<f64>> = (0..25)
            .map(|i| vec![f64::from(i), f64::from(i % 9)])
            .collect();
        let sample: Vec<Vec<f64>> = points.iter().map(|(c, _)| c.clone()).take(100).collect();
        for m in [1usize, 5] {
            let tree = DistSemTree::with_fanout(
                DistConfig::new(2)
                    .with_bucket_size(8)
                    .with_max_partitions(16),
                CostModel::zero(),
                m,
                &sample,
            );
            for (c, p) in &points {
                ins(&tree, c, *p);
            }
            let batches = tree
                .query(Query::knn_batch(&queries, 6))
                .and_then(QueryOutcome::neighbor_batches)
                .expect("batch succeeds");
            assert_eq!(batches.len(), queries.len());
            for (q, batch) in queries.iter().zip(&batches) {
                let single = knn_q(&tree, q, 6);
                assert_eq!(batch.len(), single.len(), "M={m}");
                for (b, s) in batch.iter().zip(&single) {
                    assert_eq!(b.dist.to_bits(), s.dist.to_bits(), "M={m}");
                    assert_eq!(b.payload, s.payload, "M={m}");
                }
            }
            // Empty batch round-trips cleanly.
            assert!(tree
                .query(Query::knn_batch(&[], 3))
                .and_then(QueryOutcome::neighbor_batches)
                .expect("empty batch")
                .is_empty());
            tree.shutdown();
        }
    }

    #[test]
    fn fanout_root_is_routing_only_and_counts_match_formula() {
        let sample: Vec<Vec<f64>> = (0..64).map(|i| vec![f64::from(i), 0.0]).collect();
        for m in [3usize, 5, 9] {
            let tree = DistSemTree::with_fanout(
                DistConfig::new(2)
                    .with_bucket_size(8)
                    .with_max_partitions(16),
                CostModel::zero(),
                m,
                &sample,
            );
            for i in 0..200u64 {
                ins(&tree, &[(i % 64) as f64, (i / 64) as f64], i);
            }
            let stats = tree.global_stats();
            assert_eq!(stats.partition_count(), m);
            // Root partition stores nothing: pure routing.
            assert_eq!(stats.partitions[0].1.points, 0, "M={m}");
            assert!(stats.routing_only() >= 1);
            // A binary routing tree over M−1 remote leaves has M−2 routing
            // nodes hosted in the root partition.
            assert_eq!(stats.root_routing_nodes(), m - 2, "M={m}");
            assert_eq!(stats.total_points(), 200);
            tree.shutdown();
        }
    }

    #[test]
    fn messages_grow_with_partition_count() {
        let sample: Vec<Vec<f64>> = (0..64).map(|i| vec![f64::from(i)]).collect();
        let mut message_counts = Vec::new();
        for m in [1usize, 3, 5] {
            let tree = DistSemTree::with_fanout(
                DistConfig::new(1)
                    .with_bucket_size(8)
                    .with_max_partitions(16),
                CostModel::zero(),
                m,
                &sample,
            );
            tree.reset_metrics();
            for i in 0..100u64 {
                ins(&tree, &[(i % 64) as f64], i);
            }
            message_counts.push(tree.metrics().messages);
            tree.shutdown();
        }
        assert!(
            message_counts[1] > message_counts[0],
            "3 partitions must exchange more messages than 1: {message_counts:?}"
        );
    }

    #[test]
    fn capacity_policy_triggers_build_partition() {
        let tree = DistSemTree::single(
            DistConfig::new(1)
                .with_bucket_size(16)
                .with_capacity(CapacityPolicy::MaxPoints(40))
                .with_max_partitions(64),
            CostModel::zero(),
        );
        let points: Vec<(Vec<f64>, u64)> = (0..300u32)
            .map(|i| (vec![f64::from(i)], u64::from(i)))
            .collect();
        for (c, p) in &points {
            ins(&tree, c, *p);
        }
        assert!(
            tree.partition_count() > 1,
            "over-capacity partition must have spawned others"
        );
        let stats = tree.global_stats();
        assert_eq!(stats.total_points(), 300);
        for (_, p) in &stats.partitions {
            assert!(p.points <= 40, "partition holds {} > capacity", p.points);
        }
        // Searches stay exact after build-partition.
        let q = [150.2];
        let got = knn_q(&tree, &q, 5);
        let want = brute_knn(&points, &q, 5);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist - w.0).abs() < 1e-9);
        }
        tree.shutdown();
    }

    #[test]
    fn dynamic_capacity_policy_works() {
        let tree = DistSemTree::single(
            DistConfig::new(1)
                .with_bucket_size(4)
                .with_capacity(CapacityPolicy::Dynamic(Arc::new(|points| points > 25)))
                .with_max_partitions(16),
            CostModel::zero(),
        );
        for i in 0..100u64 {
            ins(&tree, &[i as f64], i);
        }
        assert!(tree.partition_count() > 1);
        assert_eq!(tree.global_stats().total_points(), 100);
        tree.shutdown();
    }

    #[test]
    fn max_partitions_bounds_build_partition() {
        let tree = DistSemTree::single(
            DistConfig::new(1)
                .with_bucket_size(4)
                .with_capacity(CapacityPolicy::MaxPoints(10))
                .with_max_partitions(3),
            CostModel::zero(),
        );
        for i in 0..200u64 {
            ins(&tree, &[i as f64], i);
        }
        assert_eq!(tree.partition_count(), 3, "cap respected");
        assert_eq!(tree.global_stats().total_points(), 200);
        tree.shutdown();
    }

    #[test]
    fn empty_tree_queries() {
        let tree = DistSemTree::single(DistConfig::new(2), CostModel::zero());
        assert!(tree.is_empty());
        assert!(knn_q(&tree, &[0.0, 0.0], 3).is_empty());
        assert!(range_q(&tree, &[0.0, 0.0], 10.0).is_empty());
        tree.shutdown();
    }

    #[test]
    fn knn_k_larger_than_population() {
        let tree = DistSemTree::single(DistConfig::new(1).with_bucket_size(2), CostModel::zero());
        for i in 0..5u64 {
            ins(&tree, &[i as f64], i);
        }
        assert_eq!(knn_q(&tree, &[2.0], 50).len(), 5);
        tree.shutdown();
    }

    #[test]
    #[should_panic(expected = "non-empty sample")]
    fn fanout_without_sample_panics() {
        let _ = DistSemTree::with_fanout(DistConfig::new(1), CostModel::zero(), 3, &[]);
    }

    #[test]
    fn concurrent_clients_share_the_tree() {
        // The facade is Sync: many client threads can insert and query the
        // same distributed tree concurrently ("using M−1 data partitions,
        // we can perform … parallel operations maximizing our throughput").
        let sample: Vec<Vec<f64>> = (0..128).map(|i| vec![f64::from(i)]).collect();
        let tree = Arc::new(DistSemTree::with_fanout(
            DistConfig::new(1)
                .with_bucket_size(8)
                .with_max_partitions(16),
            CostModel::zero(),
            5,
            &sample,
        ));
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let tree = Arc::clone(&tree);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        let v = (t * 100 + i) % 128;
                        ins(&tree, &[v as f64], t * 1000 + i);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(tree.len(), 400);
        assert_eq!(tree.global_stats().total_points(), 400);

        // Concurrent queries agree with a sequential pass.
        let expected = knn_q(&tree, &[64.2], 5);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let tree = Arc::clone(&tree);
                std::thread::spawn(move || knn_q(&tree, &[64.2], 5))
            })
            .collect();
        for th in threads {
            let got = th.join().unwrap();
            for (g, e) in got.iter().zip(&expected) {
                assert!((g.dist - e.dist).abs() < 1e-12);
            }
        }
        Arc::try_unwrap(tree).ok().expect("sole owner").shutdown();
    }

    #[test]
    fn verify_reports_healthy_trees_clean() {
        let sample: Vec<Vec<f64>> = (0..64).map(|i| vec![f64::from(i)]).collect();
        for m in [1usize, 3, 5] {
            let tree = DistSemTree::with_fanout(
                DistConfig::new(1)
                    .with_bucket_size(8)
                    .with_max_partitions(16),
                CostModel::zero(),
                m,
                &sample,
            );
            for i in 0..150u64 {
                ins(&tree, &[(i % 64) as f64], i);
            }
            assert_eq!(tree.verify(), Vec::<String>::new(), "M={m}");
            tree.shutdown();
        }
    }

    #[test]
    fn verify_stays_clean_after_build_partition() {
        let tree = DistSemTree::single(
            DistConfig::new(1)
                .with_bucket_size(8)
                .with_capacity(CapacityPolicy::MaxPoints(25))
                .with_max_partitions(32),
            CostModel::zero(),
        );
        for i in 0..200u64 {
            ins(&tree, &[i as f64], i);
        }
        assert!(tree.partition_count() > 1);
        assert_eq!(tree.verify(), Vec::<String>::new());
        tree.shutdown();
    }

    #[test]
    fn export_returns_every_point() {
        let sample: Vec<Vec<f64>> = (0..32).map(|i| vec![f64::from(i)]).collect();
        let tree = DistSemTree::with_fanout(
            DistConfig::new(1)
                .with_bucket_size(4)
                .with_max_partitions(8),
            CostModel::zero(),
            3,
            &sample,
        );
        for i in 0..80u64 {
            ins(&tree, &[(i % 32) as f64], i);
        }
        let mut exported = tree.export_points();
        assert_eq!(exported.len(), 80);
        exported.sort_by_key(|&(_, p)| p);
        let payloads: Vec<u64> = exported.iter().map(|&(_, p)| p).collect();
        assert_eq!(payloads, (0..80u64).collect::<Vec<_>>());
        tree.shutdown();
    }

    #[test]
    fn repartition_preserves_points_and_exactness() {
        // Grow a lopsided dynamic tree, then rebalance it onto 5
        // partitions; queries and counts must be preserved.
        let tree = DistSemTree::single(
            DistConfig::new(1)
                .with_bucket_size(4)
                .with_capacity(CapacityPolicy::MaxPoints(20))
                .with_max_partitions(16),
            CostModel::zero(),
        );
        let points: Vec<(Vec<f64>, u64)> = (0..200u32)
            .map(|i| (vec![f64::from(i)], u64::from(i)))
            .collect();
        for (c, p) in &points {
            ins(&tree, c, *p);
        }
        let before = knn_q(&tree, &[77.3], 5);

        let tree = tree.repartitioned(5);
        assert_eq!(tree.partition_count(), 5);
        assert_eq!(tree.len(), 200);
        assert_eq!(tree.global_stats().total_points(), 200);
        assert_eq!(tree.verify(), Vec::<String>::new());

        let after = knn_q(&tree, &[77.3], 5);
        for (a, b) in before.iter().zip(&after) {
            assert!((a.dist - b.dist).abs() < 1e-12);
        }
        tree.shutdown();
    }

    #[test]
    fn capacity_policy_debug_formats() {
        assert_eq!(format!("{:?}", CapacityPolicy::Unlimited), "Unlimited");
        assert_eq!(
            format!("{:?}", CapacityPolicy::MaxPoints(5)),
            "MaxPoints(5)"
        );
        let d = CapacityPolicy::Dynamic(Arc::new(|_| false));
        assert_eq!(format!("{d:?}"), "Dynamic(..)");
    }
}
