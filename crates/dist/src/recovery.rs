//! Crash recovery: the WAL handle partition actors log through, the
//! replay that turns a [`WalState`] back into live partition stores,
//! and the offline inspection behind `semtree recover`.
//!
//! Replay is **log-driven**: splits are applied from their own records
//! rather than re-derived from inserts, so the recovered arena assigns
//! exactly the node ids the live store had — which is what keeps
//! cross-partition `Remote` links (and therefore the coordinator's
//! routing tree) valid across a worker restart.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use semtree_cluster::ComputeNodeId;
use semtree_net::decode_exact;
use semtree_wal::{
    SequencedLog, Snapshot, Wal, WalError, WalRecord, WalReport, WalState,
    SNAPSHOT_FORMAT_COLUMNAR, SNAPSHOT_FORMAT_VERBATIM,
};

use crate::deploy::NetDeployConfig;
use crate::proto::PartitionStats;
use crate::store::{LocalNodeId, PartitionStore, SplitEvent, StoreImage};

/// Shared write side of the WAL: every partition actor of a process logs
/// through one of these. Appends are serialized by the wrapping
/// [`SequencedLog`], which flushes each record before the paired state
/// mutation is allowed to run (`apply_*` below) — so a `SIGKILL` can
/// lose at most the record being written (which recovery tolerates as a
/// torn tail), and can never lose a record whose mutation was applied.
pub(crate) struct WalHandle {
    log: SequencedLog<Wal>,
}

impl WalHandle {
    pub(crate) fn new(wal: Wal) -> Arc<Self> {
        Arc::new(WalHandle {
            log: SequencedLog::new(wal),
        })
    }

    /// Log a point landing in (or being routed through) `partition`,
    /// then — only after the record is flushed — run `apply` (the store
    /// mutation). Returns whether the partition is due for a snapshot,
    /// plus `apply`'s result.
    pub(crate) fn apply_insert<T>(
        &self,
        partition: ComputeNodeId,
        node: LocalNodeId,
        point: &[f64],
        payload: u64,
        apply: impl FnOnce() -> T,
    ) -> Result<(bool, T), WalError> {
        let (appended, out) = self.log.apply_after_flush(
            &WalRecord::PointInsert {
                partition: partition.0,
                node: node.0,
                point: point.to_vec(),
                payload,
            },
            |_| apply(),
        )?;
        Ok((appended.snapshot_due, out))
    }

    /// Log the splits an insert or adoption triggered, in order. (The
    /// splits are *produced by* an already-applied mutation, so there is
    /// no apply half here; replay derives the arena ids from these.)
    pub(crate) fn log_splits(
        &self,
        partition: ComputeNodeId,
        splits: &[SplitEvent],
    ) -> Result<bool, WalError> {
        let mut due = false;
        for s in splits {
            let appended = self.log.append(&WalRecord::LeafSplit {
                partition: partition.0,
                leaf: s.leaf.0,
                split_dim: s.split_dim,
                split_val: s.split_val,
                left: s.left.0,
                right: s.right.0,
            })?;
            due |= appended.snapshot_due;
        }
        Ok(due)
    }

    /// Log a partition coming into existence with an adopted bucket,
    /// then — only after the record is flushed — run `apply` (building
    /// the store).
    pub(crate) fn apply_create<T>(
        &self,
        partition: ComputeNodeId,
        depth: u32,
        bucket: &[(Vec<f64>, u64)],
        apply: impl FnOnce() -> T,
    ) -> Result<(bool, T), WalError> {
        let (appended, out) = self.log.apply_after_flush(
            &WalRecord::PartitionCreate {
                partition: partition.0,
                depth: depth as usize,
                bucket: bucket.to_vec(),
            },
            |_| apply(),
        )?;
        Ok((appended.snapshot_due, out))
    }

    /// Log a leaf being evicted to a freshly built partition, then —
    /// only after the record is flushed — run `apply` (the relink).
    pub(crate) fn apply_migration<T>(
        &self,
        partition: ComputeNodeId,
        evicted: LocalNodeId,
        target_partition: ComputeNodeId,
        target_node: LocalNodeId,
        apply: impl FnOnce() -> T,
    ) -> Result<(bool, T), WalError> {
        let (appended, out) = self.log.apply_after_flush(
            &WalRecord::LeafMigration {
                partition: partition.0,
                evicted: evicted.0,
                target_partition: target_partition.0,
                target_node: target_node.0,
            },
            |_| apply(),
        )?;
        Ok((appended.snapshot_due, out))
    }

    /// Snapshot one partition's full store image, superseding its log
    /// records and compacting fully covered segments. The blob format
    /// follows the WAL's columnar setting: columnar-enabled logs store
    /// the image through the `semtree-colz` column codec, legacy logs
    /// keep the verbatim row encoding.
    pub(crate) fn snapshot_image(
        &self,
        partition: ComputeNodeId,
        image: &StoreImage,
    ) -> Result<(), WalError> {
        use semtree_net::Encode as _;
        self.log.with_sink(|wal| {
            let (format, blob) = if wal.columnar_enabled() {
                (
                    SNAPSHOT_FORMAT_COLUMNAR,
                    crate::colimage::encode_image(image),
                )
            } else {
                (SNAPSHOT_FORMAT_VERBATIM, image.to_bytes())
            };
            wal.snapshot(partition.0, format, &blob)
        })?;
        Ok(())
    }

    /// Delete sealed segments fully covered by snapshots.
    pub(crate) fn compact(&self) -> Result<usize, WalError> {
        self.log.with_sink(|wal| wal.compact())
    }
}

impl std::fmt::Debug for WalHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalHandle")
            .field("dir", &self.log.with_sink(|wal| wal.dir().to_path_buf()))
            .finish()
    }
}

/// Reconstruct every partition store recorded in `state`: seed each
/// partition from its snapshot image (or its `partition-create` record),
/// then re-apply the live tail in LSN order.
pub(crate) fn replay_stores(state: &WalState) -> Result<Vec<(u32, PartitionStore)>, String> {
    let config: NetDeployConfig =
        decode_exact(&state.config).map_err(|e| format!("wal config blob: {e}"))?;

    let mut stores: BTreeMap<u32, PartitionStore> = BTreeMap::new();
    for (&partition, snap) in &state.snapshots {
        let image = decode_snapshot_image(snap)?;
        stores.insert(partition, PartitionStore::from_image(&image)?);
    }

    for (lsn, record) in state.live_tail() {
        match record {
            WalRecord::PartitionCreate {
                partition,
                depth,
                bucket,
            } => {
                let bucket = bucket
                    .iter()
                    .map(|(c, p)| (c.clone().into_boxed_slice(), *p))
                    .collect();
                stores.insert(
                    *partition,
                    PartitionStore::raw_leaf(
                        config.dims,
                        config.bucket_size,
                        config.split_rule,
                        bucket,
                        *depth as u32,
                    ),
                );
            }
            WalRecord::PointInsert {
                partition,
                node,
                point,
                payload,
            } => {
                // A record for a partition with no create/snapshot is a
                // WAL inconsistency; a forwarded insert (navigation hits
                // a remote link) is a logged-but-not-stored no-op.
                let store = missing(stores.get_mut(partition), *partition, *lsn)?;
                store.replay_insert(LocalNodeId(*node), point, *payload);
            }
            WalRecord::LeafSplit {
                partition,
                leaf,
                split_dim,
                split_val,
                left,
                right,
            } => {
                let store = missing(stores.get_mut(partition), *partition, *lsn)?;
                store
                    .apply_split(&SplitEvent {
                        leaf: LocalNodeId(*leaf),
                        split_dim: *split_dim,
                        split_val: *split_val,
                        left: LocalNodeId(*left),
                        right: LocalNodeId(*right),
                    })
                    .map_err(|e| format!("lsn {lsn}: {e}"))?;
            }
            WalRecord::LeafMigration {
                partition,
                evicted,
                target_partition,
                target_node,
            } => {
                let store = missing(stores.get_mut(partition), *partition, *lsn)?;
                store
                    .apply_migration(
                        LocalNodeId(*evicted),
                        ComputeNodeId(*target_partition),
                        LocalNodeId(*target_node),
                    )
                    .map_err(|e| format!("lsn {lsn}: {e}"))?;
            }
        }
    }
    Ok(stores.into_iter().collect())
}

fn missing(
    store: Option<&mut PartitionStore>,
    partition: u32,
    lsn: u64,
) -> Result<&mut PartitionStore, String> {
    store.ok_or_else(|| format!("lsn {lsn}: record for unknown partition {partition}"))
}

/// Decode a snapshot blob according to its recorded payload format —
/// the single dispatch point between the legacy verbatim image encoding
/// and the columnar one.
pub(crate) fn decode_snapshot_image(snap: &Snapshot) -> Result<StoreImage, String> {
    match snap.format {
        SNAPSHOT_FORMAT_VERBATIM => decode_exact(&snap.blob)
            .map_err(|e| format!("partition {} snapshot: {e}", snap.partition)),
        SNAPSHOT_FORMAT_COLUMNAR => crate::colimage::decode_image(&snap.blob)
            .map_err(|e| format!("partition {} snapshot: {e}", snap.partition)),
        other => Err(format!(
            "partition {} snapshot: unknown payload format {other}",
            snap.partition
        )),
    }
}

/// One partition's snapshot compression footprint: what its blob costs
/// on disk versus what the decoded store image costs in the verbatim row
/// encoding (the size a pre-columnar WAL would have stored).
#[derive(Debug, Clone, Copy)]
pub struct SnapshotCompression {
    /// Compute-node id of the partition.
    pub partition: u32,
    /// Payload format of the stored blob (`SNAPSHOT_FORMAT_*`).
    pub format: u8,
    /// Bytes of the blob as stored in the snapshot file.
    pub stored_bytes: usize,
    /// Bytes of the same image in the verbatim row encoding.
    pub decoded_bytes: usize,
}

impl SnapshotCompression {
    /// Verbatim-to-stored compression ratio (1.0 for verbatim blobs;
    /// 0 stored bytes reports a ratio of 1.0 to stay finite).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            1.0
        } else {
            self.decoded_bytes as f64 / self.stored_bytes as f64
        }
    }
}

/// What `semtree recover` reports: the raw WAL summary plus the
/// statistics of every partition store an online recovery would rebuild.
#[derive(Debug)]
pub struct WalInspection {
    /// Per-file WAL summary (segments, records, torn tail, …).
    pub report: WalReport,
    /// `(partition id, stats)` of each replayed store, ascending id.
    pub partitions: Vec<(u32, PartitionStats)>,
    /// Per-partition snapshot compression, ascending partition id.
    pub compression: Vec<SnapshotCompression>,
}

/// Offline inspect-and-replay of a WAL directory: verifies every
/// checksum, replays the full history, and reports what a restarted
/// worker would recover — without touching the files.
///
/// # Errors
/// Fails on unreadable or corrupt WAL contents, or a history that does
/// not replay cleanly.
pub fn inspect_wal(dir: &Path) -> Result<WalInspection, String> {
    use semtree_net::Encode as _;
    let state = Wal::load(dir).map_err(|e| e.to_string())?;
    let report = WalReport::from_state(dir, &state).map_err(|e| e.to_string())?;
    let mut compression = Vec::with_capacity(state.snapshots.len());
    for (&partition, snap) in &state.snapshots {
        let image = decode_snapshot_image(snap)?;
        compression.push(SnapshotCompression {
            partition,
            format: snap.format,
            stored_bytes: snap.blob.len(),
            decoded_bytes: image.to_bytes().len(),
        });
    }
    let stores = replay_stores(&state)?;
    let partitions = stores
        .into_iter()
        .map(|(partition, store)| (partition, store.stats()))
        .collect();
    Ok(WalInspection {
        report,
        partitions,
        compression,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    use semtree_cluster::{Cluster, CostModel};
    use semtree_net::Encode as _;
    use semtree_wal::WalOptions;

    use crate::store::StoreImage;
    use crate::tree::{CapacityPolicy, DistConfig, DistSemTree, Query, QueryOutcome};

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("semtree-recovery-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Replay the on-disk history exactly as a restarted worker would and
    /// project every rebuilt store to its structural image.
    fn replayed_images(dir: &Path) -> Vec<(u32, StoreImage)> {
        let state = Wal::load(dir).expect("load wal");
        replay_stores(&state)
            .expect("replay")
            .into_iter()
            .map(|(partition, store)| (partition, store.to_image()))
            .collect()
    }

    fn durable_tree(dir: &Path, config: &DistConfig, options: WalOptions) -> DistSemTree {
        let blob = crate::deploy::NetDeployConfig::from_config(config)
            .expect("deployable config")
            .to_bytes();
        let wal = Wal::create(dir, 0, &blob, options).expect("create wal");
        DistSemTree::build_on_with_wal(
            Cluster::new(CostModel::zero()),
            config.clone(),
            CostModel::zero(),
            1,
            &[],
            Some(WalHandle::new(wal)),
        )
        .expect("build durable tree")
    }

    #[test]
    fn replay_after_snapshot_and_compaction_is_structurally_identical() {
        let dir = scratch_dir("compaction");
        let config = DistConfig::new(2)
            .with_bucket_size(4)
            .with_max_partitions(8)
            .with_capacity(CapacityPolicy::MaxPoints(40));
        // Tiny segments and a cadence the workload will cross several
        // times, so sealing, live snapshots and compaction all happen
        // organically mid-run.
        let options = WalOptions::default()
            .with_segment_bytes(4096)
            .with_snapshot_every(64);
        let tree = durable_tree(&dir, &config, options);
        for i in 0..150u64 {
            tree.query(Query::insert(&[(i % 13) as f64, (i / 13) as f64], i))
                .and_then(QueryOutcome::inserted)
                .expect("insert");
        }
        let live_points = tree.len();
        let live_partitions = tree.partition_count();
        tree.shutdown();

        let before = replayed_images(&dir);
        assert_eq!(before.len(), live_partitions);
        assert_eq!(
            before.iter().map(|(_, im)| im.points).sum::<usize>(),
            live_points,
            "replay must account for every live point"
        );
        // The capacity policy forced build-partition, so the replayed
        // root must hold real cross-partition links.
        let remote_links: usize = before
            .iter()
            .flat_map(|(_, im)| &im.nodes)
            .filter(|n| {
                matches!(
                    &n.kind,
                    crate::store::NodeKindImage::Routing {
                        left: crate::store::ChildImage::Remote { .. },
                        ..
                    } | crate::store::NodeKindImage::Routing {
                        right: crate::store::ChildImage::Remote { .. },
                        ..
                    }
                )
            })
            .count();
        assert!(remote_links > 0, "workload must have migrated leaves");

        // Snapshot every partition, compact away the covered segments,
        // and replay again: the rebuilt stores must be *identical* — same
        // arena order, node ids, parents, buckets and remote links — not
        // merely equivalent under queries.
        let segment_files = |dir: &Path| {
            std::fs::read_dir(dir.join("segments"))
                .map(|entries| entries.count())
                .unwrap_or(0)
        };
        let segments_before = segment_files(&dir);
        assert!(segments_before > 1, "workload must span several segments");
        let (wal, _state) = Wal::resume(&dir, WalOptions::default()).expect("resume");
        let handle = WalHandle::new(wal);
        for (partition, image) in &before {
            handle
                .snapshot_image(ComputeNodeId(*partition), image)
                .expect("snapshot");
        }
        handle.compact().expect("compact");
        drop(handle);
        assert!(
            segment_files(&dir) < segments_before,
            "snapshots must have made old segments reclaimable"
        );

        let after = replayed_images(&dir);
        assert_eq!(
            before, after,
            "snapshot + compaction changed the replayed structure"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_v0_wal_recovers_identically_through_the_columnar_reader() {
        let dir_legacy = scratch_dir("v0-legacy");
        let dir_columnar = scratch_dir("v0-columnar");
        let config = DistConfig::new(2)
            .with_bucket_size(4)
            .with_max_partitions(4)
            .with_capacity(CapacityPolicy::MaxPoints(40));
        let legacy = WalOptions::default()
            .with_segment_bytes(4096)
            .with_snapshot_every(64)
            .with_columnar(false);
        let columnar = WalOptions::default().with_columnar(true);
        for (dir, options) in [(&dir_legacy, legacy), (&dir_columnar, columnar)] {
            let tree = durable_tree(dir, &config, options);
            for i in 0..120u64 {
                tree.query(Query::insert(&[(i % 11) as f64, (i / 11) as f64], i))
                    .and_then(QueryOutcome::inserted)
                    .expect("insert");
            }
            tree.shutdown();
        }

        // The legacy directory is true v0 on disk: headerless segments
        // and version-1 verbatim snapshots.
        for entry in std::fs::read_dir(dir_legacy.join("segments")).unwrap() {
            let bytes = std::fs::read(entry.unwrap().path()).unwrap();
            if bytes.len() >= 4 {
                assert_ne!(&bytes[0..4], b"SSEG", "legacy segment grew a header");
            }
        }

        // One reader, two formats, same workload: identical stores —
        // node ids, parents, buckets, remote links, point counters.
        let legacy_images = replayed_images(&dir_legacy);
        let columnar_images = replayed_images(&dir_columnar);
        assert_eq!(
            legacy_images, columnar_images,
            "columnar storage changed the recovered structure"
        );

        // Migration path: resume the v0 directory with columnar options,
        // re-snapshot, compact. Replay must still see the same stores.
        let (wal, _) = Wal::resume(&dir_legacy, columnar).expect("resume v0 dir");
        let handle = WalHandle::new(wal);
        for (partition, image) in &legacy_images {
            handle
                .snapshot_image(ComputeNodeId(*partition), image)
                .expect("snapshot");
        }
        handle.compact().expect("compact");
        drop(handle);
        assert_eq!(
            replayed_images(&dir_legacy),
            legacy_images,
            "migrating a v0 directory to columnar changed the replayed structure"
        );
        std::fs::remove_dir_all(&dir_legacy).ok();
        std::fs::remove_dir_all(&dir_columnar).ok();
    }

    #[test]
    fn inspect_reports_columnar_snapshot_compression() {
        let dir = scratch_dir("inspect-compression");
        let config = DistConfig::new(2).with_bucket_size(8);
        let tree = durable_tree(&dir, &config, WalOptions::default());
        // Points drawn from a small palette — the occurrence-heavy shape
        // the columnar codec is built for.
        for i in 0..400u64 {
            tree.query(Query::insert(
                &[(i % 5) as f64 * 0.25, (i % 7) as f64 * 0.5],
                i,
            ))
            .and_then(QueryOutcome::inserted)
            .expect("insert");
        }
        tree.shutdown();
        let (wal, _) = Wal::resume(&dir, WalOptions::default()).expect("resume");
        let handle = WalHandle::new(wal);
        for (partition, image) in replayed_images(&dir) {
            handle
                .snapshot_image(ComputeNodeId(partition), &image)
                .expect("snapshot");
        }
        drop(handle);

        let inspection = inspect_wal(&dir).expect("inspect");
        assert!(!inspection.compression.is_empty());
        for c in &inspection.compression {
            assert_eq!(c.format, semtree_wal::SNAPSHOT_FORMAT_COLUMNAR);
            assert!(
                c.ratio() > 5.0,
                "partition {}: ratio {:.2} ({} stored / {} decoded)",
                c.partition,
                c.ratio(),
                c.stored_bytes,
                c.decoded_bytes
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_reconstructs_points_written_after_the_last_snapshot() {
        let dir = scratch_dir("tail");
        let config = DistConfig::new(2).with_bucket_size(4);
        // A cadence the workload never reaches: everything after the
        // initial snapshot lives only in the tail.
        let options = WalOptions::default()
            .with_segment_bytes(1 << 20)
            .with_snapshot_every(1_000_000);
        let tree = durable_tree(&dir, &config, options);
        for i in 0..60u64 {
            tree.query(Query::insert(
                &[f64::from(i as u32 % 7), f64::from(i as u32 / 7)],
                i,
            ))
            .and_then(QueryOutcome::inserted)
            .expect("insert");
        }
        tree.shutdown();

        let images = replayed_images(&dir);
        assert_eq!(images.len(), 1);
        assert_eq!(images[0].1.points, 60, "tail-only replay lost points");
        std::fs::remove_dir_all(&dir).ok();
    }
}
