//! The partition actor: one compute node hosting one partition.

use std::sync::Arc;

use semtree_cluster::{ComputeNodeId, Handler, NodeCtx};

use crate::proto::{Req, Resp};
use crate::store::{KnnState, LocalNodeId, PartitionStore, RemoteOps};
use crate::tree::SharedConfig;

/// Hosts one partition of the SemTree and speaks the [`Req`]/[`Resp`]
/// protocol. Single-threaded per partition, like one MPJ rank.
pub(crate) struct PartitionActor {
    store: PartitionStore,
    shared: Arc<SharedConfig>,
}

impl PartitionActor {
    /// An empty partition (fresh leaf at depth 0; an [`Req::AdoptLeaf`]
    /// normally follows immediately and resets the depth).
    pub(crate) fn fresh(shared: Arc<SharedConfig>) -> Self {
        let store = PartitionStore::new_leaf_with_rule(
            shared.dims,
            shared.bucket_size,
            shared.split_rule,
            Vec::new(),
            0,
        );
        PartitionActor { store, shared }
    }

    /// A partition with a pre-built store (the fan-out root).
    pub(crate) fn with_store(store: PartitionStore, shared: Arc<SharedConfig>) -> Self {
        PartitionActor { store, shared }
    }

    /// The build-partition algorithm (§III-B.2): while the resource
    /// condition fires and compute nodes remain, move the biggest leaf to a
    /// newly created partition and link it.
    fn enforce_capacity(&mut self, ctx: &NodeCtx<Req, Resp>) {
        while self.shared.capacity.exceeded(self.store.points()) {
            let Some(candidate) = self.store.eviction_candidate() else {
                break; // nothing evictable (root leaf only)
            };
            if !self.shared.try_reserve_partition() {
                break; // no compute node available to host a new partition
            }
            let (bucket, depth) = self.store.detach_leaf(candidate);
            let new_partition = ctx.spawn(PartitionActor::fresh(Arc::clone(&self.shared)));
            let bucket: Vec<(Vec<f64>, u64)> =
                bucket.into_iter().map(|(c, p)| (c.into_vec(), p)).collect();
            let resp = ctx.call(new_partition, Req::AdoptLeaf { bucket, depth });
            debug_assert_eq!(resp, Resp::Done);
            self.store
                .relink_to_partition(candidate, new_partition, LocalNodeId(0));
        }
    }
}

/// [`RemoteOps`] over the live message fabric.
struct FabricRemote<'a> {
    ctx: &'a NodeCtx<Req, Resp>,
}

impl FabricRemote<'_> {
    fn expect_candidates(resp: Resp) -> Vec<(f64, u64)> {
        match resp {
            Resp::Candidates(c) => c,
            other => panic!("expected candidates, got {other:?}"),
        }
    }
}

impl RemoteOps for FabricRemote<'_> {
    fn insert(&self, partition: ComputeNodeId, node: LocalNodeId, point: &[f64], payload: u64) {
        let resp = self.ctx.call(
            partition,
            Req::Insert {
                node,
                point: point.to_vec(),
                payload,
            },
        );
        debug_assert_eq!(resp, Resp::Done);
    }

    fn knn(
        &self,
        partition: ComputeNodeId,
        node: LocalNodeId,
        point: &[f64],
        k: usize,
        worst: Option<f64>,
    ) -> Vec<(f64, u64)> {
        Self::expect_candidates(self.ctx.call(
            partition,
            Req::Knn {
                node,
                point: point.to_vec(),
                k,
                worst,
            },
        ))
    }

    fn range(
        &self,
        partition: ComputeNodeId,
        node: LocalNodeId,
        point: &[f64],
        radius: f64,
    ) -> Vec<(f64, u64)> {
        Self::expect_candidates(self.ctx.call(
            partition,
            Req::Range {
                node,
                point: point.to_vec(),
                radius,
            },
        ))
    }

    fn range_parallel(
        &self,
        targets: [(ComputeNodeId, LocalNodeId); 2],
        point: &[f64],
        radius: f64,
    ) -> [Vec<(f64, u64)>; 2] {
        let calls = targets
            .iter()
            .map(|&(partition, node)| {
                (
                    partition,
                    Req::Range {
                        node,
                        point: point.to_vec(),
                        radius,
                    },
                )
            })
            .collect();
        let mut resps = self.ctx.call_many(calls).into_iter();
        let a = Self::expect_candidates(resps.next().expect("two responses"));
        let b = Self::expect_candidates(resps.next().expect("two responses"));
        [a, b]
    }
}

impl Handler for PartitionActor {
    type Req = Req;
    type Resp = Resp;

    fn handle(&mut self, ctx: &NodeCtx<Req, Resp>, req: Req) -> Resp {
        let remote = FabricRemote { ctx };
        match req {
            Req::Insert {
                node,
                point,
                payload,
            } => {
                let stored_here = self.store.insert(node, &point, payload, &remote);
                if stored_here {
                    self.enforce_capacity(ctx);
                }
                Resp::Done
            }
            Req::Knn {
                node,
                point,
                k,
                worst,
            } => {
                let mut state = KnnState::new(k, worst);
                self.store.knn(node, &point, &mut state, &remote);
                Resp::Candidates(state.into_candidates())
            }
            Req::Range {
                node,
                point,
                radius,
            } => {
                let mut out = Vec::new();
                self.store.range(node, &point, radius, &mut out, &remote);
                Resp::Candidates(out)
            }
            Req::AdoptLeaf { bucket, depth } => {
                let bucket = bucket
                    .into_iter()
                    .map(|(c, p)| (c.into_boxed_slice(), p))
                    .collect();
                self.store = PartitionStore::new_leaf_with_rule(
                    self.shared.dims,
                    self.shared.bucket_size,
                    self.shared.split_rule,
                    bucket,
                    depth,
                );
                Resp::Done
            }
            Req::Stats => Resp::Stats(self.store.stats()),
            Req::Verify => Resp::Violations(self.store.verify()),
            Req::Export => Resp::Points(self.store.export_points()),
        }
    }
}
