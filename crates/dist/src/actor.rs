//! The partition actor: one compute node hosting one partition.

use std::sync::Arc;

use semtree_cluster::{ClusterError, ComputeNodeId, Handler, NodeCtx};
use semtree_par::Pool;

use crate::mirror::{Mirror, ReadHandle};
use crate::proto::{Req, Resp};
use crate::store::{KnnState, LocalNodeId, PartitionStore, RemoteOps};
use crate::tree::SharedConfig;

/// Hosts one partition of the SemTree and speaks the [`Req`]/[`Resp`]
/// protocol. Single-threaded per partition, like one MPJ rank — except
/// for reads: while the partition is fully local, they go through the
/// lock-free [`Mirror`], so [`Req::KnnBatch`] fans out over `pool` and
/// the coordinator can bypass the mailbox entirely via the registered
/// [`ReadHandle`].
pub(crate) struct PartitionActor {
    store: PartitionStore,
    shared: Arc<SharedConfig>,
    pool: Pool,
    /// Seqlock mirror of `store`, maintained on every local mutation.
    mirror: Mirror,
    /// The mirror's shared read side (also registered in `shared`).
    handle: Arc<ReadHandle>,
    registered: bool,
}

impl PartitionActor {
    /// An empty partition (fresh leaf at depth 0; an [`Req::AdoptLeaf`]
    /// normally follows immediately and resets the depth).
    pub(crate) fn fresh(shared: Arc<SharedConfig>) -> Self {
        let store = PartitionStore::new_leaf_with_rule(
            shared.dims,
            shared.bucket_size,
            shared.split_rule,
            Vec::new(),
            0,
        );
        Self::with_store(store, shared)
    }

    /// A partition with a pre-built store (the fan-out root, or a
    /// WAL-recovered partition).
    pub(crate) fn with_store(store: PartitionStore, shared: Arc<SharedConfig>) -> Self {
        let mirror = Mirror::from_store(&store, shared.dims, shared.bucket_size, shared.split_rule);
        let handle = mirror.handle();
        PartitionActor {
            store,
            shared,
            pool: Pool::new(),
            mirror,
            handle,
            registered: false,
        }
    }

    /// The build-partition algorithm (§III-B.2): while the resource
    /// condition fires and compute nodes remain, move the biggest leaf to a
    /// newly created partition and link it. The new partition is placed by
    /// the transport — on another OS process under `semtree-net`. If the
    /// transfer fails the leaf is restored in place, so an error never
    /// loses points.
    fn enforce_capacity(&mut self, ctx: &NodeCtx<Req, Resp>) -> Result<(), ClusterError> {
        while self.shared.capacity.exceeded(self.store.points()) {
            let Some(candidate) = self.store.eviction_candidate() else {
                break; // nothing evictable (root leaf only)
            };
            if !self.shared.try_reserve_partition() {
                break; // no compute node available to host a new partition
            }
            let (bucket, depth) = self.store.detach_leaf(candidate);
            let new_partition = match ctx.spawn_member() {
                Ok(id) => id,
                Err(e) => {
                    self.store.restore_leaf(candidate, bucket);
                    self.shared.release_partition();
                    return Err(e);
                }
            };
            let wire_bucket: Vec<(Vec<f64>, u64)> =
                bucket.iter().map(|(c, p)| (c.to_vec(), *p)).collect();
            match ctx.call(
                new_partition,
                Req::AdoptLeaf {
                    bucket: wire_bucket,
                    depth,
                },
            ) {
                Ok(Resp::Done) => {}
                Ok(Resp::Error(msg)) => {
                    self.store.restore_leaf(candidate, bucket);
                    self.shared.release_partition();
                    return Err(ClusterError::Remote(msg));
                }
                Ok(other) => {
                    self.store.restore_leaf(candidate, bucket);
                    self.shared.release_partition();
                    return Err(ClusterError::Remote(format!(
                        "unexpected AdoptLeaf reply {other:?}"
                    )));
                }
                Err(e) => {
                    self.store.restore_leaf(candidate, bucket);
                    self.shared.release_partition();
                    return Err(e);
                }
            }
            // Write-ahead of the relink: the relink runs as the apply
            // half of the flushed migration record, so a crash between
            // the two replays the migration from the log and the remote
            // link survives. (The adoption itself is durable in the
            // *target* process's WAL via its PartitionCreate record.)
            let store = &mut self.store;
            if let Some(wal) = &self.shared.wal {
                wal.apply_migration(
                    ctx.node_id(),
                    candidate,
                    new_partition,
                    LocalNodeId(0),
                    || {
                        store.relink_to_partition(candidate, new_partition, LocalNodeId(0));
                    },
                )
                .map_err(|e| ClusterError::Remote(format!("wal append failed: {e}")))?;
            } else {
                store.relink_to_partition(candidate, new_partition, LocalNodeId(0));
            }
            // The partition now has a remote link: freeze the mirror
            // *before* any later write is acknowledged, so lock-free
            // readers can never miss an acknowledged insert.
            self.mirror.deactivate();
        }
        Ok(())
    }

    /// Snapshot this partition's store when the WAL says enough history
    /// piled up; log failures surface as actor errors.
    fn maybe_snapshot(
        &self,
        ctx: &NodeCtx<Req, Resp>,
        snapshot_due: bool,
    ) -> Result<(), ClusterError> {
        if !snapshot_due {
            return Ok(());
        }
        if let Some(wal) = &self.shared.wal {
            wal.snapshot_image(ctx.node_id(), &self.store.to_image())
                .map_err(|e| ClusterError::Remote(format!("wal snapshot failed: {e}")))?;
        }
        Ok(())
    }
}

/// [`RemoteOps`] stub for partitions with no remote links: a traversal
/// there can never cross a border, so the batched k-NN worker threads
/// need no (non-`Sync`) message fabric behind them. Any call is a logic
/// error and surfaces as a remote failure rather than a panic.
struct NoRemote;

impl NoRemote {
    fn bug<T>() -> Result<T, ClusterError> {
        Err(ClusterError::Remote(
            "remote operation reached during a local-only batch".into(),
        ))
    }
}

impl RemoteOps for NoRemote {
    fn insert(
        &self,
        _partition: ComputeNodeId,
        _node: LocalNodeId,
        _point: &[f64],
        _payload: u64,
    ) -> Result<(), ClusterError> {
        Self::bug()
    }

    fn knn(
        &self,
        _partition: ComputeNodeId,
        _node: LocalNodeId,
        _point: &[f64],
        _k: usize,
        _worst: Option<f64>,
    ) -> Result<Vec<(f64, u64)>, ClusterError> {
        Self::bug()
    }

    fn range(
        &self,
        _partition: ComputeNodeId,
        _node: LocalNodeId,
        _point: &[f64],
        _radius: f64,
    ) -> Result<Vec<(f64, u64)>, ClusterError> {
        Self::bug()
    }

    fn range_parallel(
        &self,
        _targets: [(ComputeNodeId, LocalNodeId); 2],
        _point: &[f64],
        _radius: f64,
    ) -> Result<[Vec<(f64, u64)>; 2], ClusterError> {
        Self::bug()
    }
}

/// [`RemoteOps`] over the live message fabric.
struct FabricRemote<'a> {
    ctx: &'a NodeCtx<Req, Resp>,
}

impl FabricRemote<'_> {
    fn expect_candidates(resp: Resp) -> Result<Vec<(f64, u64)>, ClusterError> {
        match resp {
            Resp::Candidates(c) => Ok(c),
            Resp::Error(msg) => Err(ClusterError::Remote(msg)),
            other => Err(ClusterError::Remote(format!(
                "expected candidates, got {other:?}"
            ))),
        }
    }
}

impl RemoteOps for FabricRemote<'_> {
    fn insert(
        &self,
        partition: ComputeNodeId,
        node: LocalNodeId,
        point: &[f64],
        payload: u64,
    ) -> Result<(), ClusterError> {
        match self.ctx.call(
            partition,
            Req::Insert {
                node,
                point: point.to_vec(),
                payload,
            },
        )? {
            Resp::Done => Ok(()),
            Resp::Error(msg) => Err(ClusterError::Remote(msg)),
            other => Err(ClusterError::Remote(format!(
                "expected done, got {other:?}"
            ))),
        }
    }

    fn knn(
        &self,
        partition: ComputeNodeId,
        node: LocalNodeId,
        point: &[f64],
        k: usize,
        worst: Option<f64>,
    ) -> Result<Vec<(f64, u64)>, ClusterError> {
        Self::expect_candidates(self.ctx.call(
            partition,
            Req::Knn {
                node,
                point: point.to_vec(),
                k,
                worst,
            },
        )?)
    }

    fn range(
        &self,
        partition: ComputeNodeId,
        node: LocalNodeId,
        point: &[f64],
        radius: f64,
    ) -> Result<Vec<(f64, u64)>, ClusterError> {
        Self::expect_candidates(self.ctx.call(
            partition,
            Req::Range {
                node,
                point: point.to_vec(),
                radius,
            },
        )?)
    }

    fn range_parallel(
        &self,
        targets: [(ComputeNodeId, LocalNodeId); 2],
        point: &[f64],
        radius: f64,
    ) -> Result<[Vec<(f64, u64)>; 2], ClusterError> {
        let calls = targets
            .iter()
            .map(|&(partition, node)| {
                (
                    partition,
                    Req::Range {
                        node,
                        point: point.to_vec(),
                        radius,
                    },
                )
            })
            .collect();
        let mut resps = self.ctx.call_many(calls)?.into_iter();
        let a = Self::expect_candidates(resps.next().expect("two responses"))?;
        let b = Self::expect_candidates(resps.next().expect("two responses"))?;
        Ok([a, b])
    }
}

impl Handler for PartitionActor {
    type Req = Req;
    type Resp = Resp;

    fn handle(&mut self, ctx: &NodeCtx<Req, Resp>, req: Req) -> Resp {
        if !self.registered {
            // Publish the lock-free read side once the hosting node is
            // known; the coordinator uses it to serve k-NN and range
            // queries without entering this mailbox.
            self.shared
                .register_read_handle(ctx.node_id(), Arc::clone(&self.handle));
            self.registered = true;
        }
        let remote = FabricRemote { ctx };
        match req {
            Req::Insert {
                node,
                point,
                payload,
            } => {
                // Write-ahead: `apply_insert` flushes the record before
                // running the store mutation, so the mutation can never
                // outrun its log entry. If navigation forwards the point
                // to another partition the record stays behind as a
                // no-op on replay (the receiving partition logs its own
                // copy on arrival).
                let mut due = false;
                let store = &mut self.store;
                let mut splits = Vec::new();
                let inserted = if let Some(wal) = &self.shared.wal {
                    match wal.apply_insert(ctx.node_id(), node, &point, payload, || {
                        store.insert_logged(node, &point, payload, &remote, &mut splits)
                    }) {
                        Ok((d, inserted)) => {
                            due = d;
                            inserted
                        }
                        Err(e) => return Resp::Error(format!("wal append failed: {e}")),
                    }
                } else {
                    store.insert_logged(node, &point, payload, &remote, &mut splits)
                };
                match inserted {
                    Ok(stored_here) => {
                        if stored_here {
                            // Keep the mirror in lockstep before the
                            // write can be acknowledged.
                            self.mirror.insert(&point, payload);
                        }
                        if let Some(wal) = &self.shared.wal {
                            match wal.log_splits(ctx.node_id(), &splits) {
                                Ok(d) => due |= d,
                                Err(e) => return Resp::Error(format!("wal append failed: {e}")),
                            }
                        }
                        if let Err(e) = self.maybe_snapshot(ctx, due) {
                            return Resp::Error(e.to_string());
                        }
                        if stored_here {
                            if let Err(e) = self.enforce_capacity(ctx) {
                                // The point is stored; the failed
                                // build-partition left the tree intact (leaf
                                // restored) but the client should know
                                // capacity could not be enforced.
                                return Resp::Error(format!("build-partition failed: {e}"));
                            }
                        }
                        Resp::Done
                    }
                    Err(e) => Resp::Error(e.to_string()),
                }
            }
            Req::Knn {
                node,
                point,
                k,
                worst,
            } => {
                // Fully-local partition: serve through the lock-free
                // mirror (identical answer, retry accounting for free).
                if node == LocalNodeId(0) {
                    if let Some((hits, retries)) = self.handle.knn(&point, k, worst) {
                        self.shared.record_read_retries(retries);
                        return Resp::Candidates(hits);
                    }
                }
                let mut state = KnnState::new(k, worst);
                match self.store.knn(node, &point, &mut state, &remote) {
                    Ok(()) => Resp::Candidates(state.into_candidates()),
                    Err(e) => Resp::Error(e.to_string()),
                }
            }
            Req::Range {
                node,
                point,
                radius,
            } => {
                if node == LocalNodeId(0) {
                    if let Some((hits, retries)) = self.handle.range(&point, radius) {
                        self.shared.record_read_retries(retries);
                        return Resp::Candidates(hits);
                    }
                }
                let mut out = Vec::new();
                match self.store.range(node, &point, radius, &mut out, &remote) {
                    Ok(()) => Resp::Candidates(out),
                    Err(e) => Resp::Error(e.to_string()),
                }
            }
            Req::AdoptLeaf { bucket, depth } => {
                // Write-ahead of this partition's birth: the store is
                // built only after the PartitionCreate record is
                // flushed. The splits the adopted bucket triggers are
                // logged right after, so the replayed arena is
                // id-for-id identical.
                let shared = &self.shared;
                let mut splits = Vec::new();
                let mut build = || {
                    let bucket = bucket
                        .iter()
                        .map(|(c, p)| (c.clone().into_boxed_slice(), *p))
                        .collect();
                    PartitionStore::new_leaf_logged(
                        shared.dims,
                        shared.bucket_size,
                        shared.split_rule,
                        bucket,
                        depth,
                        &mut splits,
                    )
                };
                if let Some(wal) = &shared.wal {
                    let store = match wal.apply_create(ctx.node_id(), depth, &bucket, build) {
                        Ok((_, store)) => store,
                        Err(e) => return Resp::Error(format!("wal append failed: {e}")),
                    };
                    self.store = store;
                    let due = match wal.log_splits(ctx.node_id(), &splits) {
                        Ok(due) => due,
                        Err(e) => return Resp::Error(format!("wal append failed: {e}")),
                    };
                    if let Err(e) = self.maybe_snapshot(ctx, due) {
                        return Resp::Error(e.to_string());
                    }
                } else {
                    self.store = build();
                }
                self.mirror.rebuild(&self.store);
                Resp::Done
            }
            Req::KnnBatch { node, points, k } => {
                if self.store.has_remote_children() {
                    // Border partition: traversals may cross into other
                    // partitions, and the fabric context is single-threaded
                    // — answer the batch sequentially. It still collapses
                    // the client's round trips into one.
                    let mut batches = Vec::with_capacity(points.len());
                    for point in &points {
                        let mut state = KnnState::new(k, None);
                        match self.store.knn(node, point, &mut state, &remote) {
                            Ok(()) => batches.push(state.into_candidates()),
                            Err(e) => return Resp::Error(e.to_string()),
                        }
                    }
                    Resp::CandidateBatches(batches)
                } else if node == LocalNodeId(0) && self.handle.is_active() {
                    // Fully local partition: fan the queries out over the
                    // worker pool through the lock-free mirror. Each
                    // query's answer is identical to the sequential path.
                    let handle = &self.handle;
                    let results = self
                        .pool
                        .map(points.len(), &|i| handle.knn(&points[i], k, None));
                    let mut batches = Vec::with_capacity(results.len());
                    for (i, r) in results.into_iter().enumerate() {
                        match r {
                            Some((hits, retries)) => {
                                self.shared.record_read_retries(retries);
                                batches.push(hits);
                            }
                            None => {
                                // Mirror rejected the query (e.g. a
                                // dimensionality mismatch): sequential
                                // store path for this one.
                                let mut state = KnnState::new(k, None);
                                match self.store.knn(node, &points[i], &mut state, &NoRemote) {
                                    Ok(()) => batches.push(state.into_candidates()),
                                    Err(e) => return Resp::Error(e.to_string()),
                                }
                            }
                        }
                    }
                    Resp::CandidateBatches(batches)
                } else {
                    // Fully local partition with a frozen mirror: fan
                    // out over the pool directly against the store.
                    let store = &self.store;
                    let results = self.pool.map(points.len(), &|i| {
                        let mut state = KnnState::new(k, None);
                        store
                            .knn(node, &points[i], &mut state, &NoRemote)
                            .map(|()| state.into_candidates())
                            .map_err(|e| e.to_string())
                    });
                    let mut batches = Vec::with_capacity(results.len());
                    for r in results {
                        match r {
                            Ok(c) => batches.push(c),
                            Err(e) => return Resp::Error(e),
                        }
                    }
                    Resp::CandidateBatches(batches)
                }
            }
            Req::Stats => Resp::Stats(self.store.stats()),
            Req::Verify => Resp::Violations(self.store.verify()),
            Req::Export => Resp::Points(self.store.export_points()),
        }
    }
}
