//! Partition-local tree fragment: nodes, buckets and remote links.

use semtree_cluster::{ClusterError, ComputeNodeId};
use semtree_kdtree::SplitRule;
use semtree_net::{Decode, DecodeError, Encode};

use crate::deploy::{split_rule_from_tag, split_rule_tag};
use crate::proto::PartitionStats;

/// Identifier of a node inside one partition's arena; each partition's
/// sub-tree root is node 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocalNodeId(pub u32);

impl LocalNodeId {
    /// The arena index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A child pointer: on this partition (`Cp = Childp`) or the root of a
/// sub-tree hosted by another partition (`Cp ≠ Childp` — a *direct link*
/// between partitions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Child {
    Local(LocalNodeId),
    Remote {
        partition: ComputeNodeId,
        node: LocalNodeId,
    },
}

/// A leaf's stored points: `(coordinates, payload)` pairs.
pub(crate) type Bucket = Vec<(Box<[f64]>, u64)>;

/// One leaf split, in the exact form the WAL logs it: the leaf that
/// became a routing node, the chosen plane, and the arena ids handed to
/// the two children. Replay re-applies the event verbatim instead of
/// re-deriving the split, so a recovered arena is id-for-id identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SplitEvent {
    pub(crate) leaf: LocalNodeId,
    pub(crate) split_dim: usize,
    pub(crate) split_val: f64,
    pub(crate) left: LocalNodeId,
    pub(crate) right: LocalNodeId,
}

#[derive(Debug, Clone)]
pub(crate) enum PNodeKind {
    Routing {
        split_dim: usize,
        split_val: f64,
        left: Child,
        right: Child,
    },
    Leaf {
        bucket: Vec<(Box<[f64]>, u64)>,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct PNode {
    pub(crate) kind: PNodeKind,
    /// *Global* depth (root partition's root = 0), so the split-dimension
    /// cycle stays aligned across partitions.
    pub(crate) depth: u32,
    parent: Option<(LocalNodeId, bool)>, // (parent, is_left_child)
}

/// Every remote operation a partition-local traversal may need; the actor
/// implements it with real messages, tests with mocks. Each operation can
/// fail — the far partition may be gone, or the network may drop the
/// connection — and the failure propagates back up the traversal.
pub(crate) trait RemoteOps {
    fn insert(
        &self,
        partition: ComputeNodeId,
        node: LocalNodeId,
        point: &[f64],
        payload: u64,
    ) -> Result<(), ClusterError>;
    fn knn(
        &self,
        partition: ComputeNodeId,
        node: LocalNodeId,
        point: &[f64],
        k: usize,
        worst: Option<f64>,
    ) -> Result<Vec<(f64, u64)>, ClusterError>;
    fn range(
        &self,
        partition: ComputeNodeId,
        node: LocalNodeId,
        point: &[f64],
        radius: f64,
    ) -> Result<Vec<(f64, u64)>, ClusterError>;
    /// Parallel variant for border nodes whose two children are both
    /// remote (§III-B.4: "the navigation is performed in a parallel way").
    fn range_parallel(
        &self,
        targets: [(ComputeNodeId, LocalNodeId); 2],
        point: &[f64],
        radius: f64,
    ) -> Result<[Vec<(f64, u64)>; 2], ClusterError>;
}

/// Result-set state for a k-nearest traversal: bounded max-heap plus the
/// caller's pruning hint (the paper's `D`, "the distance between the
/// interested point and the most distant one in the result-set").
pub(crate) struct KnnState {
    k: usize,
    hint: Option<f64>,
    /// (dist, payload), kept as a max-heap by distance.
    heap: std::collections::BinaryHeap<Candidate>,
}

struct Candidate {
    dist: f64,
    payload: u64,
}
impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .partial_cmp(&other.dist)
            .expect("distances are finite")
    }
}

impl KnnState {
    pub(crate) fn new(k: usize, hint: Option<f64>) -> Self {
        KnnState {
            k,
            hint,
            heap: std::collections::BinaryHeap::new(),
        }
    }

    /// Offer a candidate; ignored when it cannot improve the global result.
    pub(crate) fn offer(&mut self, dist: f64, payload: u64) {
        if self.hint.is_some_and(|h| dist >= h) {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(Candidate { dist, payload });
        } else if let Some(top) = self.heap.peek() {
            if dist < top.dist {
                self.heap.pop();
                self.heap.push(Candidate { dist, payload });
            }
        }
    }

    /// Upper bound on a useful candidate distance, `None` when any point
    /// could still qualify (`|Rs| < K` with no hint).
    pub(crate) fn bound(&self) -> Option<f64> {
        let own = (self.heap.len() >= self.k)
            .then(|| self.heap.peek().map(|c| c.dist))
            .flatten();
        match (own, self.hint) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, h) => h,
        }
    }

    /// The paper's descend condition: result set not full, or the
    /// splitting hyperplane closer than the current worst.
    pub(crate) fn must_descend(&self, plane_dist: f64) -> bool {
        match self.bound() {
            None => true,
            Some(b) => plane_dist < b,
        }
    }

    /// Drain into ascending-distance candidates.
    pub(crate) fn into_candidates(self) -> Vec<(f64, u64)> {
        let mut v: Vec<(f64, u64)> = self.heap.into_iter().map(|c| (c.dist, c.payload)).collect();
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distances are finite"));
        v
    }
}

pub(crate) fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// One partition's fragment of the global KD-tree.
#[derive(Debug, Clone)]
pub(crate) struct PartitionStore {
    dims: usize,
    bucket_size: usize,
    split_rule: SplitRule,
    pub(crate) nodes: Vec<PNode>,
    points: usize,
}

impl PartitionStore {
    /// A fresh partition: a single (possibly pre-filled) leaf at global
    /// depth `depth`, splitting under the given rule (the degenerate rule
    /// reproduces the paper's unbalanced series).
    pub(crate) fn new_leaf_with_rule(
        dims: usize,
        bucket_size: usize,
        split_rule: SplitRule,
        bucket: Bucket,
        depth: u32,
    ) -> Self {
        Self::new_leaf_logged(
            dims,
            bucket_size,
            split_rule,
            bucket,
            depth,
            &mut Vec::new(),
        )
    }

    /// [`new_leaf_with_rule`](PartitionStore::new_leaf_with_rule) that
    /// also reports the splits the adopted bucket triggered, so the
    /// actor can write them to the WAL.
    pub(crate) fn new_leaf_logged(
        dims: usize,
        bucket_size: usize,
        split_rule: SplitRule,
        bucket: Bucket,
        depth: u32,
        splits: &mut Vec<SplitEvent>,
    ) -> Self {
        let mut store = Self::raw_leaf(dims, bucket_size, split_rule, bucket, depth);
        // An adopted bucket may already exceed the bucket size.
        store.maybe_split(LocalNodeId(0), splits);
        store
    }

    /// A single-leaf store with **no** capacity check — the replay base:
    /// splits are applied from the log, never derived.
    pub(crate) fn raw_leaf(
        dims: usize,
        bucket_size: usize,
        split_rule: SplitRule,
        bucket: Bucket,
        depth: u32,
    ) -> Self {
        let points = bucket.len();
        PartitionStore {
            dims,
            bucket_size,
            split_rule,
            nodes: vec![PNode {
                kind: PNodeKind::Leaf { bucket },
                depth,
                parent: None,
            }],
            points,
        }
    }

    /// An arena with no nodes yet: the fan-out builder pushes the routing
    /// root as node 0 itself.
    pub(crate) fn empty_arena(dims: usize, bucket_size: usize) -> Self {
        PartitionStore {
            dims,
            bucket_size,
            split_rule: SplitRule::Cycle,
            nodes: Vec::new(),
            points: 0,
        }
    }

    /// Arena access used by the fan-out builder in `tree.rs`.
    pub(crate) fn push_node(&mut self, kind: PNodeKind, depth: u32) -> LocalNodeId {
        let id = LocalNodeId(self.nodes.len() as u32);
        self.nodes.push(PNode {
            kind,
            depth,
            parent: None,
        });
        id
    }

    pub(crate) fn set_parent(&mut self, child: LocalNodeId, parent: LocalNodeId, is_left: bool) {
        self.nodes[child.index()].parent = Some((parent, is_left));
    }

    /// Replace a routing node's child pointers (fan-out construction
    /// allocates parents before children and patches afterwards).
    pub(crate) fn patch_routing_children(&mut self, node: LocalNodeId, left: Child, right: Child) {
        match &mut self.nodes[node.index()].kind {
            PNodeKind::Routing {
                left: l, right: r, ..
            } => {
                *l = left;
                *r = right;
            }
            PNodeKind::Leaf { .. } => panic!("patch_routing_children on a leaf"),
        }
    }

    pub(crate) fn points(&self) -> usize {
        self.points
    }

    // ------------------------------------------------------------------
    // Insertion (§III-B.1)
    // ------------------------------------------------------------------

    /// Insert starting at `start`; returns `Ok(true)` when the point landed
    /// in this partition, `Ok(false)` when it was forwarded to another.
    /// Convenience for tests — production inserts go through
    /// [`insert_logged`](PartitionStore::insert_logged) so splits reach
    /// the WAL.
    #[cfg(test)]
    pub(crate) fn insert(
        &mut self,
        start: LocalNodeId,
        point: &[f64],
        payload: u64,
        remote: &dyn RemoteOps,
    ) -> Result<bool, ClusterError> {
        self.insert_logged(start, point, payload, remote, &mut Vec::new())
    }

    /// [`insert`](PartitionStore::insert) that also reports any splits
    /// it triggered, so the actor can write them to the WAL.
    pub(crate) fn insert_logged(
        &mut self,
        start: LocalNodeId,
        point: &[f64],
        payload: u64,
        remote: &dyn RemoteOps,
        splits: &mut Vec<SplitEvent>,
    ) -> Result<bool, ClusterError> {
        assert_eq!(point.len(), self.dims, "dimensionality mismatch");
        let node = match self.navigate(start, point) {
            Ok(leaf) => leaf,
            Err((partition, node)) => {
                remote.insert(partition, node, point, payload)?;
                return Ok(false);
            }
        };
        if let PNodeKind::Leaf { bucket } = &mut self.nodes[node.index()].kind {
            bucket.push((point.into(), payload));
        }
        self.points += 1;
        self.maybe_split(node, splits);
        Ok(true)
    }

    /// Walk from `start` to the leaf that owns `point`, or to the remote
    /// child the point must be forwarded to.
    fn navigate(
        &self,
        start: LocalNodeId,
        point: &[f64],
    ) -> Result<LocalNodeId, (ComputeNodeId, LocalNodeId)> {
        let mut node = start;
        loop {
            match &self.nodes[node.index()].kind {
                PNodeKind::Leaf { .. } => return Ok(node),
                PNodeKind::Routing {
                    split_dim,
                    split_val,
                    left,
                    right,
                } => {
                    let child = if point[*split_dim] <= *split_val {
                        *left
                    } else {
                        *right
                    };
                    match child {
                        Child::Local(next) => node = next,
                        Child::Remote { partition, node } => return Err((partition, node)),
                    }
                }
            }
        }
    }

    /// Re-apply a logged [`PointInsert`](semtree_wal::WalRecord): same
    /// navigation, same bucket push, but **no** split — splits replay
    /// from their own records. Returns `false` (a no-op) when navigation
    /// reaches a remote child: the live insert was forwarded and logged
    /// by the partition that actually stored it.
    pub(crate) fn replay_insert(
        &mut self,
        start: LocalNodeId,
        point: &[f64],
        payload: u64,
    ) -> bool {
        if point.len() != self.dims {
            return false;
        }
        let Ok(leaf) = self.navigate(start, point) else {
            return false;
        };
        if let PNodeKind::Leaf { bucket } = &mut self.nodes[leaf.index()].kind {
            bucket.push((point.into(), payload));
        }
        self.points += 1;
        true
    }

    /// Re-apply a logged [`SplitEvent`] verbatim. Fails when the log and
    /// the store disagree — a corrupt or out-of-order WAL.
    pub(crate) fn apply_split(&mut self, event: &SplitEvent) -> Result<(), String> {
        let leaf = event.leaf;
        if leaf.index() >= self.nodes.len() {
            return Err(format!("split of unknown node {}", leaf.0));
        }
        let depth = self.nodes[leaf.index()].depth;
        let PNodeKind::Leaf { bucket } = std::mem::replace(
            &mut self.nodes[leaf.index()].kind,
            PNodeKind::Leaf { bucket: Vec::new() },
        ) else {
            return Err(format!("split of routing node {}", leaf.0));
        };
        let (lb, rb): (Vec<_>, Vec<_>) = bucket
            .into_iter()
            .partition(|(c, _)| c[event.split_dim] <= event.split_val);
        let left = self.push_node(PNodeKind::Leaf { bucket: lb }, depth + 1);
        let right = self.push_node(PNodeKind::Leaf { bucket: rb }, depth + 1);
        if left != event.left || right != event.right {
            return Err(format!(
                "split of node {} allocated children {}/{}, log says {}/{}",
                leaf.0, left.0, right.0, event.left.0, event.right.0
            ));
        }
        self.set_parent(left, leaf, true);
        self.set_parent(right, leaf, false);
        self.nodes[leaf.index()].kind = PNodeKind::Routing {
            split_dim: event.split_dim,
            split_val: event.split_val,
            left: Child::Local(left),
            right: Child::Local(right),
        };
        Ok(())
    }

    /// Re-apply a logged leaf migration: drop the evicted leaf's bucket
    /// and point its parent at the partition that adopted it.
    pub(crate) fn apply_migration(
        &mut self,
        evicted: LocalNodeId,
        partition: ComputeNodeId,
        remote_node: LocalNodeId,
    ) -> Result<(), String> {
        if evicted.index() >= self.nodes.len() {
            return Err(format!("migration of unknown node {}", evicted.0));
        }
        let PNodeKind::Leaf { bucket } = std::mem::replace(
            &mut self.nodes[evicted.index()].kind,
            PNodeKind::Leaf { bucket: Vec::new() },
        ) else {
            return Err(format!("migration of routing node {}", evicted.0));
        };
        if self.nodes[evicted.index()].parent.is_none() {
            self.nodes[evicted.index()].kind = PNodeKind::Leaf { bucket };
            return Err("migration of the partition root".to_string());
        }
        self.points -= bucket.len();
        self.relink_to_partition(evicted, partition, remote_node);
        Ok(())
    }

    fn maybe_split(&mut self, leaf: LocalNodeId, splits: &mut Vec<SplitEvent>) {
        let depth = self.nodes[leaf.index()].depth;
        let over = match &self.nodes[leaf.index()].kind {
            PNodeKind::Leaf { bucket } => bucket.len() > self.bucket_size,
            PNodeKind::Routing { .. } => false,
        };
        if !over {
            return;
        }
        let PNodeKind::Leaf { bucket } = std::mem::replace(
            &mut self.nodes[leaf.index()].kind,
            PNodeKind::Leaf { bucket: Vec::new() },
        ) else {
            return;
        };
        let Some((split_dim, split_val)) = choose_split(&bucket, self.dims, depth, self.split_rule)
        else {
            self.nodes[leaf.index()].kind = PNodeKind::Leaf { bucket };
            return;
        };
        let (lb, rb): (Vec<_>, Vec<_>) = bucket
            .into_iter()
            .partition(|(c, _)| c[split_dim] <= split_val);
        let left = self.push_node(PNodeKind::Leaf { bucket: lb }, depth + 1);
        let right = self.push_node(PNodeKind::Leaf { bucket: rb }, depth + 1);
        self.set_parent(left, leaf, true);
        self.set_parent(right, leaf, false);
        self.nodes[leaf.index()].kind = PNodeKind::Routing {
            split_dim,
            split_val,
            left: Child::Local(left),
            right: Child::Local(right),
        };
        splits.push(SplitEvent {
            leaf,
            split_dim,
            split_val,
            left,
            right,
        });
        self.maybe_split(left, splits);
        self.maybe_split(right, splits);
    }

    // ------------------------------------------------------------------
    // k-nearest (§III-B.3)
    // ------------------------------------------------------------------

    pub(crate) fn knn(
        &self,
        start: LocalNodeId,
        point: &[f64],
        state: &mut KnnState,
        remote: &dyn RemoteOps,
    ) -> Result<(), ClusterError> {
        assert_eq!(point.len(), self.dims, "dimensionality mismatch");
        // Explicit stack: the far-side descend condition is evaluated only
        // after the near side finished (classic backtracking), and deep
        // chain partitions cannot overflow the call stack.
        enum Task {
            Visit(Child),
            CheckFar { far: Child, plane_dist: f64 },
        }
        let mut stack = vec![Task::Visit(Child::Local(start))];
        while let Some(task) = stack.pop() {
            let child = match task {
                Task::CheckFar { far, plane_dist } => {
                    if state.must_descend(plane_dist) {
                        far
                    } else {
                        continue;
                    }
                }
                Task::Visit(child) => child,
            };
            match child {
                Child::Remote { partition, node } => {
                    // Cross the border: ship the query and the current
                    // worst distance, merge the partial result set back.
                    let hits = remote.knn(partition, node, point, state.k, state.bound())?;
                    for (d, p) in hits {
                        state.offer(d, p);
                    }
                }
                Child::Local(id) => match &self.nodes[id.index()].kind {
                    PNodeKind::Leaf { bucket } => {
                        for (coords, payload) in bucket {
                            state.offer(euclidean(coords, point), *payload);
                        }
                    }
                    PNodeKind::Routing {
                        split_dim,
                        split_val,
                        left,
                        right,
                    } => {
                        let delta = point[*split_dim] - *split_val;
                        let (near, far) = if delta <= 0.0 {
                            (*left, *right)
                        } else {
                            (*right, *left)
                        };
                        stack.push(Task::CheckFar {
                            far,
                            plane_dist: delta.abs(),
                        });
                        stack.push(Task::Visit(near));
                    }
                },
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Range search (§III-B.4)
    // ------------------------------------------------------------------

    pub(crate) fn range(
        &self,
        start: LocalNodeId,
        point: &[f64],
        radius: f64,
        out: &mut Vec<(f64, u64)>,
        remote: &dyn RemoteOps,
    ) -> Result<(), ClusterError> {
        assert_eq!(point.len(), self.dims, "dimensionality mismatch");
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut stack = vec![Child::Local(start)];
        while let Some(child) = stack.pop() {
            match child {
                Child::Remote { partition, node } => {
                    out.extend(remote.range(partition, node, point, radius)?);
                }
                Child::Local(id) => match &self.nodes[id.index()].kind {
                    PNodeKind::Leaf { bucket } => {
                        for (coords, payload) in bucket {
                            let d = euclidean(coords, point);
                            if d <= radius {
                                out.push((d, *payload));
                            }
                        }
                    }
                    PNodeKind::Routing {
                        split_dim,
                        split_val,
                        left,
                        right,
                    } => {
                        let delta = point[*split_dim] - *split_val;
                        if delta.abs() <= radius {
                            // Border case with both children remote: search
                            // the two partitions in parallel and merge.
                            if let (
                                Child::Remote {
                                    partition: lp,
                                    node: ln,
                                },
                                Child::Remote {
                                    partition: rp,
                                    node: rn,
                                },
                            ) = (*left, *right)
                            {
                                let [l, r] =
                                    remote.range_parallel([(lp, ln), (rp, rn)], point, radius)?;
                                out.extend(l);
                                out.extend(r);
                            } else {
                                stack.push(*left);
                                stack.push(*right);
                            }
                        } else if delta <= 0.0 {
                            stack.push(*left);
                        } else {
                            stack.push(*right);
                        }
                    }
                },
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Build partition (§III-B.2)
    // ------------------------------------------------------------------

    /// The largest leaf that is not the partition root (the "leaf node
    /// candidate `Lc`" of Figure 2), if any.
    /// Whether any routing node links to a remote partition. A partition
    /// with no remote links can answer whole traversals without touching
    /// the message fabric — which is what lets a batched k-NN fan out
    /// over worker threads.
    pub(crate) fn has_remote_children(&self) -> bool {
        self.nodes.iter().any(|n| match &n.kind {
            PNodeKind::Routing { left, right, .. } => {
                matches!(left, Child::Remote { .. }) || matches!(right, Child::Remote { .. })
            }
            PNodeKind::Leaf { .. } => false,
        })
    }

    pub(crate) fn eviction_candidate(&self) -> Option<LocalNodeId> {
        self.reachable_nodes()
            .into_iter()
            .filter(|id| id.index() != 0)
            .filter_map(|id| match &self.nodes[id.index()].kind {
                PNodeKind::Leaf { bucket } if !bucket.is_empty() => Some((id, bucket.len())),
                _ => None,
            })
            .max_by_key(|&(id, len)| (len, std::cmp::Reverse(id.0)))
            .map(|(id, _)| id)
    }

    /// Detach a leaf's bucket for transfer; the node keeps its place in the
    /// arena (unreachable once relinked).
    pub(crate) fn detach_leaf(&mut self, id: LocalNodeId) -> (Bucket, u32) {
        let depth = self.nodes[id.index()].depth;
        let PNodeKind::Leaf { bucket } = std::mem::replace(
            &mut self.nodes[id.index()].kind,
            PNodeKind::Leaf { bucket: Vec::new() },
        ) else {
            panic!("detach_leaf called on a routing node");
        };
        self.points -= bucket.len();
        (bucket, depth)
    }

    /// Undo a [`detach_leaf`](PartitionStore::detach_leaf): put the bucket
    /// back when the transfer to the new partition failed, so no points
    /// are lost.
    pub(crate) fn restore_leaf(&mut self, id: LocalNodeId, bucket: Bucket) {
        self.points += bucket.len();
        self.nodes[id.index()].kind = PNodeKind::Leaf { bucket };
    }

    /// Point the evicted leaf's parent at the new partition ("a link
    /// between the two partitions is then created").
    pub(crate) fn relink_to_partition(
        &mut self,
        evicted: LocalNodeId,
        partition: ComputeNodeId,
        remote_node: LocalNodeId,
    ) {
        let Some((parent, is_left)) = self.nodes[evicted.index()].parent else {
            panic!("partition root cannot be relinked");
        };
        if let PNodeKind::Routing { left, right, .. } = &mut self.nodes[parent.index()].kind {
            let slot = if is_left { left } else { right };
            *slot = Child::Remote {
                partition,
                node: remote_node,
            };
        } else {
            unreachable!("parent of a leaf is a routing node");
        }
    }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    fn reachable_nodes(&self) -> Vec<LocalNodeId> {
        let mut out = Vec::new();
        if self.nodes.is_empty() {
            return out;
        }
        let mut stack = vec![LocalNodeId(0)];
        while let Some(id) = stack.pop() {
            out.push(id);
            if let PNodeKind::Routing { left, right, .. } = &self.nodes[id.index()].kind {
                for child in [left, right] {
                    if let Child::Local(next) = child {
                        stack.push(*next);
                    }
                }
            }
        }
        out
    }

    /// Every point stored in this partition's reachable local leaves.
    pub(crate) fn export_points(&self) -> Vec<(Vec<f64>, u64)> {
        let mut out = Vec::with_capacity(self.points);
        for id in self.reachable_nodes() {
            if let PNodeKind::Leaf { bucket } = &self.nodes[id.index()].kind {
                out.extend(bucket.iter().map(|(c, p)| (c.to_vec(), *p)));
            }
        }
        out
    }

    /// Check this partition's structural invariants; returns a list of
    /// human-readable violations (empty = healthy). Used by
    /// `DistSemTree::verify` and the test-suite.
    pub(crate) fn verify(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if self.nodes.is_empty() {
            violations.push("partition has no root node".to_string());
            return violations;
        }
        let reachable = self.reachable_nodes();
        let mut counted_points = 0usize;
        for &id in &reachable {
            match &self.nodes[id.index()].kind {
                PNodeKind::Leaf { bucket } => {
                    counted_points += bucket.len();
                    for (coords, _) in bucket {
                        if coords.len() != self.dims {
                            violations.push(format!(
                                "leaf {id:?} holds a {}-dim point in a {}-dim tree",
                                coords.len(),
                                self.dims
                            ));
                        }
                    }
                }
                PNodeKind::Routing {
                    left,
                    right,
                    split_dim,
                    split_val,
                } => {
                    if *split_dim >= self.dims {
                        violations.push(format!(
                            "routing {id:?} splits on dimension {split_dim} >= {}",
                            self.dims
                        ));
                    }
                    if !split_val.is_finite() {
                        violations.push(format!("routing {id:?} has non-finite Sv"));
                    }
                    for (child, is_left) in [(left, true), (right, false)] {
                        if let Child::Local(c) = child {
                            let node = &self.nodes[c.index()];
                            if node.depth != self.nodes[id.index()].depth + 1 {
                                violations.push(format!(
                                    "child {c:?} depth {} != parent {id:?} depth {} + 1",
                                    node.depth,
                                    self.nodes[id.index()].depth
                                ));
                            }
                            if node.parent != Some((id, is_left)) {
                                violations.push(format!(
                                    "child {c:?} parent backlink {:?} != ({id:?}, {is_left})",
                                    node.parent
                                ));
                            }
                        }
                    }
                }
            }
        }
        if counted_points != self.points {
            violations.push(format!(
                "point counter {} != {} points reachable in leaves",
                self.points, counted_points
            ));
        }
        violations
    }

    pub(crate) fn stats(&self) -> PartitionStats {
        let mut s = PartitionStats::default();
        for id in self.reachable_nodes() {
            match &self.nodes[id.index()].kind {
                PNodeKind::Leaf { bucket } => {
                    s.leaves += 1;
                    s.points += bucket.len();
                }
                PNodeKind::Routing { left, right, .. } => {
                    s.routing += 1;
                    let mut edge = false;
                    for child in [left, right] {
                        if let Child::Remote { partition, .. } = child {
                            edge = true;
                            s.remote_children.push(partition.0);
                        }
                    }
                    if edge {
                        s.edge_nodes += 1;
                    }
                }
            }
        }
        s.remote_children.sort_unstable();
        s
    }

    // ------------------------------------------------------------------
    // Snapshot images (semtree-wal)
    // ------------------------------------------------------------------

    /// Serialize the whole store — arena order, parents, remote links,
    /// point counter — into the codec-friendly [`StoreImage`] the WAL
    /// stores as a per-partition snapshot blob.
    pub(crate) fn to_image(&self) -> StoreImage {
        StoreImage {
            dims: self.dims,
            bucket_size: self.bucket_size,
            split_rule: split_rule_tag(self.split_rule),
            points: self.points,
            nodes: self
                .nodes
                .iter()
                .map(|node| NodeImage {
                    depth: node.depth,
                    parent: node.parent.map(|(p, is_left)| (p.0, is_left)),
                    kind: match &node.kind {
                        PNodeKind::Leaf { bucket } => NodeKindImage::Leaf {
                            bucket: bucket.iter().map(|(c, p)| (c.to_vec(), *p)).collect(),
                        },
                        PNodeKind::Routing {
                            split_dim,
                            split_val,
                            left,
                            right,
                        } => NodeKindImage::Routing {
                            split_dim: *split_dim,
                            split_val: *split_val,
                            left: ChildImage::from_child(*left),
                            right: ChildImage::from_child(*right),
                        },
                    },
                })
                .collect(),
        }
    }

    /// Rebuild a store from a snapshot image — the exact inverse of
    /// [`to_image`](PartitionStore::to_image).
    pub(crate) fn from_image(image: &StoreImage) -> Result<Self, String> {
        let split_rule =
            split_rule_from_tag(image.split_rule).map_err(|e| format!("snapshot image: {e}"))?;
        let nodes = image
            .nodes
            .iter()
            .map(|node| PNode {
                depth: node.depth,
                parent: node.parent.map(|(p, is_left)| (LocalNodeId(p), is_left)),
                kind: match &node.kind {
                    NodeKindImage::Leaf { bucket } => PNodeKind::Leaf {
                        bucket: bucket
                            .iter()
                            .map(|(c, p)| (c.clone().into_boxed_slice(), *p))
                            .collect(),
                    },
                    NodeKindImage::Routing {
                        split_dim,
                        split_val,
                        left,
                        right,
                    } => PNodeKind::Routing {
                        split_dim: *split_dim,
                        split_val: *split_val,
                        left: left.to_child(),
                        right: right.to_child(),
                    },
                },
            })
            .collect();
        Ok(PartitionStore {
            dims: image.dims,
            bucket_size: image.bucket_size,
            split_rule,
            nodes,
            points: image.points,
        })
    }
}

/// Codec-serializable twin of a [`PartitionStore`]: what a WAL snapshot
/// blob contains, and what the structural recovery tests compare
/// (`PartialEq` covers arena order, depths, parent backlinks, remote
/// links and the point counter — not just query answers).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct StoreImage {
    pub(crate) dims: usize,
    pub(crate) bucket_size: usize,
    /// Wire tag of the split rule (see `deploy::split_rule_tag`).
    pub(crate) split_rule: u8,
    pub(crate) points: usize,
    pub(crate) nodes: Vec<NodeImage>,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct NodeImage {
    pub(crate) kind: NodeKindImage,
    pub(crate) depth: u32,
    pub(crate) parent: Option<(u32, bool)>,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum NodeKindImage {
    Routing {
        split_dim: usize,
        split_val: f64,
        left: ChildImage,
        right: ChildImage,
    },
    Leaf {
        bucket: Vec<(Vec<f64>, u64)>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ChildImage {
    Local(u32),
    Remote { partition: u32, node: u32 },
}

impl ChildImage {
    fn from_child(child: Child) -> Self {
        match child {
            Child::Local(id) => ChildImage::Local(id.0),
            Child::Remote { partition, node } => ChildImage::Remote {
                partition: partition.0,
                node: node.0,
            },
        }
    }

    fn to_child(self) -> Child {
        match self {
            ChildImage::Local(id) => Child::Local(LocalNodeId(id)),
            ChildImage::Remote { partition, node } => Child::Remote {
                partition: ComputeNodeId(partition),
                node: LocalNodeId(node),
            },
        }
    }
}

impl Encode for StoreImage {
    fn encode(&self, out: &mut Vec<u8>) {
        self.dims.encode(out);
        self.bucket_size.encode(out);
        self.split_rule.encode(out);
        self.points.encode(out);
        self.nodes.encode(out);
    }
}

impl Decode for StoreImage {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(StoreImage {
            dims: usize::decode(buf)?,
            bucket_size: usize::decode(buf)?,
            split_rule: u8::decode(buf)?,
            points: usize::decode(buf)?,
            nodes: Vec::decode(buf)?,
        })
    }
}

impl Encode for NodeImage {
    fn encode(&self, out: &mut Vec<u8>) {
        self.kind.encode(out);
        self.depth.encode(out);
        self.parent.encode(out);
    }
}

impl Decode for NodeImage {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(NodeImage {
            kind: NodeKindImage::decode(buf)?,
            depth: u32::decode(buf)?,
            parent: Option::decode(buf)?,
        })
    }
}

impl Encode for NodeKindImage {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            NodeKindImage::Routing {
                split_dim,
                split_val,
                left,
                right,
            } => {
                out.push(0);
                split_dim.encode(out);
                split_val.encode(out);
                left.encode(out);
                right.encode(out);
            }
            NodeKindImage::Leaf { bucket } => {
                out.push(1);
                bucket.encode(out);
            }
        }
    }
}

impl Decode for NodeKindImage {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(NodeKindImage::Routing {
                split_dim: usize::decode(buf)?,
                split_val: f64::decode(buf)?,
                left: ChildImage::decode(buf)?,
                right: ChildImage::decode(buf)?,
            }),
            1 => Ok(NodeKindImage::Leaf {
                bucket: Vec::decode(buf)?,
            }),
            other => Err(DecodeError::new(format!("bad NodeKindImage tag {other}"))),
        }
    }
}

impl Encode for ChildImage {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ChildImage::Local(id) => {
                out.push(0);
                id.encode(out);
            }
            ChildImage::Remote { partition, node } => {
                out.push(1);
                partition.encode(out);
                node.encode(out);
            }
        }
    }
}

impl Decode for ChildImage {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(ChildImage::Local(u32::decode(buf)?)),
            1 => Ok(ChildImage::Remote {
                partition: u32::decode(buf)?,
                node: u32::decode(buf)?,
            }),
            other => Err(DecodeError::new(format!("bad ChildImage tag {other}"))),
        }
    }
}

/// Split-dimension/value selection shared with the sequential tree's
/// semantics: cycle by depth, step to another dimension when degenerate,
/// median value adjusted so both sides are non-empty.
pub(crate) fn choose_split(
    bucket: &[(Box<[f64]>, u64)],
    dims: usize,
    depth: u32,
    rule: SplitRule,
) -> Option<(usize, f64)> {
    let preferred = depth as usize % dims;
    for offset in 0..dims {
        let dim = (preferred + offset) % dims;
        let mut values: Vec<f64> = bucket.iter().map(|(c, _)| c[dim]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("coordinates are finite"));
        let (min, max) = (values[0], *values.last()?);
        if max == min {
            continue;
        }
        if rule == SplitRule::DegenerateMin {
            // Worst-case rule: peel only the minimum-valued points left.
            return Some((dim, min));
        }
        let mid = values[values.len() / 2];
        let val = if mid < max {
            mid
        } else {
            values.iter().rev().find(|&&v| v < max).copied()?
        };
        return Some((dim, val));
    }
    None
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A remote stub that panics: for tests whose partitions are
    /// self-contained.
    pub(crate) struct NoRemote;

    impl RemoteOps for NoRemote {
        fn insert(
            &self,
            _: ComputeNodeId,
            _: LocalNodeId,
            _: &[f64],
            _: u64,
        ) -> Result<(), ClusterError> {
            panic!("unexpected remote insert");
        }
        fn knn(
            &self,
            _: ComputeNodeId,
            _: LocalNodeId,
            _: &[f64],
            _: usize,
            _: Option<f64>,
        ) -> Result<Vec<(f64, u64)>, ClusterError> {
            panic!("unexpected remote knn");
        }
        fn range(
            &self,
            _: ComputeNodeId,
            _: LocalNodeId,
            _: &[f64],
            _: f64,
        ) -> Result<Vec<(f64, u64)>, ClusterError> {
            panic!("unexpected remote range");
        }
        fn range_parallel(
            &self,
            _: [(ComputeNodeId, LocalNodeId); 2],
            _: &[f64],
            _: f64,
        ) -> Result<[Vec<(f64, u64)>; 2], ClusterError> {
            panic!("unexpected remote range_parallel");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::NoRemote;
    use super::*;

    fn store(bucket_size: usize) -> PartitionStore {
        PartitionStore::new_leaf_with_rule(2, bucket_size, SplitRule::Cycle, Vec::new(), 0)
    }

    fn fill_grid(s: &mut PartitionStore, n: usize) {
        for i in 0..n {
            let p = [(i % 10) as f64, (i / 10) as f64];
            assert!(s.insert(LocalNodeId(0), &p, i as u64, &NoRemote).unwrap());
        }
    }

    #[test]
    fn local_insert_and_split() {
        let mut s = store(4);
        fill_grid(&mut s, 50);
        assert_eq!(s.points(), 50);
        let stats = s.stats();
        assert_eq!(stats.points, 50);
        assert!(stats.leaves > 1);
        assert_eq!(stats.edge_nodes, 0);
        assert!(stats.remote_children.is_empty());
    }

    #[test]
    fn knn_exact_vs_brute_force() {
        let mut s = store(4);
        fill_grid(&mut s, 100);
        let q = [3.2, 4.9];
        let mut state = KnnState::new(5, None);
        s.knn(LocalNodeId(0), &q, &mut state, &NoRemote).unwrap();
        let got = state.into_candidates();

        let mut brute: Vec<(f64, u64)> = (0..100u64)
            .map(|i| {
                let p = [(i % 10) as f64, (i / 10) as f64];
                (euclidean(&p, &q), i)
            })
            .collect();
        brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (g, b) in got.iter().zip(brute.iter().take(5)) {
            assert!((g.0 - b.0).abs() < 1e-9);
        }
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn range_exact_vs_brute_force() {
        let mut s = store(4);
        fill_grid(&mut s, 100);
        let q = [5.0, 5.0];
        let mut out = Vec::new();
        s.range(LocalNodeId(0), &q, 2.5, &mut out, &NoRemote)
            .unwrap();
        let brute = (0..100u64)
            .filter(|&i| {
                let p = [(i % 10) as f64, (i / 10) as f64];
                euclidean(&p, &q) <= 2.5
            })
            .count();
        assert_eq!(out.len(), brute);
    }

    #[test]
    fn knn_state_hint_prunes() {
        let mut st = KnnState::new(3, Some(1.0));
        st.offer(2.0, 1); // beyond the hint: dropped
        st.offer(0.5, 2);
        let c = st.into_candidates();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].1, 2);
    }

    #[test]
    fn knn_state_bound_combines_heap_and_hint() {
        let mut st = KnnState::new(2, Some(5.0));
        assert_eq!(st.bound(), Some(5.0)); // hint only
        st.offer(1.0, 1);
        st.offer(3.0, 2);
        assert_eq!(st.bound(), Some(3.0)); // full heap beats hint
        assert!(st.must_descend(2.9));
        assert!(!st.must_descend(3.0));
    }

    #[test]
    fn eviction_candidate_prefers_largest_nonroot_leaf() {
        let mut s = store(4);
        assert_eq!(s.eviction_candidate(), None); // root leaf only
        fill_grid(&mut s, 60);
        let cand = s.eviction_candidate().expect("leaves exist after splits");
        assert_ne!(cand.index(), 0);
        let before = s.points();
        let (bucket, depth) = s.detach_leaf(cand);
        assert!(!bucket.is_empty());
        assert!(depth > 0);
        assert_eq!(s.points(), before - bucket.len());
    }

    #[test]
    fn relink_makes_parent_an_edge_node() {
        let mut s = store(4);
        fill_grid(&mut s, 60);
        let cand = s.eviction_candidate().unwrap();
        let (bucket, _) = s.detach_leaf(cand);
        s.relink_to_partition(cand, ComputeNodeId(7), LocalNodeId(0));
        let stats = s.stats();
        assert_eq!(stats.edge_nodes, 1);
        assert_eq!(stats.remote_children, vec![7]);
        // The evicted points are gone from this partition.
        assert_eq!(stats.points, 60 - bucket.len());
    }

    #[test]
    fn restore_leaf_undoes_a_detach() {
        let mut s = store(4);
        fill_grid(&mut s, 60);
        let cand = s.eviction_candidate().unwrap();
        let before = s.points();
        let (bucket, _) = s.detach_leaf(cand);
        s.restore_leaf(cand, bucket);
        assert_eq!(s.points(), before);
        assert_eq!(s.verify(), Vec::<String>::new());
    }

    #[test]
    fn adopted_oversized_bucket_splits_on_arrival() {
        let bucket: Vec<(Box<[f64]>, u64)> = (0..20)
            .map(|i| (vec![i as f64, 0.0].into_boxed_slice(), i as u64))
            .collect();
        let s = PartitionStore::new_leaf_with_rule(2, 4, SplitRule::Cycle, bucket, 3);
        let stats = s.stats();
        assert_eq!(stats.points, 20);
        assert!(stats.leaves > 1, "adopted bucket must split");
    }

    #[test]
    fn remote_child_receives_forwarded_insert() {
        use std::cell::RefCell;
        struct Recorder(RefCell<Vec<u64>>);
        impl RemoteOps for Recorder {
            fn insert(
                &self,
                _: ComputeNodeId,
                _: LocalNodeId,
                _: &[f64],
                payload: u64,
            ) -> Result<(), ClusterError> {
                self.0.borrow_mut().push(payload);
                Ok(())
            }
            fn knn(
                &self,
                _: ComputeNodeId,
                _: LocalNodeId,
                _: &[f64],
                _: usize,
                _: Option<f64>,
            ) -> Result<Vec<(f64, u64)>, ClusterError> {
                Ok(vec![])
            }
            fn range(
                &self,
                _: ComputeNodeId,
                _: LocalNodeId,
                _: &[f64],
                _: f64,
            ) -> Result<Vec<(f64, u64)>, ClusterError> {
                Ok(vec![])
            }
            fn range_parallel(
                &self,
                _: [(ComputeNodeId, LocalNodeId); 2],
                _: &[f64],
                _: f64,
            ) -> Result<[Vec<(f64, u64)>; 2], ClusterError> {
                Ok([vec![], vec![]])
            }
        }

        // Hand-build: routing root, left local leaf, right remote.
        let mut s = store(4);
        let left = s.push_node(PNodeKind::Leaf { bucket: Vec::new() }, 1);
        s.nodes[0].kind = PNodeKind::Routing {
            split_dim: 0,
            split_val: 5.0,
            left: Child::Local(left),
            right: Child::Remote {
                partition: ComputeNodeId(3),
                node: LocalNodeId(0),
            },
        };
        s.set_parent(left, LocalNodeId(0), true);

        let rec = Recorder(RefCell::new(Vec::new()));
        assert!(s.insert(LocalNodeId(0), &[1.0, 0.0], 10, &rec).unwrap()); // local side
        assert!(!s.insert(LocalNodeId(0), &[9.0, 0.0], 11, &rec).unwrap()); // forwarded
        assert_eq!(*rec.0.borrow(), vec![11]);
        assert_eq!(s.points(), 1);
    }

    #[test]
    fn detach_root_panics_via_relink() {
        let mut s = store(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.relink_to_partition(LocalNodeId(0), ComputeNodeId(1), LocalNodeId(0));
        }));
        assert!(result.is_err());
    }
}
