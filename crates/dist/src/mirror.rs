//! Lock-free read mirror of a partition store.
//!
//! The partition actor owns a [`Mirror`]: a seqlock-versioned copy
//! (`semtree_kdtree::versioned`) of its [`PartitionStore`] maintained in
//! semantic lockstep — same navigation, same split rule, same global
//! depths — so the two trees are always shape-identical. Reads through
//! the mirror's [`ReadHandle`] are optimistic and lock-free: they run on
//! any thread (the coordinator's, or a batch worker's) without touching
//! the actor mailbox, retrying only when they race the actor mid-insert.
//!
//! The mirror exists only while the partition is **fully local**. The
//! first relink to a remote partition clears the `fully_local` flag and
//! maintenance stops for good — remote links never disappear, so there
//! is no way (and no need) to come back. Readers re-check the flag
//! *after* validating a read: the actor clears it (release) before
//! acknowledging any insert that the frozen mirror would miss, so a
//! validated read that still sees the flag set reflects every
//! acknowledged write.
//!
//! Traversal order here deliberately clones [`PartitionStore::knn`] and
//! [`PartitionStore::range`] — same stack discipline, same [`KnnState`],
//! same leaf iteration order — so a mirror answer is byte-identical to
//! the sequential store answer, ties included.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use semtree_kdtree::versioned::{ReadGuard, StdShim, TreeReader, TreeWriter, Txn, VersionedTree};
use semtree_kdtree::{ReadStats, SplitRule};

use crate::store::{
    choose_split, euclidean, Bucket, Child, KnnState, LocalNodeId, PNodeKind, PartitionStore,
};

/// Shared, lock-free read side of a [`Mirror`]. Clone the [`Arc`]
/// freely; reads are valid only while the partition stays fully local.
pub(crate) struct ReadHandle {
    reader: TreeReader<Bucket>,
    /// `true` while the mirror tracks the store. Cleared (release) by
    /// the actor before it acknowledges any write the mirror misses.
    fully_local: AtomicBool,
    dims: usize,
}

impl ReadHandle {
    pub(crate) fn is_active(&self) -> bool {
        self.fully_local.load(Ordering::Acquire)
    }

    /// Optimistic k-NN identical to the store path, or `None` when the
    /// mirror is (or became) inactive. Returns `(candidates, retries)`.
    pub(crate) fn knn(
        &self,
        point: &[f64],
        k: usize,
        hint: Option<f64>,
    ) -> Option<(Vec<(f64, u64)>, u64)> {
        if point.len() != self.dims || !self.is_active() {
            return None;
        }
        let (hits, stats): (Vec<(f64, u64)>, ReadStats) =
            self.reader.read(|guard| knn_attempt(guard, point, k, hint));
        // Re-check after validation: a relink (or a maintenance failure)
        // may have frozen the mirror while this read was in flight, in
        // which case acknowledged writes could be missing from it.
        if !self.is_active() {
            return None;
        }
        Some((hits, stats.retries))
    }

    /// Optimistic range search identical to the store path, or `None`
    /// when the mirror is inactive.
    pub(crate) fn range(&self, point: &[f64], radius: f64) -> Option<(Vec<(f64, u64)>, u64)> {
        if point.len() != self.dims || radius < 0.0 || !self.is_active() {
            return None;
        }
        let (hits, stats): (Vec<(f64, u64)>, ReadStats) = self
            .reader
            .read(|guard| range_attempt(guard, point, radius));
        if !self.is_active() {
            return None;
        }
        Some((hits, stats.retries))
    }
}

/// Actor-owned write side: one writer per partition, mutated only from
/// the actor's (single-threaded) message loop.
pub(crate) struct Mirror {
    writer: TreeWriter<Bucket>,
    handle: Arc<ReadHandle>,
    dims: usize,
    bucket_size: usize,
    split_rule: SplitRule,
}

impl Mirror {
    /// Build a mirror of `store` (inactive if the store already has
    /// remote links).
    pub(crate) fn from_store(
        store: &PartitionStore,
        dims: usize,
        bucket_size: usize,
        split_rule: SplitRule,
    ) -> Self {
        let (writer, reader) = VersionedTree::channel(Vec::new());
        let mut mirror = Mirror {
            writer,
            handle: Arc::new(ReadHandle {
                reader,
                fully_local: AtomicBool::new(false),
                dims,
            }),
            dims,
            bucket_size,
            split_rule,
        };
        mirror.rebuild(store);
        mirror
    }

    pub(crate) fn handle(&self) -> Arc<ReadHandle> {
        Arc::clone(&self.handle)
    }

    /// Freeze the mirror: reads fall back to the actor path forever.
    /// Called on the first remote relink, or if maintenance ever fails.
    pub(crate) fn deactivate(&self) {
        self.handle.fully_local.store(false, Ordering::Release);
    }

    /// Re-copy the whole store into a fresh mirror snapshot (one writer
    /// transaction). Used after bulk store replacement ([`Req::AdoptLeaf`],
    /// recovery) — inserts are maintained incrementally instead.
    ///
    /// [`Req::AdoptLeaf`]: crate::proto::Req::AdoptLeaf
    pub(crate) fn rebuild(&mut self, store: &PartitionStore) {
        if store.nodes.is_empty() || store.has_remote_children() {
            self.deactivate();
            return;
        }
        let built = {
            let mut txn = self.writer.begin();
            match copy_subtree(&mut txn, store, LocalNodeId(0)) {
                Some(root) => {
                    txn.set_root(root);
                    true
                }
                None => false,
            }
        };
        self.handle.fully_local.store(built, Ordering::Release);
    }

    /// Mirror one point insertion that the store resolved locally:
    /// navigate with the store's rule, re-bucket, split with the
    /// store's `choose_split` at the same global depths. Shape-identity
    /// with the store is preserved by construction. No-op when frozen;
    /// freezes the mirror (and returns `false`) if the arena is
    /// exhausted.
    pub(crate) fn insert(&mut self, point: &[f64], payload: u64) -> bool {
        if !self.handle.is_active() {
            return true;
        }
        if self.insert_inner(point, payload) {
            true
        } else {
            self.deactivate();
            false
        }
    }

    fn insert_inner(&mut self, point: &[f64], payload: u64) -> bool {
        if point.len() != self.dims {
            return false;
        }
        let (dims, bucket_size, split_rule) = (self.dims, self.bucket_size, self.split_rule);
        let mut txn = self.writer.begin();
        // Navigate to the owning leaf, remembering the parent edge.
        let mut idx = txn.root();
        let mut parent: Option<(u32, bool)> = None;
        let (depth, mut bucket) = loop {
            let Some(node) = txn.node(idx) else {
                return false;
            };
            if let Some(r) = node.as_routing() {
                let left_side = point[r.split_dim] <= r.split_val;
                parent = Some((idx, left_side));
                idx = if left_side { r.left } else { r.right };
            } else {
                let Some(bucket) = node.as_leaf() else {
                    return false;
                };
                break (node.depth(), bucket.clone());
            }
        };
        bucket.push((point.into(), payload));
        let Some(new_idx) = build_bucket(&mut txn, dims, bucket_size, split_rule, bucket, depth)
        else {
            return false;
        };
        match parent {
            Some((p, left_side)) => txn.set_child(p, left_side, new_idx),
            None => {
                txn.set_root(new_idx);
                true
            }
        }
    }
}

/// Publish `bucket` as a subtree rooted at global depth `depth`,
/// splitting exactly like [`PartitionStore::maybe_split`]: split while
/// over `bucket_size` and `choose_split` finds a plane, `<=` goes left,
/// children one global level deeper.
fn build_bucket(
    txn: &mut Txn<'_, Bucket>,
    dims: usize,
    bucket_size: usize,
    split_rule: SplitRule,
    bucket: Bucket,
    depth: u32,
) -> Option<u32> {
    if bucket.len() <= bucket_size {
        return txn.alloc_leaf(depth, bucket);
    }
    let Some((split_dim, split_val)) = choose_split(&bucket, dims, depth, split_rule) else {
        // Degenerate bucket the store also leaves over-full.
        return txn.alloc_leaf(depth, bucket);
    };
    let (lb, rb): (Bucket, Bucket) = bucket
        .into_iter()
        .partition(|(c, _)| c[split_dim] <= split_val);
    let left = build_bucket(txn, dims, bucket_size, split_rule, lb, depth + 1)?;
    let right = build_bucket(txn, dims, bucket_size, split_rule, rb, depth + 1)?;
    txn.alloc_routing(depth, split_dim, split_val, left, right)
}

/// Copy the store subtree under `node` into the mirror arena. `None`
/// when a remote link is found or the arena is exhausted.
fn copy_subtree(
    txn: &mut Txn<'_, Bucket>,
    store: &PartitionStore,
    node: LocalNodeId,
) -> Option<u32> {
    let pnode = store.nodes.get(node.index())?;
    match &pnode.kind {
        PNodeKind::Leaf { bucket } => txn.alloc_leaf(pnode.depth, bucket.clone()),
        PNodeKind::Routing {
            split_dim,
            split_val,
            left,
            right,
        } => {
            let (Child::Local(l), Child::Local(r)) = (left, right) else {
                return None;
            };
            let li = copy_subtree(txn, store, *l)?;
            let ri = copy_subtree(txn, store, *r)?;
            txn.alloc_routing(pnode.depth, *split_dim, *split_val, li, ri)
        }
    }
}

/// One optimistic k-NN attempt — [`PartitionStore::knn`] verbatim, with
/// mirror indices for [`Child::Local`] and no remote arm. `None` on any
/// unpublished slot (writer race).
fn knn_attempt(
    guard: &ReadGuard<'_, Bucket, StdShim>,
    point: &[f64],
    k: usize,
    hint: Option<f64>,
) -> Option<Vec<(f64, u64)>> {
    enum Task {
        Visit(u32),
        CheckFar { far: u32, plane_dist: f64 },
    }
    let mut state = KnnState::new(k, hint);
    let mut stack = vec![Task::Visit(guard.root())];
    while let Some(task) = stack.pop() {
        let idx = match task {
            Task::CheckFar { far, plane_dist } => {
                if state.must_descend(plane_dist) {
                    far
                } else {
                    continue;
                }
            }
            Task::Visit(idx) => idx,
        };
        let node = guard.node(idx)?;
        if let Some(r) = node.as_routing() {
            let delta = point[r.split_dim] - r.split_val;
            let (near, far) = if delta <= 0.0 {
                (r.left, r.right)
            } else {
                (r.right, r.left)
            };
            stack.push(Task::CheckFar {
                far,
                plane_dist: delta.abs(),
            });
            stack.push(Task::Visit(near));
        } else {
            let bucket = node.as_leaf()?;
            for (coords, payload) in bucket {
                state.offer(euclidean(coords, point), *payload);
            }
        }
    }
    Some(state.into_candidates())
}

/// One optimistic range attempt — [`PartitionStore::range`] verbatim
/// (left pushed before right under the overlap rule, preserving the
/// store's emission order). `None` on any unpublished slot.
fn range_attempt(
    guard: &ReadGuard<'_, Bucket, StdShim>,
    point: &[f64],
    radius: f64,
) -> Option<Vec<(f64, u64)>> {
    let mut out = Vec::new();
    let mut stack = vec![guard.root()];
    while let Some(idx) = stack.pop() {
        let node = guard.node(idx)?;
        if let Some(r) = node.as_routing() {
            let delta = point[r.split_dim] - r.split_val;
            if delta.abs() <= radius {
                stack.push(r.left);
                stack.push(r.right);
            } else if delta <= 0.0 {
                stack.push(r.left);
            } else {
                stack.push(r.right);
            }
        } else {
            let bucket = node.as_leaf()?;
            for (coords, payload) in bucket {
                let d = euclidean(coords, point);
                if d <= radius {
                    out.push((d, *payload));
                }
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::testutil::NoRemote;

    fn grid_store(points: u32) -> PartitionStore {
        let mut store = PartitionStore::new_leaf_with_rule(2, 4, SplitRule::Cycle, Vec::new(), 0);
        for i in 0..points {
            let p = [f64::from(i % 10), f64::from(i / 10)];
            store
                .insert(LocalNodeId(0), &p, u64::from(i), &NoRemote)
                .expect("local insert");
        }
        store
    }

    #[test]
    fn mirror_knn_matches_store_byte_for_byte() {
        let store = grid_store(60);
        let mirror = Mirror::from_store(&store, 2, 4, SplitRule::Cycle);
        let handle = mirror.handle();
        assert!(handle.is_active());
        for q in [[3.1, 4.2], [0.0, 0.0], [9.5, 5.5], [4.0, 4.0]] {
            for k in [1, 3, 8] {
                let mut state = KnnState::new(k, None);
                store
                    .knn(LocalNodeId(0), &q, &mut state, &NoRemote)
                    .expect("store knn");
                let expect = state.into_candidates();
                let (got, _) = handle.knn(&q, k, None).expect("mirror active");
                assert_eq!(got, expect, "q={q:?} k={k}");
            }
        }
    }

    #[test]
    fn incremental_insert_tracks_the_store() {
        let mut store = PartitionStore::new_leaf_with_rule(2, 4, SplitRule::Cycle, Vec::new(), 0);
        let mut mirror = Mirror::from_store(&store, 2, 4, SplitRule::Cycle);
        for i in 0..80u32 {
            let p = [f64::from(i % 9), f64::from(i / 9)];
            store
                .insert(LocalNodeId(0), &p, u64::from(i), &NoRemote)
                .expect("local insert");
            assert!(mirror.insert(&p, u64::from(i)));
        }
        let handle = mirror.handle();
        for q in [[2.5, 3.5], [8.0, 8.0], [0.1, 7.9]] {
            let mut state = KnnState::new(5, None);
            store
                .knn(LocalNodeId(0), &q, &mut state, &NoRemote)
                .expect("store knn");
            assert_eq!(
                handle.knn(&q, 5, None).expect("mirror active").0,
                state.into_candidates()
            );
            let mut expect = Vec::new();
            store
                .range(LocalNodeId(0), &q, 2.0, &mut expect, &NoRemote)
                .expect("store range");
            assert_eq!(handle.range(&q, 2.0).expect("mirror active").0, expect);
        }
    }

    #[test]
    fn deactivation_is_permanent_and_visible() {
        let store = grid_store(20);
        let mut mirror = Mirror::from_store(&store, 2, 4, SplitRule::Cycle);
        let handle = mirror.handle();
        assert!(handle.knn(&[1.0, 1.0], 2, None).is_some());
        mirror.deactivate();
        assert!(handle.knn(&[1.0, 1.0], 2, None).is_none());
        assert!(handle.range(&[1.0, 1.0], 3.0).is_none());
        // Maintenance becomes a no-op but does not report failure.
        assert!(mirror.insert(&[5.0, 5.0], 99));
    }

    #[test]
    fn dimension_mismatch_is_rejected_not_panicking() {
        let store = grid_store(10);
        let mirror = Mirror::from_store(&store, 2, 4, SplitRule::Cycle);
        assert!(mirror.handle().knn(&[1.0, 2.0, 3.0], 2, None).is_none());
        assert!(mirror.handle().range(&[1.0], 1.0).is_none());
    }
}
