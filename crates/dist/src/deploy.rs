//! Multi-process deployment over `semtree-net`: coordinator/worker
//! bootstrap, the wire form of the shared configuration, and the
//! client-port protocol.
//!
//! A deployment is one **coordinator** process (hosts the root partition
//! and answers clients) plus any number of **worker** processes (host
//! the data partitions spawned by fan-out construction and
//! build-partition). The coordinator ships its [`DistConfig`] to every
//! joining worker inside the membership handshake, so all processes
//! build identical partition state from the same parameters.
//!
//! Partition budgeting across processes is approximate: each process
//! tracks its own count against `max_partitions`, so a deployment of
//! `P` processes can host up to `P × max_partitions` partitions in the
//! worst case. The budget is a resource guard, not a correctness
//! invariant — the paper's resource condition is per-node anyway.

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use semtree_cluster::{
    Cluster, ClusterError, ComputeNodeId, CostModel, Transport, MAX_REACTOR_SHARDS,
    READ_RETRY_BUCKETS,
};
use semtree_kdtree::SplitRule;
use semtree_net::{
    decode_exact, dial_with_timeout, encode_frame_v2, read_frame, split_frame_v2, write_frame,
    Decode, DecodeError, Encode, NetFabric,
};
use semtree_wal::{Wal, WalError, WalOptions};

use crate::actor::PartitionActor;
use crate::proto::{PartitionStats, Req, Resp};
use crate::recovery::{replay_stores, WalHandle};
use crate::store::PartitionStore;
use crate::tree::{CapacityPolicy, DistConfig, DistSemTree, Query, QueryOutcome, SharedConfig};

/// The [`NetFabric`] instantiated for the SemTree partition protocol.
pub type DistFabric = NetFabric<Req, Resp>;

/// Anything that can go wrong while bootstrapping a deployment.
#[derive(Debug)]
pub enum DeployError {
    /// Socket-level failure.
    Io(io::Error),
    /// The coordinator's config blob did not decode.
    Decode(DecodeError),
    /// The configuration cannot be deployed (e.g. a dynamic capacity
    /// policy, which cannot cross the wire).
    Config(String),
    /// A cluster operation failed.
    Cluster(ClusterError),
    /// The write-ahead log could not be created, appended, or replayed.
    Wal(WalError),
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::Io(e) => write!(f, "i/o: {e}"),
            DeployError::Decode(e) => write!(f, "config decode: {e}"),
            DeployError::Config(msg) => write!(f, "config: {msg}"),
            DeployError::Cluster(e) => write!(f, "cluster: {e}"),
            DeployError::Wal(e) => write!(f, "wal: {e}"),
        }
    }
}

impl std::error::Error for DeployError {}

impl From<io::Error> for DeployError {
    fn from(e: io::Error) -> Self {
        DeployError::Io(e)
    }
}
impl From<DecodeError> for DeployError {
    fn from(e: DecodeError) -> Self {
        DeployError::Decode(e)
    }
}
impl From<ClusterError> for DeployError {
    fn from(e: ClusterError) -> Self {
        DeployError::Cluster(e)
    }
}
impl From<WalError> for DeployError {
    fn from(e: WalError) -> Self {
        DeployError::Wal(e)
    }
}

// ----------------------------------------------------------------------
// The deployable subset of DistConfig, and its wire form
// ----------------------------------------------------------------------

/// The subset of [`DistConfig`] that can cross the wire. A
/// [`CapacityPolicy::Dynamic`] closure cannot be serialised, so only
/// `Unlimited` (`max_points: None`) and `MaxPoints` survive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetDeployConfig {
    /// Point dimensionality.
    pub dims: usize,
    /// Leaf bucket capacity `Bs`.
    pub bucket_size: usize,
    /// Per-process cap on partitions.
    pub max_partitions: usize,
    /// Leaf split rule.
    pub split_rule: SplitRule,
    /// Per-partition point cap, `None` = unlimited.
    pub max_points: Option<u64>,
}

impl NetDeployConfig {
    /// Extract the deployable parameters from a [`DistConfig`].
    ///
    /// # Errors
    /// Fails for [`CapacityPolicy::Dynamic`] — closures cannot cross
    /// process boundaries.
    pub fn from_config(config: &DistConfig) -> Result<Self, DeployError> {
        let max_points = match &config.capacity {
            CapacityPolicy::Unlimited => None,
            CapacityPolicy::MaxPoints(n) => Some(*n as u64),
            CapacityPolicy::Dynamic(_) => {
                return Err(DeployError::Config(
                    "a dynamic capacity policy cannot be deployed over the network; \
                     use CapacityPolicy::MaxPoints or Unlimited"
                        .into(),
                ))
            }
        };
        Ok(NetDeployConfig {
            dims: config.dims,
            bucket_size: config.bucket_size,
            max_partitions: config.max_partitions,
            split_rule: config.split_rule,
            max_points,
        })
    }

    /// Rebuild the [`DistConfig`] on the receiving process.
    #[must_use]
    pub fn to_config(&self) -> DistConfig {
        let capacity = match self.max_points {
            None => CapacityPolicy::Unlimited,
            Some(n) => CapacityPolicy::MaxPoints(n as usize),
        };
        DistConfig::new(self.dims)
            .with_bucket_size(self.bucket_size)
            .with_max_partitions(self.max_partitions)
            .with_split_rule(self.split_rule)
            .with_capacity(capacity)
    }
}

pub(crate) fn split_rule_tag(rule: SplitRule) -> u8 {
    match rule {
        SplitRule::Cycle => 0,
        SplitRule::WidestSpread => 1,
        SplitRule::DegenerateMin => 2,
    }
}

pub(crate) fn split_rule_from_tag(tag: u8) -> Result<SplitRule, DecodeError> {
    match tag {
        0 => Ok(SplitRule::Cycle),
        1 => Ok(SplitRule::WidestSpread),
        2 => Ok(SplitRule::DegenerateMin),
        other => Err(DecodeError::new(format!("bad SplitRule tag {other}"))),
    }
}

impl Encode for NetDeployConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.dims.encode(out);
        self.bucket_size.encode(out);
        self.max_partitions.encode(out);
        split_rule_tag(self.split_rule).encode(out);
        self.max_points.encode(out);
    }
}

impl Decode for NetDeployConfig {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(NetDeployConfig {
            dims: usize::decode(buf)?,
            bucket_size: usize::decode(buf)?,
            max_partitions: usize::decode(buf)?,
            split_rule: split_rule_from_tag(u8::decode(buf)?)?,
            max_points: Option::decode(buf)?,
        })
    }
}

// ----------------------------------------------------------------------
// Coordinator / worker bootstrap
// ----------------------------------------------------------------------

/// Start the coordinator's cluster fabric: bind `listen`, embed the
/// deployable form of `config` in the membership handshake, and accept
/// workers.
///
/// # Errors
/// Fails when the config cannot be deployed or the listener cannot bind.
pub fn serve_cluster(
    listen: SocketAddr,
    config: &DistConfig,
    cost: CostModel,
) -> Result<Arc<DistFabric>, DeployError> {
    let blob = NetDeployConfig::from_config(config)?.to_bytes();
    Ok(DistFabric::coordinator(listen, blob, cost)?)
}

/// Build the distributed tree over an established coordinator fabric:
/// the root partition lives on the coordinator, data partitions are
/// placed round-robin on the joined workers.
///
/// # Errors
/// Fails when a data partition cannot be spawned or seeded.
pub fn build_tree(
    fabric: &Arc<DistFabric>,
    config: DistConfig,
    cost: CostModel,
    partitions: usize,
    sample: &[Vec<f64>],
) -> Result<DistSemTree, ClusterError> {
    DistSemTree::over_transport(
        fabric.local_fabric(),
        Arc::clone(fabric) as Arc<dyn Transport<Req, Resp>>,
        config,
        cost,
        partitions,
        sample,
    )
}

/// [`build_tree`] with durability: every mutation of the coordinator's
/// partitions is written ahead to a WAL under `wal_dir`, and their state
/// is periodically snapshotted there.
///
/// The coordinator owns the routing tree and the cluster membership, so
/// *restarting* it is not supported — `wal_dir` must not already hold a
/// log. (Worker restarts are the supported crash-recovery path; see
/// [`join_cluster_durable`].)
///
/// # Errors
/// Fails when the config cannot be deployed, `wal_dir` already holds a
/// WAL, or a data partition cannot be spawned or seeded.
pub fn build_tree_durable(
    fabric: &Arc<DistFabric>,
    config: DistConfig,
    cost: CostModel,
    partitions: usize,
    sample: &[Vec<f64>],
    wal_dir: &Path,
) -> Result<DistSemTree, DeployError> {
    if Wal::exists(wal_dir) {
        return Err(DeployError::Config(format!(
            "{} already holds a write-ahead log; coordinator restart is not \
             supported — point --wal-dir at a fresh directory",
            wal_dir.display()
        )));
    }
    let blob = NetDeployConfig::from_config(&config)?.to_bytes();
    let wal = Wal::create(wal_dir, 0, &blob, WalOptions::default())?;
    Ok(DistSemTree::over_transport_with_wal(
        fabric.local_fabric(),
        Arc::clone(fabric) as Arc<dyn Transport<Req, Resp>>,
        config,
        cost,
        partitions,
        sample,
        Some(WalHandle::new(wal)),
    )?)
}

/// [`build_tree_durable`] without the network: the whole deployment
/// runs on the in-process simulated cluster, but every partition
/// mutation still goes through a real WAL under `wal_dir`. This is what
/// the recovery benchmark and offline durability tests drive — the
/// on-disk artifacts are byte-compatible with a networked worker's.
///
/// `options` selects the on-disk format: the default writes columnar
/// snapshots and compacted segments, `columnar: false` reproduces the
/// legacy verbatim layout byte-for-byte.
///
/// # Errors
/// Fails when the config cannot be deployed, `wal_dir` already holds a
/// WAL, or a data partition cannot be spawned or seeded.
pub fn build_local_durable(
    config: DistConfig,
    cost: CostModel,
    partitions: usize,
    sample: &[Vec<f64>],
    wal_dir: &Path,
    options: WalOptions,
) -> Result<DistSemTree, DeployError> {
    if Wal::exists(wal_dir) {
        return Err(DeployError::Config(format!(
            "{} already holds a write-ahead log; point it at a fresh directory",
            wal_dir.display()
        )));
    }
    let blob = NetDeployConfig::from_config(&config)?.to_bytes();
    let wal = Wal::create(wal_dir, 0, &blob, options)?;
    Ok(DistSemTree::build_on_with_wal(
        Cluster::new(cost),
        config,
        cost,
        partitions,
        sample,
        Some(WalHandle::new(wal)),
    )?)
}

/// A joined worker process: hosts partitions on request until the
/// coordinator shuts the deployment down.
pub struct WorkerHandle {
    fabric: Arc<DistFabric>,
    config: DistConfig,
    recovered: Vec<u32>,
}

/// Join a deployment as a worker: dial the coordinator, decode the
/// shipped configuration, and install the partition factory so
/// coordinator-initiated spawns land here.
///
/// # Errors
/// Fails when the coordinator is unreachable or its config is corrupt.
pub fn join_cluster(
    coordinator: SocketAddr,
    cost: CostModel,
    timeout: Duration,
) -> Result<WorkerHandle, DeployError> {
    let (fabric, blob) = DistFabric::join(coordinator, cost, timeout)?;
    let net_config: NetDeployConfig = decode_exact(&blob)?;
    let config = net_config.to_config();
    let shared = SharedConfig::new(&config);
    shared.set_metrics(fabric.local_fabric().metrics_handle());
    fabric.local_fabric().set_node_factory(Box::new(move || {
        Box::new(PartitionActor::fresh(Arc::clone(&shared)))
    }));
    Ok(WorkerHandle {
        fabric,
        config,
        recovered: Vec::new(),
    })
}

/// [`join_cluster`] with durability: partition mutations are written
/// ahead to a WAL under `wal_dir`, and if that directory already holds a
/// log from a previous run, the worker **recovers** — it replays
/// snapshot + tail into the exact partition stores it hosted before the
/// crash, rejoins the coordinator under its old process index, and
/// resumes serving its old routes.
///
/// Recovery re-spawns partitions in ascending local index so every
/// recovered partition keeps its pre-crash [`ComputeNodeId`]; gaps
/// (indices spawned before the crash but never seeded) are filled with
/// empty placeholder partitions. Each recovered partition is then
/// re-snapshotted and the log compacted, so the next restart replays a
/// short tail.
///
/// # Errors
/// Fails when the coordinator is unreachable, refuses the rejoin, or the
/// WAL is corrupt or does not replay cleanly.
pub fn join_cluster_durable(
    coordinator: SocketAddr,
    cost: CostModel,
    timeout: Duration,
    wal_dir: &Path,
) -> Result<WorkerHandle, DeployError> {
    if !Wal::exists(wal_dir) {
        // First boot: join fresh, then persist the coordinator's config
        // blob in the manifest so recovery can rebuild stores without it.
        let (fabric, blob) = DistFabric::join(coordinator, cost, timeout)?;
        let net_config: NetDeployConfig = decode_exact(&blob)?;
        let config = net_config.to_config();
        let wal = Wal::create(
            wal_dir,
            fabric.process_index(),
            &blob,
            WalOptions::default(),
        )?;
        let shared = SharedConfig::new_with_wal(&config, Some(WalHandle::new(wal)));
        shared.set_metrics(fabric.local_fabric().metrics_handle());
        let factory_shared = Arc::clone(&shared);
        fabric.local_fabric().set_node_factory(Box::new(move || {
            Box::new(PartitionActor::fresh(Arc::clone(&factory_shared)))
        }));
        return Ok(WorkerHandle {
            fabric,
            config,
            recovered: Vec::new(),
        });
    }

    // Restart: replay the log into partition stores *before* touching the
    // network, so a corrupt WAL fails fast without a half-joined worker.
    let (wal, state) = Wal::resume(wal_dir, WalOptions::default())?;
    let net_config: NetDeployConfig = decode_exact(&state.config)?;
    let config = net_config.to_config();
    let mut stores: BTreeMap<u32, PartitionStore> = replay_stores(&state)
        .map_err(DeployError::Config)?
        .into_iter()
        .collect();
    for &partition in stores.keys() {
        let owner = ComputeNodeId(partition).process();
        if owner != state.process_index {
            return Err(DeployError::Config(format!(
                "wal records partition {partition} owned by process {owner}, \
                 but the log belongs to process {}",
                state.process_index
            )));
        }
    }
    let recovered: Vec<u32> = stores.keys().copied().collect();

    let fabric = DistFabric::rejoin(coordinator, cost, timeout, state.process_index, &recovered)?;
    let handle = WalHandle::new(wal);
    let shared = SharedConfig::new_with_wal(&config, Some(Arc::clone(&handle)));
    shared.set_metrics(fabric.local_fabric().metrics_handle());

    // Re-spawn in ascending local index: the local fabric assigns indices
    // sequentially, so this reproduces every pre-crash partition id.
    // Placeholders fill indices the crash left without replayable state.
    let local = fabric.local_fabric();
    let top = stores
        .keys()
        .map(|&p| ComputeNodeId(p).local_index())
        .max()
        .unwrap_or(0);
    let mut images = Vec::new();
    for local_index in 0..=top {
        let expected = ComputeNodeId::from_parts(state.process_index, local_index as u32);
        let actor = match stores.remove(&expected.0) {
            Some(store) => {
                images.push((expected, store.to_image()));
                shared.try_reserve_partition();
                PartitionActor::with_store(store, Arc::clone(&shared))
            }
            None => PartitionActor::fresh(Arc::clone(&shared)),
        };
        let spawned = local.spawn_handler(Box::new(actor))?;
        if spawned != expected {
            return Err(DeployError::Config(format!(
                "recovery re-spawn produced node {} where the log expects {} \
                 — was the fabric already hosting nodes?",
                spawned.0, expected.0
            )));
        }
    }
    let factory_shared = Arc::clone(&shared);
    local.set_node_factory(Box::new(move || {
        Box::new(PartitionActor::fresh(Arc::clone(&factory_shared)))
    }));

    // Fold the replayed history into fresh snapshots and drop the
    // segments they supersede: the next restart replays almost nothing.
    for (partition, image) in images {
        handle.snapshot_image(partition, &image)?;
    }
    handle.compact()?;

    Ok(WorkerHandle {
        fabric,
        config,
        recovered,
    })
}

impl WorkerHandle {
    /// This worker's assigned process index (≥ 1).
    #[must_use]
    pub fn process_index(&self) -> u32 {
        self.fabric.process_index()
    }

    /// The address this worker accepts mesh connections on.
    #[must_use]
    pub fn listen_addr(&self) -> SocketAddr {
        self.fabric.listen_addr()
    }

    /// The configuration the coordinator shipped.
    #[must_use]
    pub fn config(&self) -> &DistConfig {
        &self.config
    }

    /// The underlying fabric (metrics, node counts).
    #[must_use]
    pub fn fabric(&self) -> Arc<DistFabric> {
        Arc::clone(&self.fabric)
    }

    /// Raw ids of the partitions crash recovery rebuilt from the WAL
    /// (empty on a fresh join).
    #[must_use]
    pub fn recovered_partitions(&self) -> &[u32] {
        &self.recovered
    }

    /// Block until the coordinator broadcasts shutdown, then stop the
    /// locally hosted partitions.
    pub fn run_until_shutdown(self) {
        self.fabric.wait_for_shutdown();
        self.fabric.shutdown();
    }
}

// ----------------------------------------------------------------------
// Client-port protocol
// ----------------------------------------------------------------------

/// A request on the coordinator's client port.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientReq {
    /// Insert one point.
    Insert {
        /// Query-space coordinates.
        point: Vec<f64>,
        /// Opaque payload.
        payload: u64,
    },
    /// k-nearest query.
    Knn {
        /// Query point.
        point: Vec<f64>,
        /// Result count.
        k: usize,
    },
    /// Range query (inclusive radius).
    Range {
        /// Query point.
        point: Vec<f64>,
        /// Radius.
        radius: f64,
    },
    /// Per-partition statistics, root first.
    Stats,
    /// Structural invariants + point conservation.
    Verify,
    /// Interconnect metrics (messages, bytes, spawns).
    Metrics,
    /// Tear the whole deployment down.
    Shutdown,
    /// Batched k-nearest query: all of `points` answered in one round
    /// trip, fanned out over the serving partitions' worker pools.
    KnnBatch {
        /// Query points.
        points: Vec<Vec<f64>>,
        /// Result count per query.
        k: usize,
    },
}

/// The coordinator's answer to a [`ClientReq`].
#[derive(Debug, Clone, PartialEq)]
pub enum ClientResp {
    /// Acknowledgement (insert, shutdown).
    Done,
    /// `(distance, payload)` pairs, closest first.
    Neighbors(Vec<(f64, u64)>),
    /// `(partition id, stats)` pairs, root first.
    Stats(Vec<(u32, PartitionStats)>),
    /// Invariant violations (empty = healthy).
    Violations(Vec<String>),
    /// Interconnect counters.
    Metrics {
        /// Requests delivered.
        messages: u64,
        /// Bytes carried (exact encoded frame bytes under TCP).
        bytes: u64,
        /// Response payload bytes travelling back to callers.
        response_bytes: u64,
        /// Compute nodes spawned.
        spawned_nodes: u64,
        /// Client requests with recorded end-to-end latency.
        latency_count: u64,
        /// Median request latency (nanoseconds, conservative bucket floor).
        p50_nanos: u64,
        /// 99th-percentile request latency (nanoseconds).
        p99_nanos: u64,
        /// 99.9th-percentile request latency (nanoseconds).
        p999_nanos: u64,
        /// Total writer-race retries across optimistic lock-free reads.
        reads_retried: u64,
        /// Optimistic reads bucketed by retry count
        /// (see [`semtree_cluster::read_retry_bucket_index`]).
        read_retries: [u64; READ_RETRY_BUCKETS],
        /// Reactor shards serving the client port (0 = no reactor);
        /// only the first `reactor_shards` entries of the shard arrays
        /// are live.
        reactor_shards: u64,
        /// Requests completed, by owning reactor shard (boxed so the
        /// rarely-built metrics reply doesn't inflate every hot
        /// `ClientResp` moved through the serving path).
        shard_served: Box<[u64; MAX_REACTOR_SHARDS]>,
        /// Requests shed at admission, by owning reactor shard.
        shard_shed: Box<[u64; MAX_REACTOR_SHARDS]>,
    },
    /// The request failed.
    Error(String),
    /// One neighbor list per query of a [`ClientReq::KnnBatch`], in
    /// query order, each closest first.
    NeighborBatches(Vec<Vec<(f64, u64)>>),
    /// The serving fabric's global request queue is full; retry later.
    /// The request was **not** executed.
    Overloaded,
}

impl Encode for ClientReq {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ClientReq::Insert { point, payload } => {
                out.push(0);
                point.encode(out);
                payload.encode(out);
            }
            ClientReq::Knn { point, k } => {
                out.push(1);
                point.encode(out);
                k.encode(out);
            }
            ClientReq::Range { point, radius } => {
                out.push(2);
                point.encode(out);
                radius.encode(out);
            }
            ClientReq::Stats => out.push(3),
            ClientReq::Verify => out.push(4),
            ClientReq::Metrics => out.push(5),
            ClientReq::Shutdown => out.push(6),
            ClientReq::KnnBatch { points, k } => {
                out.push(7);
                points.encode(out);
                k.encode(out);
            }
        }
    }
}

impl Decode for ClientReq {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(ClientReq::Insert {
                point: Vec::decode(buf)?,
                payload: u64::decode(buf)?,
            }),
            1 => Ok(ClientReq::Knn {
                point: Vec::decode(buf)?,
                k: usize::decode(buf)?,
            }),
            2 => Ok(ClientReq::Range {
                point: Vec::decode(buf)?,
                radius: f64::decode(buf)?,
            }),
            3 => Ok(ClientReq::Stats),
            4 => Ok(ClientReq::Verify),
            5 => Ok(ClientReq::Metrics),
            6 => Ok(ClientReq::Shutdown),
            7 => Ok(ClientReq::KnnBatch {
                points: Vec::decode(buf)?,
                k: usize::decode(buf)?,
            }),
            other => Err(DecodeError::new(format!("bad ClientReq tag {other}"))),
        }
    }
}

impl Encode for ClientResp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ClientResp::Done => out.push(0),
            ClientResp::Neighbors(n) => {
                out.push(1);
                n.encode(out);
            }
            ClientResp::Stats(s) => {
                out.push(2);
                s.encode(out);
            }
            ClientResp::Violations(v) => {
                out.push(3);
                v.encode(out);
            }
            ClientResp::Metrics {
                messages,
                bytes,
                response_bytes,
                spawned_nodes,
                latency_count,
                p50_nanos,
                p99_nanos,
                p999_nanos,
                reads_retried,
                read_retries,
                reactor_shards,
                shard_served,
                shard_shed,
            } => {
                out.push(4);
                messages.encode(out);
                bytes.encode(out);
                response_bytes.encode(out);
                spawned_nodes.encode(out);
                latency_count.encode(out);
                p50_nanos.encode(out);
                p99_nanos.encode(out);
                p999_nanos.encode(out);
                reads_retried.encode(out);
                for bucket in read_retries {
                    bucket.encode(out);
                }
                reactor_shards.encode(out);
                for count in shard_served.iter() {
                    count.encode(out);
                }
                for count in shard_shed.iter() {
                    count.encode(out);
                }
            }
            ClientResp::Error(msg) => {
                out.push(5);
                msg.encode(out);
            }
            ClientResp::NeighborBatches(b) => {
                out.push(6);
                b.encode(out);
            }
            ClientResp::Overloaded => out.push(7),
        }
    }
}

impl Decode for ClientResp {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(ClientResp::Done),
            1 => Ok(ClientResp::Neighbors(Vec::decode(buf)?)),
            2 => Ok(ClientResp::Stats(Vec::decode(buf)?)),
            3 => Ok(ClientResp::Violations(Vec::decode(buf)?)),
            4 => Ok(ClientResp::Metrics {
                messages: u64::decode(buf)?,
                bytes: u64::decode(buf)?,
                response_bytes: u64::decode(buf)?,
                spawned_nodes: u64::decode(buf)?,
                latency_count: u64::decode(buf)?,
                p50_nanos: u64::decode(buf)?,
                p99_nanos: u64::decode(buf)?,
                p999_nanos: u64::decode(buf)?,
                reads_retried: u64::decode(buf)?,
                read_retries: {
                    let mut buckets = [0u64; READ_RETRY_BUCKETS];
                    for bucket in &mut buckets {
                        *bucket = u64::decode(buf)?;
                    }
                    buckets
                },
                reactor_shards: u64::decode(buf)?,
                shard_served: {
                    let mut counts = Box::new([0u64; MAX_REACTOR_SHARDS]);
                    for count in counts.iter_mut() {
                        *count = u64::decode(buf)?;
                    }
                    counts
                },
                shard_shed: {
                    let mut counts = Box::new([0u64; MAX_REACTOR_SHARDS]);
                    for count in counts.iter_mut() {
                        *count = u64::decode(buf)?;
                    }
                    counts
                },
            }),
            5 => Ok(ClientResp::Error(String::decode(buf)?)),
            6 => Ok(ClientResp::NeighborBatches(Vec::decode(buf)?)),
            7 => Ok(ClientResp::Overloaded),
            other => Err(DecodeError::new(format!("bad ClientResp tag {other}"))),
        }
    }
}

/// A remote client is untrusted input: a wrong-dimension point must be
/// rejected here, before it reaches a partition actor (where it would
/// kill the node and with it the whole deployment).
fn dims_mismatch(tree: &DistSemTree, point: &[f64]) -> Option<ClientResp> {
    (point.len() != tree.dims()).then(|| {
        ClientResp::Error(format!(
            "point has {} dimensions, the index expects {}",
            point.len(),
            tree.dims()
        ))
    })
}

/// Map an insert outcome to its wire response. These `*_resp` mappers
/// are shared by the blocking ([`answer`]) and pipelined
/// (`TreeService::call_pipelined`) serving paths, so both produce
/// byte-identical responses by construction.
fn done_resp(outcome: Result<QueryOutcome, ClusterError>) -> ClientResp {
    match outcome {
        Ok(_) => ClientResp::Done,
        Err(e) => ClientResp::Error(e.to_string()),
    }
}

/// Map a k-NN / range outcome to its wire response.
fn neighbors_resp(outcome: Result<QueryOutcome, ClusterError>) -> ClientResp {
    match outcome.and_then(QueryOutcome::neighbors) {
        Ok(hits) => ClientResp::Neighbors(hits.into_iter().map(|n| (n.dist, n.payload)).collect()),
        Err(e) => ClientResp::Error(e.to_string()),
    }
}

/// Map a batched k-NN outcome to its wire response.
fn batches_resp(outcome: Result<QueryOutcome, ClusterError>) -> ClientResp {
    match outcome.and_then(QueryOutcome::neighbor_batches) {
        Ok(batches) => ClientResp::NeighborBatches(
            batches
                .into_iter()
                .map(|hits| hits.into_iter().map(|n| (n.dist, n.payload)).collect())
                .collect(),
        ),
        Err(e) => ClientResp::Error(e.to_string()),
    }
}

fn answer(tree: &DistSemTree, req: ClientReq) -> ClientResp {
    match req {
        ClientReq::Insert { point, payload } => {
            if let Some(err) = dims_mismatch(tree, &point) {
                return err;
            }
            done_resp(tree.query(Query::Insert { point, payload }))
        }
        ClientReq::Knn { point, k } => {
            if let Some(err) = dims_mismatch(tree, &point) {
                return err;
            }
            neighbors_resp(tree.query(Query::Knn { point, k }))
        }
        ClientReq::Range { point, radius } => {
            if let Some(err) = dims_mismatch(tree, &point) {
                return err;
            }
            neighbors_resp(tree.query(Query::Range { point, radius }))
        }
        ClientReq::Stats => match tree.try_global_stats() {
            Ok(stats) => ClientResp::Stats(stats.partitions),
            Err(e) => ClientResp::Error(e.to_string()),
        },
        ClientReq::Verify => ClientResp::Violations(tree.verify()),
        ClientReq::Metrics => {
            let m = tree.metrics();
            ClientResp::Metrics {
                messages: m.messages,
                bytes: m.bytes,
                response_bytes: m.response_bytes,
                spawned_nodes: m.spawned_nodes,
                latency_count: m.latency.count,
                p50_nanos: m.latency.p50_nanos(),
                p99_nanos: m.latency.p99_nanos(),
                p999_nanos: m.latency.p999_nanos(),
                reads_retried: m.reads_retried,
                read_retries: m.read_retries,
                reactor_shards: m.reactor_shards,
                shard_served: Box::new(m.shard_served),
                shard_shed: Box::new(m.shard_shed),
            }
        }
        ClientReq::Shutdown => ClientResp::Done,
        ClientReq::KnnBatch { points, k } => {
            for point in &points {
                if let Some(err) = dims_mismatch(tree, point) {
                    return err;
                }
            }
            batches_resp(tree.query(Query::KnnBatch { points, k }))
        }
    }
}

/// Tunables for the reactor-backed client serving loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Executor threads running [`ClientReq`]s against the tree.
    pub executors: usize,
    /// Global in-flight bound; beyond it requests are shed with
    /// [`ClientResp::Overloaded`].
    pub global_depth: usize,
    /// Per-connection pipeline depth; beyond it the reactor stops
    /// reading that socket (backpressure, nothing is shed).
    pub per_conn_depth: usize,
    /// Reactor shard count; `0` = automatic (half the cores, ≥ 1).
    pub reactors: usize,
    /// Readiness backend (epoll on Linux by default, poll elsewhere).
    pub backend: semtree_reactor::Backend,
}

impl Default for ServeOptions {
    fn default() -> Self {
        let d = semtree_reactor::ReactorConfig::default();
        ServeOptions {
            executors: d.executors,
            global_depth: d.global_depth,
            per_conn_depth: d.per_conn_depth,
            reactors: d.reactors,
            backend: d.backend,
        }
    }
}

impl ServeOptions {
    /// Executor thread count (consuming builder, like the `with_*`
    /// methods on `KdConfig`/`DistConfig`/`WalOptions`).
    #[must_use]
    pub fn with_executors(mut self, executors: usize) -> Self {
        self.executors = executors;
        self
    }

    /// Global in-flight bound before load shedding.
    #[must_use]
    pub fn with_global_depth(mut self, global_depth: usize) -> Self {
        self.global_depth = global_depth;
        self
    }

    /// Per-connection pipeline depth before backpressure.
    #[must_use]
    pub fn with_per_conn_depth(mut self, per_conn_depth: usize) -> Self {
        self.per_conn_depth = per_conn_depth;
        self
    }

    /// Reactor shard count (`0` = automatic: half the cores, ≥ 1).
    #[must_use]
    pub fn with_reactors(mut self, reactors: usize) -> Self {
        self.reactors = reactors;
        self
    }

    /// Readiness backend every reactor shard uses.
    #[must_use]
    pub fn with_backend(mut self, backend: semtree_reactor::Backend) -> Self {
        self.backend = backend;
        self
    }
}

/// [`semtree_reactor::Service`] adapter: decodes [`ClientReq`] frames,
/// answers them against the tree, encodes [`ClientResp`] frames.
struct TreeService<'a> {
    tree: &'a DistSemTree,
}

impl semtree_reactor::Service for TreeService<'_> {
    fn call(&self, request: &[u8]) -> semtree_reactor::ServiceReply {
        let req: ClientReq = match decode_exact(request) {
            Ok(req) => req,
            Err(e) => {
                return semtree_reactor::ServiceReply {
                    payload: ClientResp::Error(format!("bad request: {e}")).to_bytes(),
                    shutdown: false,
                };
            }
        };
        let shutdown = req == ClientReq::Shutdown;
        semtree_reactor::ServiceReply {
            payload: answer(self.tree, req).to_bytes(),
            shutdown,
        }
    }

    fn overloaded(&self) -> Vec<u8> {
        ClientResp::Overloaded.to_bytes()
    }

    /// The pipelined serving path: data-plane queries are submitted
    /// through [`DistSemTree::submit_query`] and the executor returns
    /// immediately — the client's response is completed from whatever
    /// thread finishes the partition work (the root actor's thread, or
    /// a `semtree-net` demux reader when partitions are remote), via
    /// the [`semtree_reactor::ReplyToken`]. Control-plane requests,
    /// malformed frames, and dimension rejects answer synchronously;
    /// the response bytes are identical to [`Service::call`]'s on every
    /// path because both go through the same `*_resp` mappers.
    fn call_pipelined(
        &self,
        request: &[u8],
        token: semtree_reactor::ReplyToken,
    ) -> semtree_reactor::Dispatch {
        let req: ClientReq = match decode_exact(request) {
            Ok(req) => req,
            Err(_) => return semtree_reactor::Dispatch::Sync(token, self.call(request)),
        };
        type ToResp = fn(Result<QueryOutcome, ClusterError>) -> ClientResp;
        let (query, to_resp): (Query, ToResp) = match req {
            ClientReq::Insert { point, payload } if dims_mismatch(self.tree, &point).is_none() => {
                (Query::Insert { point, payload }, done_resp)
            }
            ClientReq::Knn { point, k } if dims_mismatch(self.tree, &point).is_none() => {
                (Query::Knn { point, k }, neighbors_resp)
            }
            ClientReq::Range { point, radius } if dims_mismatch(self.tree, &point).is_none() => {
                (Query::Range { point, radius }, neighbors_resp)
            }
            ClientReq::KnnBatch { points, k }
                if points.iter().all(|p| dims_mismatch(self.tree, p).is_none()) =>
            {
                (Query::KnnBatch { points, k }, batches_resp)
            }
            req => {
                let shutdown = req == ClientReq::Shutdown;
                return semtree_reactor::Dispatch::Sync(
                    token,
                    semtree_reactor::ServiceReply {
                        payload: answer(self.tree, req).to_bytes(),
                        shutdown,
                    },
                );
            }
        };
        self.tree.submit_query(
            query,
            Box::new(move |outcome| token.complete(to_resp(outcome).to_bytes(), false)),
        );
        semtree_reactor::Dispatch::Completed
    }
}

/// Serve client connections on the event-driven reactor until one sends
/// [`ClientReq::Shutdown`] (acknowledged with [`ClientResp::Done`]
/// before returning). The caller then shuts the tree down.
///
/// Connections are multiplexed: v1 frames get sequential replies, v2
/// frames ([`semtree_net::FRAME_V2`]) are pipelined with out-of-order
/// completion. Request latency is recorded into the tree's shared
/// metrics histogram.
///
/// # Errors
/// Fails when the listener itself breaks; per-connection errors just
/// drop that connection.
pub fn serve_clients(listener: &TcpListener, tree: &DistSemTree) -> io::Result<()> {
    serve_clients_with(listener, tree, &ServeOptions::default())
}

/// [`serve_clients`] with explicit queue depths and executor count.
///
/// # Errors
/// Same as [`serve_clients`].
pub fn serve_clients_with(
    listener: &TcpListener,
    tree: &DistSemTree,
    options: &ServeOptions,
) -> io::Result<()> {
    let config = semtree_reactor::ReactorConfig {
        executors: options.executors,
        global_depth: options.global_depth,
        per_conn_depth: options.per_conn_depth,
        metrics: Some(tree.metrics_handle()),
        reactors: options.reactors,
        backend: options.backend,
    };
    let service = TreeService { tree };
    semtree_reactor::serve(listener, &service, &config)?;
    Ok(())
}

/// Deployment-wide counters as reported over the client port by
/// [`NetClient::metrics`]: interconnect traffic plus the coordinator's
/// request-latency histogram quantiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientMetrics {
    /// Requests delivered across the interconnect.
    pub messages: u64,
    /// Bytes carried (exact encoded frame bytes under TCP).
    pub bytes: u64,
    /// Response payload bytes travelling back to callers.
    pub response_bytes: u64,
    /// Compute nodes spawned.
    pub spawned_nodes: u64,
    /// Client requests with recorded end-to-end latency.
    pub latency_count: u64,
    /// Median request latency in nanoseconds (conservative bucket floor).
    pub p50_nanos: u64,
    /// 99th-percentile request latency in nanoseconds.
    pub p99_nanos: u64,
    /// 99.9th-percentile request latency in nanoseconds.
    pub p999_nanos: u64,
    /// Total writer-race retries across optimistic lock-free reads.
    pub reads_retried: u64,
    /// Optimistic reads bucketed by retry count
    /// (see [`semtree_cluster::read_retry_bucket_index`]).
    pub read_retries: [u64; READ_RETRY_BUCKETS],
    /// Reactor shards serving the client port (0 = no reactor).
    pub reactor_shards: u64,
    /// Requests completed, by owning reactor shard (first
    /// `reactor_shards` entries live).
    pub shard_served: [u64; MAX_REACTOR_SHARDS],
    /// Requests shed at admission, by owning reactor shard.
    pub shard_shed: [u64; MAX_REACTOR_SHARDS],
}

/// A blocking client of the coordinator's query port.
pub struct NetClient {
    stream: TcpStream,
}

impl NetClient {
    /// Dial the coordinator's client port, retrying until `timeout`.
    ///
    /// # Errors
    /// Fails when the port never comes up.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<Self> {
        Ok(NetClient {
            stream: dial_with_timeout(addr, timeout)?,
        })
    }

    fn call(&mut self, req: &ClientReq) -> io::Result<ClientResp> {
        write_frame(&mut self.stream, &req.to_bytes())?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        decode_exact(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    fn expect_neighbors(resp: ClientResp) -> io::Result<Vec<(f64, u64)>> {
        match resp {
            ClientResp::Neighbors(n) => Ok(n),
            other => Err(unexpected(&other)),
        }
    }

    /// Insert one point.
    ///
    /// # Errors
    /// Propagates transport and server-side failures.
    pub fn insert(&mut self, point: &[f64], payload: u64) -> io::Result<()> {
        match self.call(&ClientReq::Insert {
            point: point.to_vec(),
            payload,
        })? {
            ClientResp::Done => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// k-nearest query; `(distance, payload)` pairs closest first.
    ///
    /// # Errors
    /// Propagates transport and server-side failures.
    pub fn knn(&mut self, point: &[f64], k: usize) -> io::Result<Vec<(f64, u64)>> {
        Self::expect_neighbors(self.call(&ClientReq::Knn {
            point: point.to_vec(),
            k,
        })?)
    }

    /// Batched k-nearest query: the whole batch travels as one frame
    /// and comes back as one frame, so `points.len()` queries cost a
    /// single network round trip. Answers are in query order, each
    /// closest first — identical to issuing [`NetClient::knn`] per
    /// point.
    ///
    /// # Errors
    /// Propagates transport and server-side failures.
    pub fn knn_batch(&mut self, points: &[Vec<f64>], k: usize) -> io::Result<Vec<Vec<(f64, u64)>>> {
        match self.call(&ClientReq::KnnBatch {
            points: points.to_vec(),
            k,
        })? {
            ClientResp::NeighborBatches(b) => Ok(b),
            other => Err(unexpected(&other)),
        }
    }

    /// Range query; `(distance, payload)` pairs closest first.
    ///
    /// # Errors
    /// Propagates transport and server-side failures.
    pub fn range(&mut self, point: &[f64], radius: f64) -> io::Result<Vec<(f64, u64)>> {
        Self::expect_neighbors(self.call(&ClientReq::Range {
            point: point.to_vec(),
            radius,
        })?)
    }

    /// Per-partition statistics, root first.
    ///
    /// # Errors
    /// Propagates transport and server-side failures.
    pub fn stats(&mut self) -> io::Result<Vec<(u32, PartitionStats)>> {
        match self.call(&ClientReq::Stats)? {
            ClientResp::Stats(s) => Ok(s),
            other => Err(unexpected(&other)),
        }
    }

    /// Structural verification; empty = healthy.
    ///
    /// # Errors
    /// Propagates transport and server-side failures.
    pub fn verify(&mut self) -> io::Result<Vec<String>> {
        match self.call(&ClientReq::Verify)? {
            ClientResp::Violations(v) => Ok(v),
            other => Err(unexpected(&other)),
        }
    }

    /// Interconnect counters and serving-latency quantiles.
    ///
    /// # Errors
    /// Propagates transport and server-side failures.
    pub fn metrics(&mut self) -> io::Result<ClientMetrics> {
        match self.call(&ClientReq::Metrics)? {
            ClientResp::Metrics {
                messages,
                bytes,
                response_bytes,
                spawned_nodes,
                latency_count,
                p50_nanos,
                p99_nanos,
                p999_nanos,
                reads_retried,
                read_retries,
                reactor_shards,
                shard_served,
                shard_shed,
            } => Ok(ClientMetrics {
                messages,
                bytes,
                response_bytes,
                spawned_nodes,
                latency_count,
                p50_nanos,
                p99_nanos,
                p999_nanos,
                reads_retried,
                read_retries,
                reactor_shards,
                shard_served: *shard_served,
                shard_shed: *shard_shed,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the coordinator to tear the deployment down.
    ///
    /// # Errors
    /// Propagates transport failures.
    pub fn shutdown(mut self) -> io::Result<()> {
        match self.call(&ClientReq::Shutdown)? {
            ClientResp::Done => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &ClientResp) -> io::Error {
    match resp {
        ClientResp::Error(msg) => io::Error::other(msg.clone()),
        ClientResp::Overloaded => io::Error::new(
            io::ErrorKind::WouldBlock,
            "server shed the request (queue full)",
        ),
        other => io::Error::other(format!("unexpected reply {other:?}")),
    }
}

// ----------------------------------------------------------------------
// Pipelined client
// ----------------------------------------------------------------------

/// Correlation-id waiters shared between submitters and the demux
/// reader thread.
struct Inflight {
    waiters: HashMap<u64, mpsc::Sender<io::Result<ClientResp>>>,
    /// Why the connection became unusable, once it has.
    dead: Option<String>,
}

fn lock_inflight(inflight: &Mutex<Inflight>) -> std::sync::MutexGuard<'_, Inflight> {
    inflight
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn dead_conn(reason: &str) -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, reason.to_string())
}

/// One in-flight request submitted on a [`PipelinedClient`].
pub struct PendingReply {
    rx: mpsc::Receiver<io::Result<ClientResp>>,
}

impl PendingReply {
    /// Block until the response arrives (or the connection dies).
    ///
    /// # Errors
    /// Transport failures, decode failures, and connection loss all
    /// surface as typed [`io::Error`]s — never a hang.
    pub fn wait(self) -> io::Result<ClientResp> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(dead_conn("pipelined connection closed before reply")),
        }
    }

    /// [`wait`](Self::wait) with an upper bound; `TimedOut` when it
    /// elapses with the request still in flight.
    ///
    /// # Errors
    /// Same as [`wait`](Self::wait), plus [`io::ErrorKind::TimedOut`].
    pub fn wait_timeout(self, timeout: Duration) -> io::Result<ClientResp> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "pipelined reply still in flight",
            )),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(dead_conn("pipelined connection closed before reply"))
            }
        }
    }

    /// Non-blocking probe: `Some` with the settled outcome when the
    /// reply (or the connection's death) has already arrived, `None`
    /// while it is still in flight. Lets a caller holding a window of
    /// pending replies harvest completions in arrival order instead of
    /// submission order — under pipelining the two routinely differ.
    pub fn try_take(&self) -> Option<io::Result<ClientResp>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => {
                Some(Err(dead_conn("pipelined connection closed before reply")))
            }
        }
    }

    /// Wait and unwrap a [`ClientResp::Neighbors`] reply.
    ///
    /// # Errors
    /// Same as [`wait`](Self::wait); a non-`Neighbors` reply (including
    /// [`ClientResp::Overloaded`]) is a typed error.
    pub fn wait_neighbors(self) -> io::Result<Vec<(f64, u64)>> {
        match self.wait()? {
            ClientResp::Neighbors(n) => Ok(n),
            other => Err(unexpected(&other)),
        }
    }

    /// Wait and unwrap a [`ClientResp::NeighborBatches`] reply.
    ///
    /// # Errors
    /// Same as [`wait_neighbors`](Self::wait_neighbors).
    pub fn wait_batches(self) -> io::Result<Vec<Vec<(f64, u64)>>> {
        match self.wait()? {
            ClientResp::NeighborBatches(b) => Ok(b),
            other => Err(unexpected(&other)),
        }
    }
}

/// A pipelined client of the coordinator's query port: many requests in
/// flight over **one** connection, each tagged with a v2 correlation id
/// and completed out of order by a demux reader thread.
///
/// Submitting returns a [`PendingReply`] immediately; the answer is
/// claimed later with [`PendingReply::wait`]. Compared to a pool of
/// [`NetClient`]s, one pipelined connection keeps the server's executor
/// pool busy without paying a round trip per request.
pub struct PipelinedClient {
    writer: TcpStream,
    inflight: Arc<Mutex<Inflight>>,
    next_corr: u64,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl PipelinedClient {
    /// Dial the coordinator's client port, retrying until `timeout`,
    /// and start the demux reader.
    ///
    /// # Errors
    /// Fails when the port never comes up.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<Self> {
        let writer = dial_with_timeout(addr, timeout)?;
        let reader_stream = writer.try_clone()?;
        let inflight = Arc::new(Mutex::new(Inflight {
            waiters: HashMap::new(),
            dead: None,
        }));
        let reader_inflight = Arc::clone(&inflight);
        let reader = std::thread::spawn(move || demux_replies(reader_stream, &reader_inflight));
        Ok(PipelinedClient {
            writer,
            inflight,
            next_corr: 0,
            reader: Some(reader),
        })
    }

    /// Requests submitted so far (also the next correlation id).
    #[must_use]
    pub fn submitted(&self) -> u64 {
        self.next_corr
    }

    /// Submit one request without waiting for its reply.
    ///
    /// # Errors
    /// Fails fast when the connection is already dead or the write
    /// fails; the returned [`PendingReply`] then never existed.
    pub fn submit(&mut self, req: &ClientReq) -> io::Result<PendingReply> {
        let corr = self.next_corr;
        let (tx, rx) = mpsc::channel();
        {
            let mut st = lock_inflight(&self.inflight);
            if let Some(reason) = &st.dead {
                return Err(dead_conn(reason));
            }
            st.waiters.insert(corr, tx);
        }
        self.next_corr += 1;
        if let Err(e) = write_frame(&mut self.writer, &encode_frame_v2(corr, &req.to_bytes())) {
            lock_inflight(&self.inflight).waiters.remove(&corr);
            return Err(e);
        }
        Ok(PendingReply { rx })
    }

    /// Submit a k-nearest query; claim it with
    /// [`PendingReply::wait_neighbors`].
    ///
    /// # Errors
    /// Same as [`submit`](Self::submit).
    pub fn knn(&mut self, point: &[f64], k: usize) -> io::Result<PendingReply> {
        self.submit(&ClientReq::Knn {
            point: point.to_vec(),
            k,
        })
    }

    /// Submit a batched k-nearest query; claim it with
    /// [`PendingReply::wait_batches`].
    ///
    /// # Errors
    /// Same as [`submit`](Self::submit).
    pub fn knn_batch(&mut self, points: &[Vec<f64>], k: usize) -> io::Result<PendingReply> {
        self.submit(&ClientReq::KnnBatch {
            points: points.to_vec(),
            k,
        })
    }

    /// Submit one insert; claim the [`ClientResp::Done`] with
    /// [`PendingReply::wait`].
    ///
    /// # Errors
    /// Same as [`submit`](Self::submit).
    pub fn insert(&mut self, point: &[f64], payload: u64) -> io::Result<PendingReply> {
        self.submit(&ClientReq::Insert {
            point: point.to_vec(),
            payload,
        })
    }
}

impl Drop for PipelinedClient {
    fn drop(&mut self) {
        let _ = self.writer.shutdown(std::net::Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// Reader-thread body: route each v2 reply to its waiter; on any
/// protocol violation or transport failure, fail every outstanding
/// waiter with a typed error and mark the connection dead.
fn demux_replies(mut stream: TcpStream, inflight: &Mutex<Inflight>) {
    let failure = loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => break "server closed the pipelined connection".to_string(),
            Err(e) => break format!("pipelined read failed: {e}"),
        };
        let (corr, body) = match split_frame_v2(&payload) {
            Ok(Some(pair)) => pair,
            Ok(None) => break "unpipelined (v1) reply on a pipelined connection".to_string(),
            Err(e) => break format!("malformed pipelined reply: {e}"),
        };
        let result = decode_exact::<ClientResp>(body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
        // Take the waiter out under the lock, deliver after releasing
        // it: `tx.send` must never run while `inflight` is held.
        let waiter = lock_inflight(inflight).waiters.remove(&corr);
        match waiter {
            // A dropped PendingReply just discards its answer.
            Some(tx) => drop(tx.send(result)),
            None => break format!("reply with unknown correlation id {corr}"),
        }
    };
    let mut st = lock_inflight(inflight);
    st.dead = Some(failure.clone());
    for (_, tx) in st.waiters.drain() {
        let _ = tx.send(Err(dead_conn(&failure)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deploy_config_round_trips() {
        let config = DistConfig::new(4)
            .with_bucket_size(16)
            .with_max_partitions(9)
            .with_split_rule(SplitRule::DegenerateMin)
            .with_capacity(CapacityPolicy::MaxPoints(500));
        let net = NetDeployConfig::from_config(&config).unwrap();
        let back: NetDeployConfig = decode_exact(&net.to_bytes()).unwrap();
        assert_eq!(back, net);
        let rebuilt = back.to_config();
        assert_eq!(rebuilt.dims(), 4);
        assert_eq!(rebuilt.bucket_size(), 16);
    }

    #[test]
    fn wrong_dimension_requests_are_rejected_not_fatal() {
        let tree = DistSemTree::single(DistConfig::new(2), semtree_cluster::CostModel::zero());
        for req in [
            ClientReq::Insert {
                point: vec![1.0, 2.0, 3.0],
                payload: 0,
            },
            ClientReq::Knn {
                point: vec![1.0],
                k: 3,
            },
            ClientReq::Range {
                point: vec![],
                radius: 1.0,
            },
        ] {
            assert!(
                matches!(answer(&tree, req), ClientResp::Error(msg) if msg.contains("dimensions")),
                "wrong-dimension request must come back as a typed error"
            );
        }
        // The tree survived every bad request.
        tree.query(Query::insert(&[1.0, 2.0], 7))
            .and_then(QueryOutcome::inserted)
            .expect("insert");
        let hits = tree
            .query(Query::knn(&[1.0, 2.0], 1))
            .and_then(QueryOutcome::neighbors)
            .expect("knn");
        assert_eq!(hits[0].payload, 7);
        tree.shutdown();
    }

    #[test]
    fn dynamic_capacity_cannot_be_deployed() {
        let config = DistConfig::new(2)
            .with_capacity(CapacityPolicy::Dynamic(Arc::new(|points| points > 10)));
        match NetDeployConfig::from_config(&config) {
            Err(DeployError::Config(msg)) => assert!(msg.contains("dynamic")),
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn client_protocol_round_trips() {
        let reqs = [
            ClientReq::Insert {
                point: vec![1.0, 2.0],
                payload: 7,
            },
            ClientReq::Knn {
                point: vec![0.0],
                k: 5,
            },
            ClientReq::Range {
                point: vec![3.0],
                radius: 1.5,
            },
            ClientReq::Stats,
            ClientReq::Verify,
            ClientReq::Metrics,
            ClientReq::Shutdown,
            ClientReq::KnnBatch {
                points: vec![vec![1.0, 2.0], vec![]],
                k: 3,
            },
        ];
        for req in reqs {
            let back: ClientReq = decode_exact(&req.to_bytes()).unwrap();
            assert_eq!(back, req);
        }
        let resps = [
            ClientResp::Done,
            ClientResp::Neighbors(vec![(0.5, 9)]),
            ClientResp::Stats(vec![(0, PartitionStats::default())]),
            ClientResp::Violations(vec!["broken".into()]),
            ClientResp::Metrics {
                messages: 3,
                bytes: 120,
                response_bytes: 48,
                spawned_nodes: 2,
                latency_count: 17,
                p50_nanos: 2_048,
                p99_nanos: 65_536,
                p999_nanos: 131_072,
                reads_retried: 5,
                read_retries: [10, 3, 1, 0, 1, 0, 0, 0],
                reactor_shards: 2,
                shard_served: {
                    let mut served = Box::new([0u64; MAX_REACTOR_SHARDS]);
                    served[0] = 11;
                    served[1] = 6;
                    served
                },
                shard_shed: {
                    let mut shed = Box::new([0u64; MAX_REACTOR_SHARDS]);
                    shed[1] = 4;
                    shed
                },
            },
            ClientResp::Error("nope".into()),
            ClientResp::NeighborBatches(vec![vec![(0.5, 9), (1.0, 2)], vec![]]),
            ClientResp::Overloaded,
        ];
        for resp in resps {
            let back: ClientResp = decode_exact(&resp.to_bytes()).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn split_rule_tags_are_stable() {
        for rule in [
            SplitRule::Cycle,
            SplitRule::WidestSpread,
            SplitRule::DegenerateMin,
        ] {
            assert_eq!(split_rule_from_tag(split_rule_tag(rule)).unwrap(), rule);
        }
        assert!(split_rule_from_tag(9).is_err());
    }
}
