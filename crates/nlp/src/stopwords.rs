//! A compact English stopword list for requirement prose.

/// Stopwords the extractor skips when assembling subject/object phrases.
static STOPWORDS: &[&str] = &[
    "a", "an", "the", "this", "that", "these", "those", "of", "in", "on", "at", "to", "from", "by",
    "with", "and", "or", "for", "as", "is", "are", "be", "been", "was", "were", "it", "its", "any",
    "all", "each", "every", "when", "then", "than", "so", "such", "via",
];

/// Whether `word` (matched case-insensitively) is a stopword.
#[must_use]
pub fn is_stopword(word: &str) -> bool {
    let lower = word.to_lowercase();
    STOPWORDS.contains(&lower.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_words_are_stopwords() {
        for w in ["the", "a", "The", "AND", "with"] {
            assert!(is_stopword(w), "{w}");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["command", "OBSW001", "accept", "start-up"] {
            assert!(!is_stopword(w), "{w}");
        }
    }
}
