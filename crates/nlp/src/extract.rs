//! SVO extraction for the controlled requirements grammar.

use std::collections::HashMap;
use std::fmt;

use semtree_model::{Term, Triple};

use crate::stem::light_stem;
use crate::stopwords::is_stopword;
use crate::tokenizer::{sentences, tokenize, TokenKind};

/// Extraction failure for a single sentence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// No modal verb (`shall`, `must`, …) found.
    NoModal,
    /// Nothing usable before the modal.
    NoSubject,
    /// No known action verb after the modal.
    NoVerb(String),
    /// No object phrase after the verb.
    NoObject,
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::NoModal => f.write_str("no modal verb (shall/must/…) in sentence"),
            ExtractError::NoSubject => f.write_str("no subject before the modal verb"),
            ExtractError::NoVerb(v) => write!(f, "unknown action verb '{v}'"),
            ExtractError::NoObject => f.write_str("no object phrase after the verb"),
        }
    }
}

impl std::error::Error for ExtractError {}

/// Extracts `(Actor, Fun:<verb>_<class>, <ClassType>:<parameter>)` triples
/// from `"<Actor> shall [not] <verb> the <parameter> <class>"` sentences —
/// the unary-function reading of requirements from the paper's §III-A.
#[derive(Debug, Clone)]
pub struct SvoExtractor {
    modals: Vec<&'static str>,
    /// stem → canonical verb.
    verbs: HashMap<&'static str, &'static str>,
    /// negated verb → its antonym action (`shall not accept` → `block`).
    negations: HashMap<&'static str, &'static str>,
    /// object-class noun → (predicate suffix, object prefix):
    /// `command` → (`cmd`, `CmdType`).
    classes: HashMap<&'static str, (&'static str, &'static str)>,
}

impl SvoExtractor {
    /// The extractor configured for on-board-software requirements, with
    /// the verb/class lexicon the synthetic corpus also uses.
    #[must_use]
    pub fn requirements() -> Self {
        let verbs = [
            "accept", "reject", "block", "allow", "send", "receive", "acquire", "release", "start",
            "stop", "enable", "disable", "monitor", "verify", "validate", "check", "transmit",
            "process", "store", "discard",
        ]
        .into_iter()
        .map(|v| (v, v))
        .collect();
        let negations = [
            ("accept", "block"),
            ("allow", "reject"),
            ("enable", "disable"),
            ("start", "stop"),
            ("send", "discard"),
        ]
        .into_iter()
        .collect();
        let classes = [
            ("command", ("cmd", "CmdType")),
            ("message", ("msg", "MsgType")),
            ("input", ("in", "InType")),
            ("output", ("out", "OutType")),
            ("mode", ("mode", "ModeType")),
            ("signal", ("sig", "SigType")),
            ("telemetry", ("tm", "TmType")),
            ("parameter", ("par", "ParType")),
        ]
        .into_iter()
        .collect();
        SvoExtractor {
            modals: vec!["shall", "must", "will", "should"],
            verbs,
            negations,
            classes,
        }
    }

    /// Extract the first triple from one sentence (see
    /// [`SvoExtractor::extract_sentence_all`] for conjunction handling).
    pub fn extract_sentence(&self, sentence: &str) -> Result<Triple, ExtractError> {
        self.extract_sentence_all(sentence).map(|mut v| v.remove(0))
    }

    /// Extract every triple a sentence asserts. The paper notes "a sentence
    /// can include several triples": object conjunctions
    /// (`… accept the start-up and shut-down commands`) yield one triple
    /// per conjunct. Passive sentences
    /// (`The start-up command shall be accepted by OBSW001`) are normalised
    /// to their active form first.
    pub fn extract_sentence_all(&self, sentence: &str) -> Result<Vec<Triple>, ExtractError> {
        // Leading subordinate clause ("When in safe mode, …", "During the
        // pre-launch phase, …") is scoped context, not part of the SVO
        // core: drop everything up to the first comma.
        let sentence = strip_condition_clause(sentence);
        let tokens = tokenize(sentence);
        let words: Vec<String> = tokens
            .iter()
            .filter(|t| t.kind != TokenKind::Punct)
            .map(|t| t.text.clone())
            .collect();

        let modal_idx = words
            .iter()
            .position(|w| self.modals.contains(&w.to_lowercase().as_str()))
            .ok_or(ExtractError::NoModal)?;

        // Optional negation directly after the modal ("shall not …",
        // "shall not be … by …").
        let mut idx = modal_idx + 1;
        let mut negated = false;
        while idx < words.len() {
            let lower = words[idx].to_lowercase();
            if lower == "not" || lower == "never" {
                negated = true;
                idx += 1;
            } else {
                break;
            }
        }

        // Passive voice: "<object> shall [not] be <participle> by <subject>".
        let passive = words.get(idx).is_some_and(|w| w.to_lowercase() == "be");
        let (subject_words, raw_verb, object_words): (Vec<String>, String, Vec<String>) = if passive
        {
            let verb_idx = idx + 1;
            let raw_verb = words
                .get(verb_idx)
                .cloned()
                .ok_or_else(|| ExtractError::NoVerb(String::new()))?;
            let by_idx = words[verb_idx + 1..]
                .iter()
                .position(|w| w.to_lowercase() == "by")
                .map(|p| p + verb_idx + 1)
                .ok_or(ExtractError::NoSubject)?;
            let subject = words[by_idx + 1..].to_vec();
            let object = words[..modal_idx].to_vec();
            (subject, raw_verb, object)
        } else {
            let raw_verb = words
                .get(idx)
                .cloned()
                .ok_or_else(|| ExtractError::NoVerb(String::new()))?;
            (
                words[..modal_idx].to_vec(),
                raw_verb,
                words[idx + 1..].to_vec(),
            )
        };

        // Subject conjunctions ("OBSW001 and OBSW002 shall …") assert the
        // statement for each actor.
        let mut subjects: Vec<String> = vec![String::new()];
        for w in &subject_words {
            let lower = w.to_lowercase();
            if lower == "and" || lower == "or" {
                subjects.push(String::new());
            } else if !is_stopword(&lower) {
                let cur = subjects.last_mut().expect("non-empty");
                if !cur.is_empty() {
                    cur.push(' ');
                }
                cur.push_str(w);
            }
        }
        subjects.retain(|s| !s.is_empty());
        if subjects.is_empty() {
            return Err(ExtractError::NoSubject);
        }

        let stem = light_stem(&raw_verb);
        // The light stemmer may leave a dropped silent `e` unrestored
        // ("validated" → "validat"); retry lexicon lookup with it appended.
        let with_e = format!("{stem}e");
        let mut verb = *self
            .verbs
            .get(stem.as_str())
            .or_else(|| self.verbs.get(with_e.as_str()))
            .ok_or(ExtractError::NoVerb(raw_verb))?;
        if negated {
            // `shall not accept` ≡ `shall block`: fold the negation into
            // the antonym action so the antinomy machinery sees it.
            verb = self.negations.get(verb).copied().unwrap_or(verb);
        }

        // Object conjunctions: split on and/or *before* stopword removal,
        // then resolve each conjunct's class noun. A class noun on the last
        // conjunct distributes to earlier ones ("start-up and shut-down
        // commands").
        let mut segments: Vec<Vec<String>> = vec![Vec::new()];
        for w in &object_words {
            let lower = w.to_lowercase();
            if lower == "and" || lower == "or" {
                segments.push(Vec::new());
            } else if !is_stopword(&lower) {
                segments.last_mut().expect("non-empty").push(lower);
            }
        }
        segments.retain(|s| !s.is_empty());
        if segments.is_empty() {
            return Err(ExtractError::NoObject);
        }

        // Right-to-left class inheritance.
        type ResolvedSegment<'a> = (Vec<String>, Option<(&'a str, &'a str)>);
        let mut resolved: Vec<ResolvedSegment<'_>> = Vec::with_capacity(segments.len());
        let mut inherited: Option<(&str, &str)> = None;
        for mut seg in segments.into_iter().rev() {
            let last = light_stem(seg.last().expect("retained non-empty"));
            if let Some(&class) = self.classes.get(last.as_str()) {
                seg.pop();
                inherited = Some(class);
            }
            resolved.push((seg, inherited));
        }
        resolved.reverse();

        let mut out = Vec::with_capacity(resolved.len() * subjects.len());
        for (seg, class) in resolved {
            if seg.is_empty() {
                continue; // a bare class noun carries no parameter
            }
            let object = seg.join(" ");
            let (predicate, object_term) = match class {
                Some((suffix, prefix)) => {
                    (format!("{verb}_{suffix}"), Term::concept_in(prefix, object))
                }
                None => (verb.to_string(), Term::concept(object)),
            };
            for subject in &subjects {
                out.push(Triple::new(
                    Term::literal(subject.clone()),
                    Term::concept_in("Fun", predicate.clone()),
                    object_term.clone(),
                ));
            }
        }
        if out.is_empty() {
            return Err(ExtractError::NoObject);
        }
        Ok(out)
    }

    /// Extract triples from whole text (unparseable sentences are skipped —
    /// free prose around the requirements is expected).
    #[must_use]
    pub fn extract(&self, text: &str) -> Vec<Triple> {
        sentences(text)
            .into_iter()
            .filter_map(|s| self.extract_sentence_all(s).ok())
            .flatten()
            .collect()
    }
}

/// Strip a leading subordinate clause introduced by a condition keyword and
/// terminated by a comma. Sentences without one pass through unchanged.
fn strip_condition_clause(sentence: &str) -> &str {
    const CONDITIONS: [&str; 6] = ["when ", "while ", "if ", "during ", "after ", "before "];
    let trimmed = sentence.trim_start();
    let lower = trimmed.to_lowercase();
    if CONDITIONS.iter().any(|c| lower.starts_with(c)) {
        if let Some(comma) = trimmed.find(',') {
            return trimmed[comma + 1..].trim_start();
        }
    }
    trimmed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex() -> SvoExtractor {
        SvoExtractor::requirements()
    }

    #[test]
    fn paper_example_accept_cmd() {
        let t = ex()
            .extract_sentence("OBSW001 shall accept the start-up command")
            .unwrap();
        assert_eq!(
            t.to_string(),
            "('OBSW001', Fun:accept_cmd, CmdType:start-up)"
        );
    }

    #[test]
    fn paper_example_acquire_input() {
        let t = ex()
            .extract_sentence("The OBSW001 shall acquire the pre-launch phase input")
            .unwrap();
        assert_eq!(
            t.to_string(),
            "('OBSW001', Fun:acquire_in, InType:pre-launch phase)"
        );
    }

    #[test]
    fn paper_example_send_msg() {
        let t = ex()
            .extract_sentence("OBSW001 shall send the power amplifier message")
            .unwrap();
        assert_eq!(
            t.to_string(),
            "('OBSW001', Fun:send_msg, MsgType:power amplifier)"
        );
    }

    #[test]
    fn negation_folds_to_antonym() {
        let t = ex()
            .extract_sentence("OBSW001 shall not accept the start-up command")
            .unwrap();
        assert_eq!(t.predicate, Term::concept_in("Fun", "block_cmd"));
        // Subject and object unchanged — the inconsistency pattern.
        assert_eq!(t.subject, Term::literal("OBSW001"));
        assert_eq!(t.object, Term::concept_in("CmdType", "start-up"));
    }

    #[test]
    fn inflected_verbs_are_stemmed() {
        let t = ex()
            .extract_sentence("The controller must accepts the shutdown command")
            .unwrap();
        assert_eq!(t.predicate, Term::concept_in("Fun", "accept_cmd"));
    }

    #[test]
    fn object_without_class_noun() {
        let t = ex()
            .extract_sentence("OBSW002 shall monitor the battery voltage")
            .unwrap();
        assert_eq!(t.predicate, Term::concept_in("Fun", "monitor"));
        assert_eq!(t.object, Term::concept("battery voltage"));
    }

    #[test]
    fn error_cases() {
        let e = ex();
        assert_eq!(
            e.extract_sentence("no modal here").unwrap_err(),
            ExtractError::NoModal
        );
        assert_eq!(
            e.extract_sentence("shall accept the command").unwrap_err(),
            ExtractError::NoSubject
        );
        assert!(matches!(
            e.extract_sentence("OBSW001 shall frobnicate the widget")
                .unwrap_err(),
            ExtractError::NoVerb(_)
        ));
        assert_eq!(
            e.extract_sentence("OBSW001 shall accept").unwrap_err(),
            ExtractError::NoObject
        );
        assert_eq!(
            e.extract_sentence("OBSW001 shall accept the command")
                .unwrap_err(),
            ExtractError::NoObject // class noun alone carries no parameter
        );
    }

    #[test]
    fn extract_walks_sentences_and_skips_noise() {
        let text = "Introduction text without structure. \
                    OBSW001 shall accept the start-up command. \
                    Some rationale follows. \
                    OBSW001 shall send the heartbeat message.";
        let triples = ex().extract(text);
        assert_eq!(triples.len(), 2);
        assert_eq!(triples[0].predicate, Term::concept_in("Fun", "accept_cmd"));
        assert_eq!(triples[1].predicate, Term::concept_in("Fun", "send_msg"));
    }

    #[test]
    fn multi_word_subject() {
        let t = ex()
            .extract_sentence("The thermal control unit shall enable the heater output")
            .unwrap();
        assert_eq!(t.subject, Term::literal("thermal control unit"));
        assert_eq!(t.predicate, Term::concept_in("Fun", "enable_out"));
    }

    #[test]
    fn subject_conjunction_asserts_for_each_actor() {
        let ts = ex()
            .extract_sentence_all("OBSW001 and OBSW002 shall accept the start-up command")
            .unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].subject, Term::literal("OBSW001"));
        assert_eq!(ts[1].subject, Term::literal("OBSW002"));
        assert!(ts
            .iter()
            .all(|t| t.predicate == Term::concept_in("Fun", "accept_cmd")));
    }

    #[test]
    fn subject_and_object_conjunctions_cross_product() {
        let ts = ex()
            .extract_sentence_all(
                "OBSW001 and OBSW002 shall accept the start-up and shut-down commands",
            )
            .unwrap();
        assert_eq!(ts.len(), 4);
    }

    #[test]
    fn leading_condition_clause_is_stripped() {
        let t = ex()
            .extract_sentence("When in safe mode, OBSW001 shall reject the reboot command")
            .unwrap();
        assert_eq!(t.subject, Term::literal("OBSW001"));
        assert_eq!(t.predicate, Term::concept_in("Fun", "reject_cmd"));

        let t = ex()
            .extract_sentence(
                "During the pre-launch phase, the PSU001 shall enable the heater output",
            )
            .unwrap();
        assert_eq!(t.subject, Term::literal("PSU001"));
    }

    #[test]
    fn condition_keyword_without_comma_is_left_alone() {
        // "if" without a clause comma: parse proceeds (and fails on the
        // missing modal structure rather than mangling the sentence).
        assert!(ex().extract_sentence("if only this worked").is_err());
        // Condition words inside the sentence are untouched.
        let t = ex()
            .extract_sentence("OBSW001 shall monitor the battery voltage")
            .unwrap();
        assert_eq!(t.predicate, Term::concept_in("Fun", "monitor"));
    }

    #[test]
    fn error_display() {
        assert!(ExtractError::NoModal.to_string().contains("modal"));
        assert!(ExtractError::NoVerb("x".into()).to_string().contains('x'));
    }

    #[test]
    fn object_conjunction_yields_one_triple_per_conjunct() {
        // "a sentence can include several triples" — the paper, §II.
        let ts = ex()
            .extract_sentence_all("OBSW001 shall accept the start-up and shut-down commands")
            .unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(
            ts[0].to_string(),
            "('OBSW001', Fun:accept_cmd, CmdType:start-up)"
        );
        assert_eq!(
            ts[1].to_string(),
            "('OBSW001', Fun:accept_cmd, CmdType:shut-down)"
        );
    }

    #[test]
    fn per_conjunct_class_nouns() {
        let ts = ex()
            .extract_sentence_all(
                "OBSW001 shall send the heartbeat message and the status telemetry",
            )
            .unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].predicate, Term::concept_in("Fun", "send_msg"));
        assert_eq!(ts[0].object, Term::concept_in("MsgType", "heartbeat"));
        assert_eq!(ts[1].predicate, Term::concept_in("Fun", "send_tm"));
        assert_eq!(ts[1].object, Term::concept_in("TmType", "status"));
    }

    #[test]
    fn or_conjunction_also_splits() {
        let ts = ex()
            .extract_sentence_all("OBSW001 shall reject the reset or reboot commands")
            .unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[1].object, Term::concept_in("CmdType", "reboot"));
    }

    #[test]
    fn passive_voice_is_normalised() {
        let t = ex()
            .extract_sentence("The start-up command shall be accepted by OBSW001")
            .unwrap();
        assert_eq!(
            t.to_string(),
            "('OBSW001', Fun:accept_cmd, CmdType:start-up)"
        );
    }

    #[test]
    fn negated_passive_voice() {
        let t = ex()
            .extract_sentence("The start-up command shall not be accepted by the OBSW001")
            .unwrap();
        assert_eq!(t.predicate, Term::concept_in("Fun", "block_cmd"));
        assert_eq!(t.subject, Term::literal("OBSW001"));
    }

    #[test]
    fn passive_without_agent_fails() {
        assert_eq!(
            ex().extract_sentence("The command shall be accepted")
                .unwrap_err(),
            ExtractError::NoSubject
        );
    }

    #[test]
    fn extract_flattens_conjunctions_across_sentences() {
        let text = "OBSW001 shall accept the start-up and shut-down commands. \
                    OBSW001 shall send the heartbeat message.";
        let ts = ex().extract(text);
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn trailing_conjunction_of_bare_class_noun_is_skipped() {
        // "… the start-up command and message" — the second conjunct names
        // a class with no parameter; only the first produces a triple.
        let ts = ex()
            .extract_sentence_all("OBSW001 shall accept the start-up command and message")
            .unwrap();
        assert_eq!(ts.len(), 1);
    }
}
