//! Tokenization and sentence splitting.

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Alphabetic (or hyphenated alphabetic) word, e.g. `start-up`.
    Word,
    /// Numeric or alphanumeric identifier, e.g. `OBSW001`, `42`.
    Identifier,
    /// Punctuation.
    Punct,
}

/// One token with its original text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text as it appeared (case preserved).
    pub text: String,
    /// Its lexical class.
    pub kind: TokenKind,
}

impl Token {
    /// Lowercased text (words are matched case-insensitively).
    #[must_use]
    pub fn lower(&self) -> String {
        self.text.to_lowercase()
    }
}

fn classify(text: &str) -> TokenKind {
    let has_digit = text.chars().any(|c| c.is_ascii_digit());
    let has_alpha = text.chars().any(char::is_alphabetic);
    if has_digit {
        TokenKind::Identifier
    } else if has_alpha {
        TokenKind::Word
    } else {
        TokenKind::Punct
    }
}

/// Tokenize one sentence. Words keep internal hyphens (`start-up`,
/// `pre-launch`); everything else splits on non-alphanumerics.
#[must_use]
pub fn tokenize(sentence: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let chars: Vec<char> = sentence.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        let joins = c.is_alphanumeric()
            || c == '_'
            || (c == '-'
                && i > 0
                && chars[i - 1].is_alphanumeric()
                && chars.get(i + 1).copied().is_some_and(char::is_alphanumeric));
        if joins {
            cur.push(c);
        } else {
            if !cur.is_empty() {
                out.push(Token {
                    kind: classify(&cur),
                    text: std::mem::take(&mut cur),
                });
            }
            if !c.is_whitespace() {
                out.push(Token {
                    text: c.to_string(),
                    kind: TokenKind::Punct,
                });
            }
        }
    }
    if !cur.is_empty() {
        out.push(Token {
            kind: classify(&cur),
            text: cur,
        });
    }
    out
}

/// Split text into sentences on `.`, `!`, `?` and newlines, ignoring
/// periods inside decimal numbers (`1.5 seconds`).
#[must_use]
pub fn sentences(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut start = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        let is_break = match b {
            b'!' | b'?' | b'\n' => true,
            b'.' => {
                let prev_digit = i > 0 && bytes[i - 1].is_ascii_digit();
                let next_digit = bytes.get(i + 1).is_some_and(u8::is_ascii_digit);
                !(prev_digit && next_digit)
            }
            _ => false,
        };
        if is_break {
            let s = text[start..i].trim();
            if !s.is_empty() {
                out.push(s);
            }
            start = i + 1;
        }
    }
    let tail = text[start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_requirement_sentence() {
        let toks = tokenize("OBSW001 shall accept the start-up command");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["OBSW001", "shall", "accept", "the", "start-up", "command"]
        );
        assert_eq!(toks[0].kind, TokenKind::Identifier);
        assert_eq!(toks[1].kind, TokenKind::Word);
        assert_eq!(toks[4].kind, TokenKind::Word);
    }

    #[test]
    fn hyphen_only_joins_between_alphanumerics() {
        let toks = tokenize("pre-launch - phase -x");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["pre-launch", "-", "phase", "-", "x"]);
    }

    #[test]
    fn punctuation_is_kept_as_tokens() {
        let toks = tokenize("stop, then go.");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["stop", ",", "then", "go", "."]);
        assert_eq!(toks[1].kind, TokenKind::Punct);
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t ").is_empty());
    }

    #[test]
    fn sentence_split_basic() {
        let s = sentences("First one. Second one! Third?");
        assert_eq!(s, vec!["First one", "Second one", "Third"]);
    }

    #[test]
    fn sentence_split_spares_decimals() {
        let s = sentences("Respond within 1.5 seconds. Then stop.");
        assert_eq!(s, vec!["Respond within 1.5 seconds", "Then stop"]);
    }

    #[test]
    fn sentence_split_on_newlines() {
        let s = sentences("line one\nline two\n");
        assert_eq!(s, vec!["line one", "line two"]);
    }

    #[test]
    fn lower_helper() {
        let t = Token {
            text: "ShAlL".into(),
            kind: TokenKind::Word,
        };
        assert_eq!(t.lower(), "shall");
    }
}
