//! Lightweight NLP substrate: from requirement prose to triples.
//!
//! The paper assumes "NLP facilities to transform a text in a set of
//! triples can be easily exploited" and deliberately does not specify them.
//! This crate provides the concrete facility the rest of the system uses:
//! a tokenizer, sentence splitter, stopword list, light stemmer, and an
//! SVO (subject–verb–object) extractor tuned to the controlled grammar of
//! software requirements (`X shall <verb> the <parameter> <class>`).
//!
//! The extractor reproduces the paper's own notation: from
//!
//! ```text
//! OBSW001 shall accept the start-up command.
//! ```
//!
//! it derives `('OBSW001', Fun:accept_cmd, CmdType:start-up)` — exactly the
//! resource shape of the paper's §III-A example (`Fun:acquire_in`,
//! `InType:pre-launch phase`, `Fun:send_msg`, `MsgType:power amplifier`).
//!
//! # Example
//!
//! ```
//! use semtree_nlp::SvoExtractor;
//!
//! let ex = SvoExtractor::requirements();
//! let triples = ex.extract("OBSW001 shall accept the start-up command.");
//! assert_eq!(triples.len(), 1);
//! assert_eq!(triples[0].to_string(), "('OBSW001', Fun:accept_cmd, CmdType:start-up)");
//! ```

mod extract;
mod stem;
mod stopwords;
mod tokenizer;

pub use extract::{ExtractError, SvoExtractor};
pub use stem::light_stem;
pub use stopwords::is_stopword;
pub use tokenizer::{sentences, tokenize, Token, TokenKind};
