//! A light inflectional stemmer (Porter step-1 flavour).
//!
//! Enough to normalise requirement verbs — `accepts`/`accepted`/
//! `accepting` → `accept` — without the full Porter machinery the
//! controlled grammar does not need.

/// Strip common inflectional suffixes from a lowercase word.
#[must_use]
pub fn light_stem(word: &str) -> String {
    let w = word.to_lowercase();
    // -sses → -ss, -ies → -y, -s (not -ss, -us)
    if let Some(base) = w.strip_suffix("sses") {
        return format!("{base}ss");
    }
    if let Some(base) = w.strip_suffix("ies") {
        if !base.is_empty() {
            return format!("{base}y");
        }
    }
    if w.ends_with('s') && !w.ends_with("ss") && !w.ends_with("us") && w.len() > 3 {
        return w[..w.len() - 1].to_string();
    }
    // -ing / -ed with consonant-doubling and silent-e restoration.
    for suffix in ["ing", "ed"] {
        if let Some(base) = w.strip_suffix(suffix) {
            if base.len() < 2 {
                continue;
            }
            let chars: Vec<char> = base.chars().collect();
            let last = chars[chars.len() - 1];
            let prev = chars[chars.len() - 2];
            // stopped → stop, blocked → block
            if last == prev && matches!(last, 'b' | 'd' | 'g' | 'm' | 'n' | 'p' | 'r' | 't') {
                return base[..base.len() - 1].to_string();
            }
            // Silent-e restoration: received → receive, enabling → enable,
            // stored → store (CVC with a single vowel-consonant run).
            let restore_e = last == 'v'
                || (last == 'l' && !is_vowel(prev))
                || (ends_consonant_vowel_consonant(&chars) && measure(&chars) == 1);
            if restore_e && !base.ends_with('e') {
                return format!("{base}e");
            }
            return base.to_string();
        }
    }
    w
}

fn is_vowel(c: char) -> bool {
    matches!(c, 'a' | 'e' | 'i' | 'o' | 'u')
}

/// Porter's *measure*: the number of vowel→consonant transitions.
fn measure(chars: &[char]) -> usize {
    let mut m = 0;
    let mut prev_vowel = false;
    for &c in chars {
        let v = is_vowel(c);
        if prev_vowel && !v {
            m += 1;
        }
        prev_vowel = v;
    }
    m
}

fn ends_consonant_vowel_consonant(chars: &[char]) -> bool {
    if chars.len() < 3 {
        return false;
    }
    let n = chars.len();
    !is_vowel(chars[n - 1])
        && is_vowel(chars[n - 2])
        && !is_vowel(chars[n - 3])
        && !matches!(chars[n - 1], 'w' | 'x' | 'y')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plural_s() {
        assert_eq!(light_stem("accepts"), "accept");
        assert_eq!(light_stem("commands"), "command");
        assert_eq!(light_stem("sends"), "send");
    }

    #[test]
    fn s_guards() {
        assert_eq!(light_stem("pass"), "pass");
        assert_eq!(light_stem("status"), "status");
        assert_eq!(light_stem("gas"), "gas"); // too short to strip
    }

    #[test]
    fn ies_and_sses() {
        assert_eq!(light_stem("verifies"), "verify");
        assert_eq!(light_stem("passes"), "pass");
    }

    #[test]
    fn ing_forms() {
        assert_eq!(light_stem("accepting"), "accept");
        assert_eq!(light_stem("stopping"), "stop");
        assert_eq!(light_stem("enabling"), "enable");
        assert_eq!(light_stem("monitoring"), "monitor");
    }

    #[test]
    fn ed_forms() {
        assert_eq!(light_stem("accepted"), "accept");
        assert_eq!(light_stem("blocked"), "block");
        assert_eq!(light_stem("received"), "receive");
    }

    #[test]
    fn lowercases() {
        assert_eq!(light_stem("ACCEPTS"), "accept");
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(light_stem("go"), "go");
        assert_eq!(light_stem("ed"), "ed");
        assert_eq!(light_stem("ing"), "ing");
    }
}
