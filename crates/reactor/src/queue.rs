//! Bounded request admission and dispatch: the backpressure heart of
//! the reactor.
//!
//! One [`ServeQueue`] sits between the event loop (producer: admits
//! decoded requests) and the executor threads (consumers: run the
//! service and complete slots). It enforces the **global** in-flight
//! bound — admission fails with [`Push::GlobalFull`] so the reactor can
//! shed the request with a typed `Overloaded` response instead of
//! stalling — and tracks **per-connection** in-flight counts the
//! reactor consults to stop reading a socket whose pipeline is full
//! (backpressure).
//!
//! A slot stays occupied from admission until
//! [`complete`](ServeQueue::complete), which may happen *after* the
//! connection that issued the request has closed — the queue-full /
//! connection-close race the `semtree-conc` model checker explores. The
//! invariant: every admitted slot is released exactly once, so the
//! global count never underflows and drains to zero.
//!
//! Generic over the concurrency shim; production uses [`StdShim`].

use std::collections::{HashMap, VecDeque};

use semtree_conc::shim::{Shim, StdShim};

/// Outcome of [`ServeQueue::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Push {
    /// The request was admitted and queued for an executor.
    Granted,
    /// The global in-flight bound is reached — shed this request.
    GlobalFull,
    /// The queue has shut down — drop the request.
    Closed,
}

#[derive(Debug)]
struct QueueState<T> {
    jobs: VecDeque<(u64, T)>,
    /// Admitted-but-not-completed slots across all connections.
    global: usize,
    /// Per-connection admitted-but-not-completed counts. An entry is
    /// removed when its connection closes; late completions then only
    /// release the global slot.
    per_conn: HashMap<u64, usize>,
    closed: bool,
    /// A release was attempted on an empty slot count — a bookkeeping
    /// bug. Never set in a correct reactor; the model checker asserts
    /// on it.
    underflowed: bool,
}

/// Bounded multi-producer/multi-consumer job queue with per-connection
/// accounting (see module docs).
#[derive(Debug)]
pub struct ServeQueue<T: Send + 'static, S: Shim = StdShim> {
    inner: S::Mutex<QueueState<T>>,
    cv: S::Condvar,
    global_cap: usize,
}

impl<T: Send + 'static, S: Shim> ServeQueue<T, S> {
    /// An empty queue admitting at most `global_cap` in-flight requests.
    #[must_use]
    pub fn new(global_cap: usize) -> Self {
        ServeQueue {
            inner: S::mutex(QueueState {
                jobs: VecDeque::new(),
                global: 0,
                per_conn: HashMap::new(),
                closed: false,
                underflowed: false,
            }),
            cv: S::condvar(),
            global_cap: global_cap.max(1),
        }
    }

    /// Admit one request from connection `conn` and queue it for an
    /// executor. On [`Push::Granted`] the caller owes exactly one
    /// [`complete`](Self::complete) for the slot.
    pub fn push(&self, conn: u64, job: T) -> Push {
        {
            let mut st = S::lock(&self.inner);
            if st.closed {
                return Push::Closed;
            }
            if st.global >= self.global_cap {
                return Push::GlobalFull;
            }
            st.global += 1;
            *st.per_conn.entry(conn).or_insert(0) += 1;
            st.jobs.push_back((conn, job));
        }
        S::notify_one(&self.cv);
        Push::Granted
    }

    /// Take the next queued job, blocking until one arrives. `None`
    /// means the queue has shut down and drained — the executor should
    /// exit. Popping does **not** release the slot; the job is still
    /// in flight until [`complete`](Self::complete).
    pub fn pop(&self) -> Option<(u64, T)> {
        let mut st = S::lock(&self.inner);
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = S::wait(&self.cv, st, &self.inner);
        }
    }

    /// Release the slot admitted for connection `conn`. Safe to call
    /// after [`close_conn`](Self::close_conn) — the global slot is
    /// still released exactly once.
    pub fn complete(&self, conn: u64) {
        {
            let mut st = S::lock(&self.inner);
            if let Some(g) = st.global.checked_sub(1) {
                st.global = g;
            } else {
                st.underflowed = true;
            }
            if let Some(count) = st.per_conn.get_mut(&conn) {
                if let Some(c) = count.checked_sub(1) {
                    *count = c;
                } else {
                    st.underflowed = true;
                }
            }
        }
        // Wake idle-waiters (and any parked executor re-checking close).
        S::notify_all(&self.cv);
    }

    /// Forget connection `conn`'s per-connection accounting (it
    /// closed). In-flight jobs it admitted still hold their global
    /// slots until their executors call [`complete`](Self::complete).
    pub fn close_conn(&self, conn: u64) {
        S::lock(&self.inner).per_conn.remove(&conn);
    }

    /// In-flight requests admitted for `conn` (zero once closed).
    #[must_use]
    pub fn conn_in_flight(&self, conn: u64) -> usize {
        S::lock(&self.inner)
            .per_conn
            .get(&conn)
            .copied()
            .unwrap_or(0)
    }

    /// Total in-flight requests (queued + executing).
    #[must_use]
    pub fn global_in_flight(&self) -> usize {
        S::lock(&self.inner).global
    }

    /// Did a slot release ever underflow? Always `false` unless the
    /// admission/completion pairing is broken (model-checked).
    #[must_use]
    pub fn underflowed(&self) -> bool {
        S::lock(&self.inner).underflowed
    }

    /// Block until every in-flight request has completed or
    /// `timeout_nanos` elapse. Returns `true` when idle.
    #[must_use]
    pub fn wait_idle(&self, timeout_nanos: u64) -> bool {
        let deadline = S::now_nanos().saturating_add(timeout_nanos);
        let mut st = S::lock(&self.inner);
        loop {
            if st.global == 0 {
                return true;
            }
            let now = S::now_nanos();
            if now >= deadline {
                return false;
            }
            let (guard, _timed_out) = S::wait_timeout(&self.cv, st, &self.inner, deadline - now);
            st = guard;
        }
    }

    /// Stop admitting and wake every parked executor; queued jobs are
    /// still handed out so their slots can complete.
    pub fn shutdown(&self) {
        S::lock(&self.inner).closed = true;
        S::notify_all(&self.cv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    type Q = ServeQueue<u32, StdShim>;

    #[test]
    fn admission_respects_the_global_cap() {
        let q = Q::new(2);
        assert_eq!(q.push(1, 10), Push::Granted);
        assert_eq!(q.push(2, 20), Push::Granted);
        assert_eq!(q.push(1, 30), Push::GlobalFull);
        assert_eq!(q.global_in_flight(), 2);
        assert_eq!(q.conn_in_flight(1), 1);
        // Completing frees a slot for new admissions.
        let (conn, job) = q.pop().unwrap();
        assert_eq!((conn, job), (1, 10));
        q.complete(conn);
        assert_eq!(q.push(1, 30), Push::Granted);
    }

    #[test]
    fn complete_after_close_releases_the_global_slot_once() {
        let q = Q::new(4);
        assert_eq!(q.push(7, 1), Push::Granted);
        assert_eq!(q.push(7, 2), Push::Granted);
        q.close_conn(7);
        assert_eq!(q.conn_in_flight(7), 0);
        assert_eq!(q.global_in_flight(), 2);
        q.complete(7);
        q.complete(7);
        assert_eq!(q.global_in_flight(), 0);
        assert!(!q.underflowed());
    }

    #[test]
    fn shutdown_unblocks_poppers_after_draining() {
        let q = Arc::new(Q::new(4));
        assert_eq!(q.push(1, 5), Push::Granted);
        let q2 = Arc::clone(&q);
        let worker = std::thread::spawn(move || {
            let mut seen = Vec::new();
            while let Some((conn, job)) = q2.pop() {
                seen.push(job);
                q2.complete(conn);
            }
            seen
        });
        q.shutdown();
        assert_eq!(worker.join().unwrap(), vec![5]);
        assert!(q.wait_idle(0));
    }

    #[test]
    fn wait_idle_times_out_while_slots_are_held() {
        let q = Q::new(4);
        assert_eq!(q.push(1, 1), Push::Granted);
        assert!(!q.wait_idle(2_000_000));
        let (conn, _) = q.pop().unwrap();
        q.complete(conn);
        assert!(q.wait_idle(u64::MAX));
    }
}
