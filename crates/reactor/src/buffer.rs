//! Per-connection read/write buffers over the length-prefixed framing.
//!
//! Non-blocking sockets deliver bytes in arbitrary chunks, so the
//! reactor accumulates them here: [`FrameReader`] re-assembles complete
//! `[u32 BE length][payload]` frames out of whatever arrived, and
//! [`WriteQueue`] tracks partially written responses so a `WouldBlock`
//! mid-frame resumes at the right offset. Both are pure in-memory state
//! machines, unit-testable without sockets.

use std::collections::VecDeque;
use std::io::{self, Write};

use semtree_net::MAX_FRAME_LEN;

/// Incremental parser for length-prefixed frames.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameReader {
    /// An empty reader.
    #[must_use]
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Append bytes read off the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix space before growing.
        if self.pos > 0 && (self.pos >= 4096 || self.pos == self.buf.len()) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Is a complete frame available to [`next_frame`](Self::next_frame)?
    ///
    /// # Errors
    /// [`io::ErrorKind::InvalidData`] when the buffered length prefix
    /// exceeds [`MAX_FRAME_LEN`] — the stream is hostile or corrupt and
    /// the connection should be dropped.
    pub fn has_frame(&self) -> io::Result<bool> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(false);
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds maximum {MAX_FRAME_LEN}"),
            ));
        }
        Ok(avail.len() >= 4 + len)
    }

    /// Consume and return the next complete frame's payload, or `None`
    /// when more bytes are needed.
    ///
    /// # Errors
    /// Same as [`has_frame`](Self::has_frame).
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        if !self.has_frame()? {
            return Ok(None);
        }
        let avail = &self.buf[self.pos..];
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        let payload = avail[4..4 + len].to_vec();
        self.pos += 4 + len;
        Ok(Some(payload))
    }
}

/// Outbound frames with partial-write resumption.
#[derive(Debug, Default)]
pub struct WriteQueue {
    queue: VecDeque<Vec<u8>>,
    /// Bytes of the front buffer already written to the socket.
    offset: usize,
}

impl WriteQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        WriteQueue::default()
    }

    /// Queue one frame (length prefix is prepended here).
    ///
    /// # Errors
    /// [`io::ErrorKind::InvalidInput`] when `payload` exceeds the u32
    /// length-prefix range.
    pub fn push_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        let len = u32::try_from(payload.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32 length"))?;
        let mut framed = Vec::with_capacity(4 + payload.len());
        framed.extend_from_slice(&len.to_be_bytes());
        framed.extend_from_slice(payload);
        self.queue.push_back(framed);
        Ok(())
    }

    /// Nothing left to write?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Bytes queued but not yet written.
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.queue.iter().map(Vec::len).sum::<usize>() - self.offset
    }

    /// Write as much as the socket will take without blocking. Returns
    /// once the queue is drained or the write would block.
    ///
    /// # Errors
    /// Propagates socket errors other than `WouldBlock`/`Interrupted`;
    /// a zero-length write surfaces as [`io::ErrorKind::WriteZero`].
    pub fn write_to(&mut self, stream: &mut impl Write) -> io::Result<()> {
        while let Some(front) = self.queue.front() {
            match stream.write(&front[self.offset..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ));
                }
                Ok(n) => {
                    self.offset += n;
                    if self.offset == front.len() {
                        self.queue.pop_front();
                        self.offset = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut out = (u32::try_from(payload.len()).unwrap())
            .to_be_bytes()
            .to_vec();
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn reader_reassembles_frames_from_byte_dribble() {
        let mut wire = framed(b"first");
        wire.extend(framed(b""));
        wire.extend(framed(&[9u8; 300]));
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(3) {
            reader.extend(chunk);
            while let Some(frame) = reader.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], b"first");
        assert_eq!(got[1], b"");
        assert_eq!(got[2].len(), 300);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn reader_rejects_hostile_length_without_buffering_it() {
        let mut reader = FrameReader::new();
        reader.extend(&u32::MAX.to_be_bytes());
        assert!(reader.has_frame().is_err());
        assert!(reader.next_frame().is_err());
    }

    #[test]
    fn reader_accepts_length_exactly_at_the_maximum() {
        let mut reader = FrameReader::new();
        reader.extend(&(u32::try_from(MAX_FRAME_LEN).unwrap()).to_be_bytes());
        // Not an error — just incomplete until 256 MiB arrive.
        assert!(!reader.has_frame().unwrap());
    }

    #[test]
    fn reader_reclaims_consumed_space() {
        let mut reader = FrameReader::new();
        for _ in 0..100 {
            reader.extend(&framed(&[7u8; 128]));
            assert_eq!(reader.next_frame().unwrap().unwrap(), [7u8; 128]);
        }
        assert_eq!(reader.buffered(), 0);
        // The internal buffer cannot have accumulated all 100 frames.
        assert!(reader.buf.len() < 2 * (4 + 128 + 4096));
    }

    /// A writer that accepts at most `cap` bytes per call, then blocks.
    struct Throttled {
        sink: Vec<u8>,
        cap: usize,
        calls_until_block: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.calls_until_block == 0 {
                self.calls_until_block = 1;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "throttled"));
            }
            self.calls_until_block -= 1;
            let n = buf.len().min(self.cap);
            self.sink.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_queue_resumes_partial_writes_across_would_block() {
        let mut wq = WriteQueue::new();
        wq.push_frame(b"hello pipelined world").unwrap();
        wq.push_frame(b"second frame").unwrap();
        let mut sink = Throttled {
            sink: Vec::new(),
            cap: 5,
            calls_until_block: 2,
        };
        while !wq.is_empty() {
            wq.write_to(&mut sink).unwrap();
            sink.calls_until_block = 2;
        }
        let mut expected = framed(b"hello pipelined world");
        expected.extend(framed(b"second frame"));
        assert_eq!(sink.sink, expected);
        assert_eq!(wq.pending_bytes(), 0);
    }
}
