//! Raw readiness syscalls and the [`Poller`] abstraction over them.
//!
//! The workspace is dependency-free, so readiness notification cannot
//! come from `mio`/`libc`; instead this module declares the handful of
//! symbols it needs (part of every libc the workspace can link against)
//! and wraps them in safe types. This is the only module in the
//! workspace allowed to contain `unsafe` — everything above it works
//! with the safe [`Poller`] trait.
//!
//! Two backends implement [`Poller`]:
//!
//! - [`Backend::Epoll`] / [`Backend::EpollEdge`] (Linux): persistent fd
//!   registration in a kernel interest list; `epoll_wait` returns only
//!   the ready descriptors, so a quiet connection costs nothing per
//!   iteration. `Epoll` is level-triggered; `EpollEdge` arms
//!   `EPOLLET`, which the reactor's drain-until-`WouldBlock` reads and
//!   writes make safe.
//! - [`Backend::Poll`] (portable fallback): the original `poll(2)`
//!   path, rebuilding the fd array from the registration table on every
//!   [`wait`](Poller::wait) — O(fds) per iteration, but runs on any
//!   POSIX system.
#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;

/// Readable data (or a pending accept on a listener).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition on the fd (always reported, need not be requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always reported, need not be requested).
pub const POLLHUP: i16 = 0x010;

/// One entry of a `poll(2)` fd set, layout-identical to libc's
/// `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT` bits).
    pub events: i16,
    /// Returned events, filled by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events`.
    #[must_use]
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Did the kernel report any of `bits` for this entry?
    #[must_use]
    pub fn has(&self, bits: i16) -> bool {
        self.revents & bits != 0
    }
}

extern "C" {
    // `nfds_t` is `unsigned long` on every Linux ABI this workspace
    // targets; `timeout` is milliseconds (-1 = infinite).
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// Block until at least one entry in `fds` is ready or `timeout_ms`
/// elapses (`-1` waits forever). Returns the number of ready entries
/// (zero on timeout) and retries transparently on `EINTR`.
///
/// # Errors
/// Any `poll(2)` failure other than `EINTR` (e.g. `EINVAL` for an
/// oversized set) is returned as the corresponding [`io::Error`].
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-layout structs; the kernel writes only the
        // `revents` field of the `fds.len()` entries passed.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

// ----------------------------------------------------------------------
// The Poller trait
// ----------------------------------------------------------------------

/// Which readiness conditions a registration watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the fd has readable data (or a pending accept).
    pub readable: bool,
    /// Wake when the fd can be written without blocking.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// No interest: the fd stays registered (errors/hangups still
    /// surface) but neither data nor write space wakes the loop.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (data, accept, or EOF pending).
    pub readable: bool,
    /// Writable without blocking.
    pub writable: bool,
    /// Error or hangup reported by the kernel.
    pub error: bool,
}

/// Readiness multiplexing behind a backend-neutral interface: register
/// fds once under a caller-chosen token, then [`wait`](Poller::wait)
/// repeatedly. Implementations: epoll (persistent kernel interest
/// list) and `poll(2)` (portable rebuild-per-wait fallback).
pub trait Poller: Send {
    /// Start watching `fd` under `token` with the given interest.
    ///
    /// # Errors
    /// Kernel registration failure (bad fd, duplicate registration).
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;

    /// Change the interest set (and token) of an already-registered fd.
    ///
    /// # Errors
    /// Kernel failure, or the fd was never registered.
    fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;

    /// Stop watching `fd` entirely.
    ///
    /// # Errors
    /// Kernel failure; an unknown fd is *not* an error (close races).
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;

    /// Clear `events` and fill it with ready registrations, blocking up
    /// to `timeout_ms` milliseconds (0 = poll without blocking).
    ///
    /// # Errors
    /// A fatal readiness-syscall failure (`EINTR` is retried inside).
    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()>;
}

/// Which [`Poller`] implementation a reactor shard uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll`, level-triggered (the default on Linux).
    Epoll,
    /// Linux `epoll` with `EPOLLET` (edge-triggered) connection
    /// registrations.
    EpollEdge,
    /// Portable `poll(2)`: the fd array is rebuilt every wait.
    Poll,
}

impl Default for Backend {
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            Backend::Epoll
        } else {
            Backend::Poll
        }
    }
}

impl Backend {
    /// Parse a CLI-style backend name (`epoll`, `epoll-edge`, `poll`).
    ///
    /// # Errors
    /// Returns the unrecognised name.
    pub fn parse(name: &str) -> Result<Backend, String> {
        match name {
            "epoll" => Ok(Backend::Epoll),
            "epoll-edge" => Ok(Backend::EpollEdge),
            "poll" => Ok(Backend::Poll),
            other => Err(format!(
                "unknown poller backend {other:?} (expected epoll, epoll-edge, or poll)"
            )),
        }
    }
}

/// Construct the poller for `backend`. On non-Linux targets the epoll
/// backends quietly fall back to `poll(2)` — same trait, same
/// semantics, linear wait cost.
///
/// # Errors
/// Kernel failure creating the epoll instance.
pub fn new_poller(backend: Backend) -> io::Result<Box<dyn Poller>> {
    match backend {
        Backend::Poll => Ok(Box::new(PollPoller::new())),
        #[cfg(target_os = "linux")]
        Backend::Epoll => Ok(Box::new(EpollPoller::new(false)?)),
        #[cfg(target_os = "linux")]
        Backend::EpollEdge => Ok(Box::new(EpollPoller::new(true)?)),
        #[cfg(not(target_os = "linux"))]
        Backend::Epoll | Backend::EpollEdge => Ok(Box::new(PollPoller::new())),
    }
}

// ----------------------------------------------------------------------
// poll(2) backend
// ----------------------------------------------------------------------

/// The portable fallback: a registration table flattened into a fresh
/// `pollfd` array on every wait (the O(fds) rebuild the epoll backend
/// exists to avoid).
struct PollPoller {
    entries: Vec<(RawFd, u64, Interest)>,
    fds: Vec<PollFd>,
}

impl PollPoller {
    fn new() -> Self {
        PollPoller {
            entries: Vec::new(),
            fds: Vec::new(),
        }
    }
}

impl Poller for PollPoller {
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        if self.entries.iter().any(|&(f, _, _)| f == fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.entries.push((fd, token, interest));
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let entry = self
            .entries
            .iter_mut()
            .find(|(f, _, _)| *f == fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        entry.1 = token;
        entry.2 = interest;
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.entries.retain(|&(f, _, _)| f != fd);
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        events.clear();
        self.fds.clear();
        for &(fd, _, interest) in &self.entries {
            let mut bits = 0i16;
            if interest.readable {
                bits |= POLLIN;
            }
            if interest.writable {
                bits |= POLLOUT;
            }
            self.fds.push(PollFd::new(fd, bits));
        }
        let ready = poll_fds(&mut self.fds, timeout_ms)?;
        if ready == 0 {
            return Ok(());
        }
        for (entry, fd) in self.entries.iter().zip(self.fds.iter()) {
            if fd.revents != 0 {
                events.push(Event {
                    token: entry.1,
                    readable: fd.has(POLLIN),
                    writable: fd.has(POLLOUT),
                    error: fd.has(POLLERR | POLLHUP),
                });
            }
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// epoll backend (Linux)
// ----------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod epoll {
    use super::{Event, Interest, Poller};
    use std::io;
    use std::os::fd::RawFd;

    const EPOLL_CLOEXEC: i32 = 0x8_0000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLET: u32 = 1 << 31;

    /// Layout-identical to the kernel's `struct epoll_event`, which is
    /// `__attribute__((packed))` on x86-64.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// The Linux backend: one epoll instance per reactor shard with
    /// persistent registrations — `wait` returns only ready fds, so
    /// idle connections cost nothing per iteration.
    pub(super) struct EpollPoller {
        epfd: RawFd,
        edge: bool,
        buf: Vec<EpollEvent>,
    }

    impl EpollPoller {
        pub(super) fn new(edge: bool) -> io::Result<Self> {
            // SAFETY: epoll_create1 takes a flags word and returns a
            // fresh fd (or -1); no memory is passed to the kernel.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(EpollPoller {
                epfd,
                edge,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn bits(&self, interest: Interest) -> u32 {
            let mut events = 0u32;
            if interest.readable {
                events |= EPOLLIN;
            }
            if interest.writable {
                events |= EPOLLOUT;
            }
            if self.edge {
                events |= EPOLLET;
            }
            events
        }

        fn ctl(&self, op: i32, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
            let mut ev = event.unwrap_or(EpollEvent { events: 0, data: 0 });
            // SAFETY: `ev` is a valid, exclusively borrowed
            // `#[repr(C, packed)]` struct matching the kernel's
            // epoll_event layout; the kernel only reads it (and ignores
            // the pointer entirely for EPOLL_CTL_DEL on modern kernels,
            // where passing a valid dummy is still correct).
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
    }

    impl Drop for EpollPoller {
        fn drop(&mut self) {
            // SAFETY: `epfd` is a live epoll fd owned exclusively by
            // this poller; closing it at most once is the Drop contract.
            unsafe {
                close(self.epfd);
            }
        }
    }

    impl Poller for EpollPoller {
        fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let ev = EpollEvent {
                events: self.bits(interest),
                data: token,
            };
            self.ctl(EPOLL_CTL_ADD, fd, Some(ev))
        }

        fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let ev = EpollEvent {
                events: self.bits(interest),
                data: token,
            };
            self.ctl(EPOLL_CTL_MOD, fd, Some(ev))
        }

        fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            match self.ctl(EPOLL_CTL_DEL, fd, None) {
                // A close may already have removed the fd from the
                // interest list; deregistering it again is not a bug.
                Err(e) if e.raw_os_error() == Some(2) || e.raw_os_error() == Some(9) => Ok(()),
                other => other,
            }
        }

        fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            let ready = loop {
                // SAFETY: `buf` is a valid, exclusively borrowed slice
                // of `#[repr(C, packed)]` epoll_event structs; the
                // kernel writes at most `buf.len()` entries and returns
                // how many.
                let rc = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        i32::try_from(self.buf.len()).unwrap_or(i32::MAX),
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in &self.buf[..ready] {
                let bits = ev.events;
                events.push(Event {
                    token: ev.data,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            // A full buffer means more fds may be ready; grow so the
            // next wait drains them in one call.
            if ready == self.buf.len() {
                self.buf
                    .resize(self.buf.len() * 2, EpollEvent { events: 0, data: 0 });
            }
            Ok(())
        }
    }
}

#[cfg(target_os = "linux")]
use epoll::EpollPoller;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poll_times_out_on_a_silent_socket() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let ready = poll_fds(&mut fds, 10).unwrap();
        assert_eq!(ready, 0);
        assert!(!fds[0].has(POLLIN));
    }

    #[test]
    fn poll_reports_readable_after_a_write() {
        let (a, mut b) = UnixStream::pair().unwrap();
        b.write_all(&[1]).unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let ready = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(ready, 1);
        assert!(fds[0].has(POLLIN));
    }

    #[test]
    fn poll_reports_hangup_on_a_closed_peer() {
        let (a, b) = UnixStream::pair().unwrap();
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let ready = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(ready, 1);
        assert!(fds[0].has(POLLIN | POLLHUP));
    }

    /// Every backend reports the same readiness story for the same
    /// socket activity: silent → timeout, write → readable on the right
    /// token, hangup → error/readable, deregister → silence.
    #[test]
    fn backends_agree_on_readiness() {
        for backend in [Backend::Poll, Backend::Epoll, Backend::EpollEdge] {
            let mut poller = new_poller(backend).unwrap();
            let mut events = Vec::new();
            let (a, mut b) = UnixStream::pair().unwrap();
            poller.register(a.as_raw_fd(), 7, Interest::READ).unwrap();

            poller.wait(&mut events, 0).unwrap();
            assert!(events.is_empty(), "{backend:?}: silent socket woke");

            b.write_all(&[42]).unwrap();
            poller.wait(&mut events, 1000).unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert_eq!(events[0].token, 7, "{backend:?}");
            assert!(events[0].readable, "{backend:?}");

            // Writable interest on an idle socket fires immediately.
            poller
                .reregister(
                    a.as_raw_fd(),
                    9,
                    Interest {
                        readable: false,
                        writable: true,
                    },
                )
                .unwrap();
            poller.wait(&mut events, 1000).unwrap();
            assert!(
                events.iter().any(|e| e.token == 9 && e.writable),
                "{backend:?}: no writable event"
            );

            poller.deregister(a.as_raw_fd()).unwrap();
            poller.wait(&mut events, 0).unwrap();
            assert!(events.is_empty(), "{backend:?}: deregistered fd woke");
        }
    }

    #[test]
    fn backend_names_parse() {
        assert_eq!(Backend::parse("epoll"), Ok(Backend::Epoll));
        assert_eq!(Backend::parse("epoll-edge"), Ok(Backend::EpollEdge));
        assert_eq!(Backend::parse("poll"), Ok(Backend::Poll));
        assert!(Backend::parse("kqueue").is_err());
    }
}
