//! The one raw syscall the reactor needs: `poll(2)`.
//!
//! The workspace is dependency-free, so readiness notification cannot
//! come from `mio`/`libc`; instead this module declares the `poll`
//! symbol (part of every libc the workspace can link against) and wraps
//! it in a safe, `EINTR`-retrying function over a `#[repr(C)]` fd set.
//! This is the only module in the workspace allowed to contain `unsafe`
//! — everything above it works with safe [`poll`] calls on
//! [`PollFd`] slices.
#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;

/// Readable data (or a pending accept on a listener).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition on the fd (always reported, need not be requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always reported, need not be requested).
pub const POLLHUP: i16 = 0x010;

/// One entry of a `poll(2)` fd set, layout-identical to libc's
/// `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT` bits).
    pub events: i16,
    /// Returned events, filled by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events`.
    #[must_use]
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Did the kernel report any of `bits` for this entry?
    #[must_use]
    pub fn has(&self, bits: i16) -> bool {
        self.revents & bits != 0
    }
}

extern "C" {
    // `nfds_t` is `unsigned long` on every Linux ABI this workspace
    // targets; `timeout` is milliseconds (-1 = infinite).
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// Block until at least one entry in `fds` is ready or `timeout_ms`
/// elapses (`-1` waits forever). Returns the number of ready entries
/// (zero on timeout) and retries transparently on `EINTR`.
///
/// # Errors
/// Any `poll(2)` failure other than `EINTR` (e.g. `EINVAL` for an
/// oversized set) is returned as the corresponding [`io::Error`].
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-layout structs; the kernel writes only the
        // `revents` field of the `fds.len()` entries passed.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poll_times_out_on_a_silent_socket() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let ready = poll_fds(&mut fds, 10).unwrap();
        assert_eq!(ready, 0);
        assert!(!fds[0].has(POLLIN));
    }

    #[test]
    fn poll_reports_readable_after_a_write() {
        let (a, mut b) = UnixStream::pair().unwrap();
        b.write_all(&[1]).unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let ready = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(ready, 1);
        assert!(fds[0].has(POLLIN));
    }

    #[test]
    fn poll_reports_hangup_on_a_closed_peer() {
        let (a, b) = UnixStream::pair().unwrap();
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let ready = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(ready, 1);
        assert!(fds[0].has(POLLIN | POLLHUP));
    }
}
