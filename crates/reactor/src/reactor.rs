//! The readiness loop: accept, buffer, admit, execute, reply.
//!
//! One reactor thread multiplexes every client connection with
//! `poll(2)` (via [`crate::sys`]); a small pool of executor threads
//! runs the [`Service`] on admitted requests. Responses flow back
//! through a completion list and a self-wake socket, so out-of-order
//! completion under pipelining is the natural case — each v2 frame
//! carries its correlation id home.
//!
//! Connection lifecycle: `Accepted → Reading ⇄ Backpressured → Draining
//! → Closed`. *Backpressured* means the connection's in-flight count
//! reached the per-connection bound: the reactor stops polling the
//! socket for readability (already-buffered bytes stay buffered) until
//! a completion frees a slot. Admission against a full **global** bound
//! instead sheds the request: the service's typed `overloaded` response
//! is queued immediately, and the client sees backpressure as latency,
//! never as a silent stall.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use semtree_cluster::ClusterMetrics;
use semtree_conc::sync::Mutex;
use semtree_net::{encode_frame_v2, split_frame_v2};

use crate::buffer::{FrameReader, WriteQueue};
use crate::queue::{Push, ServeQueue};
use crate::sys::{poll_fds, PollFd, POLLERR, POLLHUP, POLLIN, POLLOUT};

/// What a [`Service`] returns for one request.
#[derive(Debug)]
pub struct ServiceReply {
    /// Encoded response body (framed and correlated by the reactor).
    pub payload: Vec<u8>,
    /// `true` when this request asked the server to stop: the reply is
    /// still delivered, then the reactor drains and returns.
    pub shutdown: bool,
}

/// The application behind the reactor: decodes a request body, produces
/// an encoded response. Called concurrently from executor threads.
pub trait Service: Sync {
    /// Handle one request body (the frame payload minus the v2 header).
    fn call(&self, request: &[u8]) -> ServiceReply;

    /// The encoded "overloaded, retry later" response sent when the
    /// global queue is full and the request is shed without running.
    fn overloaded(&self) -> Vec<u8>;
}

/// Tunables for [`serve`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Executor threads running the service (≥ 1).
    pub executors: usize,
    /// Global bound on admitted-but-uncompleted requests; admission
    /// beyond it sheds with the service's `overloaded` reply.
    pub global_depth: usize,
    /// Per-connection bound; a connection at the bound stops being
    /// read (backpressure) until a completion frees a slot.
    pub per_conn_depth: usize,
    /// Sink for per-request serving latency (dispatch → reply ready).
    pub metrics: Option<Arc<ClusterMetrics>>,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            executors: 4,
            global_depth: 1024,
            per_conn_depth: 64,
            metrics: None,
        }
    }
}

/// What happened over one [`serve`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorReport {
    /// Requests admitted, executed, and answered.
    pub served: u64,
    /// Requests shed with an `overloaded` response.
    pub shed: u64,
}

/// One admitted request travelling to an executor.
struct Job {
    /// Correlation id for v2 frames; `None` for a v1 (sequential)
    /// client, whose reply goes back uncorrelated.
    corr: Option<u64>,
    body: Vec<u8>,
    admitted: Instant,
}

/// One finished response travelling back to the reactor.
struct Completion {
    conn: u64,
    /// Full reply payload (v2 header already prepended when required).
    payload: Vec<u8>,
    shutdown: bool,
}

struct Conn {
    id: u64,
    stream: TcpStream,
    reader: FrameReader,
    writer: WriteQueue,
}

/// Everything the loop and the executors share by reference.
struct Shared<'a, SVC: Service> {
    service: &'a SVC,
    config: &'a ReactorConfig,
    queue: ServeQueue<Job>,
    completions: Mutex<Vec<Completion>>,
    wake_tx: UnixStream,
    stopping: AtomicBool,
    served: AtomicU64,
}

impl<SVC: Service> Shared<'_, SVC> {
    /// Poke the reactor's wake socket; a full pipe means a wake is
    /// already pending, so `WouldBlock` is success.
    fn wake(&self) {
        let _ = (&self.wake_tx).write(&[1]);
    }

    /// Executor body: run jobs until the queue shuts down.
    fn run_executor(&self) {
        while let Some((conn, job)) = self.queue.pop() {
            let reply = self.service.call(&job.body);
            let elapsed = u64::try_from(job.admitted.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if let Some(metrics) = &self.config.metrics {
                metrics.record_latency(elapsed);
            }
            self.served.fetch_add(1, Ordering::Relaxed);
            let payload = match job.corr {
                Some(corr) => encode_frame_v2(corr, &reply.payload),
                None => reply.payload,
            };
            if reply.shutdown {
                self.stopping.store(true, Ordering::SeqCst);
            }
            {
                let mut completions = self.completions.lock();
                completions.push(Completion {
                    conn,
                    payload,
                    shutdown: reply.shutdown,
                });
            }
            self.queue.complete(conn);
            self.wake();
        }
    }
}

/// Serve clients on `listener` until a request's [`ServiceReply`] sets
/// `shutdown`. Executor threads are scoped, so `service` only needs
/// `Sync`, not `'static`.
///
/// # Errors
/// Fatal socket-layer failures (listener, `poll(2)`, or the wake pipe);
/// per-connection errors close that connection only.
pub fn serve<SVC: Service>(
    listener: &TcpListener,
    service: &SVC,
    config: &ReactorConfig,
) -> io::Result<ReactorReport> {
    listener.set_nonblocking(true)?;
    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    let shared = Shared {
        service,
        config,
        queue: ServeQueue::new(config.global_depth),
        completions: Mutex::new(Vec::new()),
        wake_tx,
        stopping: AtomicBool::new(false),
        served: AtomicU64::new(0),
    };
    std::thread::scope(|scope| {
        for _ in 0..config.executors.max(1) {
            scope.spawn(|| shared.run_executor());
        }
        let result = event_loop(listener, &wake_rx, &shared);
        shared.queue.shutdown();
        result
    })
}

#[allow(clippy::too_many_lines)]
fn event_loop<SVC: Service>(
    listener: &TcpListener,
    wake_rx: &UnixStream,
    shared: &Shared<'_, SVC>,
) -> io::Result<ReactorReport> {
    let mut conns: Vec<Conn> = Vec::new();
    let mut next_conn_id: u64 = 0;
    let mut shed: u64 = 0;
    let mut scratch = vec![0u8; 64 * 1024];
    // Index of the connection that asked for shutdown; its reply must
    // flush before the loop exits.
    let mut drain_deadline: Option<Instant> = None;

    loop {
        let stopping = shared.stopping.load(Ordering::SeqCst);
        // ---- build the poll set: waker, listener, then connections.
        let mut fds = Vec::with_capacity(2 + conns.len());
        fds.push(PollFd::new(wake_rx.as_raw_fd(), POLLIN));
        fds.push(PollFd::new(
            listener.as_raw_fd(),
            if stopping { 0 } else { POLLIN },
        ));
        for conn in &conns {
            let mut events = 0i16;
            let backpressured =
                shared.queue.conn_in_flight(conn.id) >= shared.config.per_conn_depth;
            if !stopping && !backpressured {
                events |= POLLIN;
            }
            if !conn.writer.is_empty() {
                events |= POLLOUT;
            }
            fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
        }
        poll_fds(&mut fds, 50)?;
        // Snapshot readiness by connection id now: accepts and closes
        // below reshuffle `conns`, and ids stay valid where indices
        // would not.
        let ready: Vec<(u64, i16)> = conns
            .iter()
            .zip(fds.iter().skip(2))
            .map(|(c, f)| (c.id, f.revents))
            .collect();

        // ---- drain the waker.
        if fds[0].has(POLLIN) {
            while matches!((&*wake_rx).read(&mut scratch), Ok(n) if n > 0) {}
        }

        // ---- accept new connections.
        if fds[1].has(POLLIN) {
            loop {
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        stream.set_nonblocking(true)?;
                        stream.set_nodelay(true).ok();
                        let id = next_conn_id;
                        next_conn_id += 1;
                        conns.push(Conn {
                            id,
                            stream,
                            reader: FrameReader::new(),
                            writer: WriteQueue::new(),
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
        }

        // ---- deliver finished responses into write queues.
        let finished: Vec<Completion> = std::mem::take(&mut *shared.completions.lock());
        for completion in finished {
            // A completion for a vanished connection is dropped: its
            // queue slot was already released by the executor.
            let push_failed = match conns.iter_mut().find(|c| c.id == completion.conn) {
                Some(conn) => conn.writer.push_frame(&completion.payload).is_err(),
                None => false,
            };
            if push_failed {
                // Response exceeds the frame format: nothing valid can
                // be sent; drop the connection.
                close_conn(shared, &mut conns, completion.conn);
            }
            if completion.shutdown && drain_deadline.is_none() {
                drain_deadline = Some(Instant::now() + std::time::Duration::from_secs(5));
            }
        }

        // ---- per-connection I/O, by id (closes may remove entries).
        for (conn_id, revents) in ready {
            let mut dead = revents & (POLLERR | POLLHUP) != 0 && revents & POLLIN == 0;
            if !dead && revents & POLLIN != 0 && !stopping {
                dead = read_ready(&mut conns, conn_id, &mut scratch);
            }
            // Admit whatever is buffered (also after completions freed
            // slots with no new socket readiness).
            if !dead && !stopping {
                dead = pump_conn(shared, &mut conns, conn_id, &mut shed);
            }
            if !dead {
                dead = write_ready(&mut conns, conn_id);
            }
            if dead {
                close_conn(shared, &mut conns, conn_id);
            }
        }

        // ---- shutdown: once requested, wait for in-flight work, then
        // flush every writer before returning.
        if stopping {
            let idle = shared.queue.global_in_flight() == 0;
            let flushed =
                conns.iter().all(|c| c.writer.is_empty()) && shared.completions.lock().is_empty();
            let expired = drain_deadline.is_some_and(|d| Instant::now() >= d);
            if (idle && flushed) || expired {
                return Ok(ReactorReport {
                    served: shared.served.load(Ordering::Relaxed),
                    shed,
                });
            }
        }
    }
}

/// Read until `WouldBlock`, buffering into the connection's
/// [`FrameReader`]. Returns `true` when the connection died.
fn read_ready(conns: &mut [Conn], conn_id: u64, scratch: &mut [u8]) -> bool {
    let Some(conn) = conns.iter_mut().find(|c| c.id == conn_id) else {
        return false;
    };
    loop {
        match conn.stream.read(scratch) {
            // EOF: the client is gone. Frames it already pipelined are
            // moot — nobody is reading replies — so drop the connection.
            Ok(0) => return true,
            Ok(n) => conn.reader.extend(&scratch[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return true,
        }
    }
}

/// Parse and admit buffered frames while the connection has pipeline
/// slots. Returns `true` when the connection died (corrupt stream).
fn pump_conn<SVC: Service>(
    shared: &Shared<'_, SVC>,
    conns: &mut [Conn],
    conn_id: u64,
    shed: &mut u64,
) -> bool {
    let Some(conn) = conns.iter_mut().find(|c| c.id == conn_id) else {
        return false;
    };
    loop {
        // Backpressure: leave complete frames buffered while the
        // connection is at its pipeline bound.
        if shared.queue.conn_in_flight(conn_id) >= shared.config.per_conn_depth {
            return false;
        }
        let payload = match conn.reader.next_frame() {
            Ok(Some(payload)) => payload,
            Ok(None) => return false,
            // Hostile length prefix — the stream is unrecoverable.
            Err(_) => return true,
        };
        let (corr, body) = match split_frame_v2(&payload) {
            Ok(Some((corr, body))) => (Some(corr), body.to_vec()),
            Ok(None) => (None, payload),
            // Truncated v2 header — desynchronised stream.
            Err(_) => return true,
        };
        let job = Job {
            corr,
            body,
            admitted: Instant::now(),
        };
        match shared.queue.push(conn_id, job) {
            Push::Granted => {}
            Push::GlobalFull => {
                *shed += 1;
                let reply = shared.service.overloaded();
                let framed = match corr {
                    Some(corr) => encode_frame_v2(corr, &reply),
                    None => reply,
                };
                if conn.writer.push_frame(&framed).is_err() {
                    return true;
                }
            }
            Push::Closed => return true,
        }
    }
}

/// Flush the connection's write queue. Returns `true` when it died.
fn write_ready(conns: &mut [Conn], conn_id: u64) -> bool {
    let Some(conn) = conns.iter_mut().find(|c| c.id == conn_id) else {
        return false;
    };
    if conn.writer.is_empty() {
        return false;
    }
    conn.writer.write_to(&mut conn.stream).is_err()
}

fn close_conn<SVC: Service>(shared: &Shared<'_, SVC>, conns: &mut Vec<Conn>, conn_id: u64) {
    shared.queue.close_conn(conn_id);
    conns.retain(|c| c.id != conn_id);
}
