//! The sharded readiness fabric: accept, balance, buffer, admit,
//! execute, reply.
//!
//! N reactor shards (one thread each) multiplex the client connections
//! through a [`Poller`] — epoll on Linux, `poll(2)` elsewhere — while a
//! small pool of executor threads runs the [`Service`] on admitted
//! requests. Shard 0 owns the listener and hands each accepted socket
//! to the least-loaded shard over a lock-protected inbox plus a wake
//! pipe; after that the connection lives and dies on its owning shard
//! (its fd is registered with that shard's poller exactly once).
//! Responses flow back through per-shard completion lists, so
//! out-of-order completion under pipelining is the natural case — each
//! v2 frame carries its correlation id home.
//!
//! Completions are routed by an `Arc`'d [`ReplyToken`], which makes the
//! reply path location-independent: an executor can answer inline
//! ([`Dispatch::Sync`]), or a [`Service`] can take the token across
//! threads and complete the response later from a transport's demux
//! callback ([`Dispatch::Completed`]) — the pipelined worker hop.
//!
//! Connection lifecycle: `Accepted → Reading ⇄ Backpressured → Draining
//! → Closed`. *Backpressured* means the connection's in-flight count
//! reached the per-connection bound: the shard drops the socket's read
//! interest (already-buffered bytes stay buffered) until a completion
//! frees a slot. Admission against a full **global** bound instead
//! sheds the request: the service's typed `overloaded` response is
//! queued immediately, and the client sees backpressure as latency,
//! never as a silent stall. Within one loop iteration a connection may
//! admit at most [`DRAIN_BUDGET`] buffered frames before the shard
//! moves on to its siblings, so one saturated pipelined connection
//! cannot starve the others.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use semtree_cluster::ClusterMetrics;
use semtree_conc::sync::Mutex;
use semtree_net::{encode_frame_v2, split_frame_v2};

use crate::buffer::{FrameReader, WriteQueue};
use crate::queue::{Push, ServeQueue};
use crate::sys::{new_poller, Backend, Event, Interest, Poller};

/// Poller token of a shard's wake pipe.
const TOKEN_WAKE: u64 = u64::MAX;
/// Poller token of the listener (accepting shard only).
const TOKEN_LISTENER: u64 = u64::MAX - 1;
/// Bits of a connection id carrying its owning shard index.
const SHARD_SHIFT: u32 = 48;
/// Most reactor shards a single [`serve`] will run, regardless of
/// configuration (also the width of the per-shard metrics arrays).
pub const MAX_REACTORS: usize = 32;

/// Most buffered frames one connection may admit per loop iteration —
/// the fairness bound keeping a saturated pipelined connection from
/// starving its shard-mates. Leftover frames stay buffered and the
/// shard re-pumps them on its next iteration without waiting for new
/// socket readiness.
pub const DRAIN_BUDGET: usize = 32;

/// The shard index encoded in connection id `id`.
fn conn_shard(id: u64) -> usize {
    (id >> SHARD_SHIFT) as usize
}

/// What a [`Service`] returns for one request.
#[derive(Debug)]
pub struct ServiceReply {
    /// Encoded response body (framed and correlated by the reactor).
    pub payload: Vec<u8>,
    /// `true` when this request asked the server to stop: the reply is
    /// still delivered, then the reactor drains and returns.
    pub shutdown: bool,
}

/// How a [`Service::call_pipelined`] invocation left the request.
pub enum Dispatch {
    /// The service consumed the [`ReplyToken`]; the response will be
    /// (or already was) delivered via [`ReplyToken::complete`] from
    /// whatever thread finishes the work.
    Completed,
    /// The service answered synchronously; the executor completes the
    /// token with this reply.
    Sync(ReplyToken, ServiceReply),
}

/// The application behind the reactor: decodes a request body, produces
/// an encoded response. Called concurrently from executor threads.
pub trait Service: Sync {
    /// Handle one request body (the frame payload minus the v2 header).
    fn call(&self, request: &[u8]) -> ServiceReply;

    /// The encoded "overloaded, retry later" response sent when the
    /// global queue is full and the request is shed without running.
    fn overloaded(&self) -> Vec<u8>;

    /// Pipelined entry point: services that fan work out to other
    /// threads (or processes) take the [`ReplyToken`] and return
    /// [`Dispatch::Completed`], freeing this executor immediately; the
    /// response is completed later from the finishing thread. The
    /// default answers synchronously via [`call`](Service::call).
    fn call_pipelined(&self, request: &[u8], token: ReplyToken) -> Dispatch {
        Dispatch::Sync(token, self.call(request))
    }
}

/// Tunables for [`serve`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Executor threads running the service (≥ 1).
    pub executors: usize,
    /// Global bound on admitted-but-uncompleted requests; admission
    /// beyond it sheds with the service's `overloaded` reply.
    pub global_depth: usize,
    /// Per-connection bound; a connection at the bound stops being
    /// read (backpressure) until a completion frees a slot.
    pub per_conn_depth: usize,
    /// Sink for per-request serving latency (dispatch → reply ready)
    /// and per-shard served/shed counters.
    pub metrics: Option<Arc<ClusterMetrics>>,
    /// Reactor shard count; `0` means automatic (half the available
    /// cores, at least one). Capped at [`MAX_REACTORS`].
    pub reactors: usize,
    /// Readiness backend every shard uses.
    pub backend: Backend,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            executors: 4,
            global_depth: 1024,
            per_conn_depth: 64,
            metrics: None,
            reactors: 0,
            backend: Backend::default(),
        }
    }
}

/// The shard count a `reactors` setting resolves to on this host.
#[must_use]
pub fn effective_reactors(reactors: usize) -> usize {
    let auto = std::thread::available_parallelism().map_or(1, |n| n.get() / 2);
    let n = if reactors == 0 { auto } else { reactors };
    n.clamp(1, MAX_REACTORS)
}

/// What happened over one [`serve`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorReport {
    /// Requests admitted, executed, and answered.
    pub served: u64,
    /// Requests shed with an `overloaded` response.
    pub shed: u64,
}

/// One admitted request travelling to an executor.
struct Job {
    /// Correlation id for v2 frames; `None` for a v1 (sequential)
    /// client, whose reply goes back uncorrelated.
    corr: Option<u64>,
    body: Vec<u8>,
    admitted: Instant,
}

/// One finished response travelling back to its owning shard.
struct Completion {
    conn: u64,
    /// Full reply payload (v2 header already prepended when required).
    payload: Vec<u8>,
}

/// One shard's cross-thread surface: where its completions, handed-off
/// sockets, and wakes land.
struct ShardPort {
    completions: Mutex<Vec<Completion>>,
    /// Sockets accepted by shard 0 and assigned to this shard.
    inbox: Mutex<Vec<TcpStream>>,
    wake_tx: UnixStream,
    /// Live connections owned by this shard (accept balancing reads
    /// these across shards).
    conn_count: AtomicUsize,
}

impl ShardPort {
    /// Poke the shard's wake pipe; a full pipe means a wake is already
    /// pending, so `WouldBlock` is success.
    fn wake(&self) {
        let _ = (&self.wake_tx).write(&[1]);
    }
}

/// The `'static` heart shared by shards, executors, and in-flight
/// [`ReplyToken`]s (which may outlive an executor's interest in the
/// request — that is the point).
struct Router {
    queue: ServeQueue<Job>,
    shards: Vec<ShardPort>,
    metrics: Option<Arc<ClusterMetrics>>,
    per_conn_depth: usize,
    stopping: AtomicBool,
    served: AtomicU64,
}

/// The write-side handle for one admitted request: whoever holds it
/// answers the client. Created by the executor loop; either completed
/// inline ([`Dispatch::Sync`]) or carried to another thread by a
/// pipelining [`Service`] and completed from there.
pub struct ReplyToken {
    conn: u64,
    corr: Option<u64>,
    admitted: Instant,
    router: Arc<Router>,
    armed: bool,
}

impl ReplyToken {
    /// Deliver the encoded response body for this request (the reactor
    /// adds framing and the v2 correlation header). `shutdown` asks the
    /// whole reactor to drain and return once the reply is flushed.
    pub fn complete(mut self, payload: Vec<u8>, shutdown: bool) {
        self.armed = false;
        let shard = conn_shard(self.conn);
        let elapsed = u64::try_from(self.admitted.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Some(metrics) = &self.router.metrics {
            metrics.record_latency(elapsed);
            metrics.record_shard_served(shard);
        }
        self.router.served.fetch_add(1, Ordering::Relaxed);
        let framed = match self.corr {
            Some(corr) => encode_frame_v2(corr, &payload),
            None => payload,
        };
        if shutdown {
            self.router.stopping.store(true, Ordering::SeqCst);
        }
        self.router.shards[shard]
            .completions
            .lock()
            .push(Completion {
                conn: self.conn,
                payload: framed,
            });
        self.router.queue.complete(self.conn);
        if shutdown {
            // Every shard must notice the drain, not just the owner.
            for port in &self.router.shards {
                port.wake();
            }
        } else {
            self.router.shards[shard].wake();
        }
    }
}

impl Drop for ReplyToken {
    fn drop(&mut self) {
        if self.armed {
            // Discarded without an answer (service bug or unwinding):
            // release the pipeline slot so the connection cannot wedge.
            // The client's correlation id simply never resolves.
            self.router.queue.complete(self.conn);
            self.router.shards[conn_shard(self.conn)].wake();
        }
    }
}

/// Executor body: run jobs until the queue shuts down.
fn run_executor<SVC: Service>(service: &SVC, router: &Arc<Router>) {
    while let Some((conn, job)) = router.queue.pop() {
        let token = ReplyToken {
            conn,
            corr: job.corr,
            admitted: job.admitted,
            router: Arc::clone(router),
            armed: true,
        };
        match service.call_pipelined(&job.body, token) {
            Dispatch::Completed => {}
            Dispatch::Sync(token, reply) => token.complete(reply.payload, reply.shutdown),
        }
    }
}

/// Serve clients on `listener` until a request's reply sets `shutdown`.
/// Executor and shard threads are scoped, so `service` only needs
/// `Sync`, not `'static`.
///
/// # Errors
/// Fatal socket-layer failures (listener, poller, or a wake pipe);
/// per-connection errors close that connection only.
pub fn serve<SVC: Service>(
    listener: &TcpListener,
    service: &SVC,
    config: &ReactorConfig,
) -> io::Result<ReactorReport> {
    listener.set_nonblocking(true)?;
    let reactors = effective_reactors(config.reactors);
    let mut wake_rxs = Vec::with_capacity(reactors);
    let mut shards = Vec::with_capacity(reactors);
    for _ in 0..reactors {
        let (rx, tx) = UnixStream::pair()?;
        rx.set_nonblocking(true)?;
        tx.set_nonblocking(true)?;
        wake_rxs.push(rx);
        shards.push(ShardPort {
            completions: Mutex::new(Vec::new()),
            inbox: Mutex::new(Vec::new()),
            wake_tx: tx,
            conn_count: AtomicUsize::new(0),
        });
    }
    let router = Arc::new(Router {
        queue: ServeQueue::new(config.global_depth),
        shards,
        metrics: config.metrics.clone(),
        per_conn_depth: config.per_conn_depth.max(1),
        stopping: AtomicBool::new(false),
        served: AtomicU64::new(0),
    });
    if let Some(metrics) = &router.metrics {
        metrics.set_reactor_shards(reactors);
    }
    let shed = std::thread::scope(|scope| -> io::Result<u64> {
        for _ in 0..config.executors.max(1) {
            let router = &router;
            scope.spawn(move || run_executor(service, router));
        }
        let mut handles = Vec::new();
        for (shard, wake_rx) in wake_rxs.iter().enumerate().skip(1) {
            let router = &router;
            handles.push(
                scope.spawn(move || shard_loop(shard, None, wake_rx, router, service, config)),
            );
        }
        let r0 = shard_loop(0, Some(listener), &wake_rxs[0], &router, service, config);
        // Shard 0 is back (shutdown or fatal error): stop the others.
        router.stopping.store(true, Ordering::SeqCst);
        for port in &router.shards {
            port.wake();
        }
        let mut shed = 0u64;
        let mut first_err = None;
        match r0 {
            Ok(n) => shed += n,
            Err(e) => first_err = Some(e),
        }
        for handle in handles {
            // A panicked shard surfaces as an io::Error rather than
            // tearing down the whole process from the serve() caller.
            let joined = handle
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("reactor shard panicked")));
            match joined {
                Ok(n) => shed += n,
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        router.queue.shutdown();
        match first_err {
            Some(e) => Err(e),
            None => Ok(shed),
        }
    })?;
    Ok(ReactorReport {
        served: router.served.load(Ordering::Relaxed),
        shed,
    })
}

struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    writer: WriteQueue,
    /// Interest currently registered with the poller (diffed, not
    /// rebuilt: registration is persistent).
    interest: Interest,
}

/// One shard's event loop. Only the accepting shard gets `listener`.
/// Returns the number of requests this shard shed.
#[allow(clippy::too_many_lines)]
fn shard_loop<SVC: Service>(
    shard: usize,
    listener: Option<&TcpListener>,
    wake_rx: &UnixStream,
    router: &Arc<Router>,
    service: &SVC,
    config: &ReactorConfig,
) -> io::Result<u64> {
    let mut poller = new_poller(config.backend)?;
    poller.register(wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;
    let mut listener_armed = false;
    if let Some(l) = listener {
        poller.register(l.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        listener_armed = true;
    }
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_seq: u64 = 0;
    let mut shed: u64 = 0;
    let mut scratch = vec![0u8; 64 * 1024];
    let mut events: Vec<Event> = Vec::new();
    // Connections the fairness budget left with admissible buffered
    // frames; re-pumped next iteration without new socket readiness.
    let mut repump: Vec<u64> = Vec::new();
    let mut drain_deadline: Option<Instant> = None;

    loop {
        let stopping = router.stopping.load(Ordering::SeqCst);
        if stopping && listener_armed {
            if let Some(l) = listener {
                poller.reregister(l.as_raw_fd(), TOKEN_LISTENER, Interest::NONE)?;
            }
            listener_armed = false;
        }
        let timeout = if repump.is_empty() { 50 } else { 0 };
        poller.wait(&mut events, timeout)?;

        // Connections touched this iteration: (id, readable, writable,
        // error). Budget leftovers first, then kernel readiness.
        let mut touched: Vec<(u64, bool, bool, bool)> = Vec::new();
        for id in repump.drain(..) {
            touched.push((id, false, false, false));
        }
        let mut wake_ready = false;
        let mut accept_ready = false;
        for ev in &events {
            match ev.token {
                TOKEN_WAKE => wake_ready = true,
                TOKEN_LISTENER => accept_ready = true,
                id => touched.push((id, ev.readable, ev.writable, ev.error)),
            }
        }

        if wake_ready {
            while matches!((&*wake_rx).read(&mut scratch), Ok(n) if n > 0) {}
        }

        // ---- adopt sockets handed off by the accepting shard.
        let handed: Vec<TcpStream> = std::mem::take(&mut *router.shards[shard].inbox.lock());
        for stream in handed {
            adopt(
                &mut *poller,
                router,
                &mut conns,
                &mut next_seq,
                shard,
                stream,
                &mut touched,
            );
        }

        // ---- accept new connections, balancing across shards.
        if accept_ready && !stopping {
            if let Some(l) = listener {
                accept_balance(
                    l,
                    shard,
                    router,
                    &mut *poller,
                    &mut conns,
                    &mut next_seq,
                    &mut touched,
                )?;
            }
        }

        // ---- deliver finished responses into write queues.
        let finished: Vec<Completion> =
            std::mem::take(&mut *router.shards[shard].completions.lock());
        for completion in finished {
            // A completion for a vanished connection is dropped: its
            // queue slot was already released by the reply token.
            if let Some(conn) = conns.get_mut(&completion.conn) {
                if conn.writer.push_frame(&completion.payload).is_err() {
                    // Response exceeds the frame format: nothing valid
                    // can be sent; drop the connection.
                    close_conn(&mut *poller, router, &mut conns, completion.conn);
                } else {
                    // The freed pipeline slot may unblock buffered
                    // frames, and the new payload wants a flush.
                    touched.push((completion.conn, false, false, false));
                }
            }
        }

        // ---- per-connection I/O, merged by id (a connection may appear
        // under several touch sources in one iteration).
        touched.sort_unstable_by_key(|t| t.0);
        let mut i = 0;
        while i < touched.len() {
            let id = touched[i].0;
            let (mut readable, mut writable, mut error) = (false, false, false);
            while i < touched.len() && touched[i].0 == id {
                readable |= touched[i].1;
                writable |= touched[i].2;
                error |= touched[i].3;
                i += 1;
            }
            if !conns.contains_key(&id) {
                continue;
            }
            let mut dead = error && !readable;
            if !dead && readable && !stopping {
                dead = read_ready(&mut conns, id, &mut scratch);
            }
            // Admit whatever is buffered (also after completions freed
            // slots with no new socket readiness).
            if !dead && !stopping {
                let (died, leftover) = pump_conn(shard, router, service, &mut conns, id, &mut shed);
                dead = died;
                if leftover {
                    repump.push(id);
                }
            }
            if !dead {
                dead = write_ready(&mut conns, id);
            }
            let _ = writable; // write_ready flushes whenever bytes are pending
            if dead {
                close_conn(&mut *poller, router, &mut conns, id);
            } else {
                update_interest(&mut *poller, router, &mut conns, id, stopping);
            }
        }

        // ---- shutdown: once requested, wait for in-flight work, then
        // flush every writer before returning.
        if stopping {
            if drain_deadline.is_none() {
                drain_deadline = Some(Instant::now() + std::time::Duration::from_secs(5));
            }
            let idle = router.queue.global_in_flight() == 0;
            let flushed = conns.values().all(|c| c.writer.is_empty())
                && router.shards[shard].completions.lock().is_empty();
            let expired = drain_deadline.is_some_and(|d| Instant::now() >= d);
            if (idle && flushed) || expired {
                return Ok(shed);
            }
        }
    }
}

/// Accept until `WouldBlock`, assigning each socket to the least-loaded
/// shard — locally when that is us, else via the target's inbox + wake.
fn accept_balance(
    listener: &TcpListener,
    shard: usize,
    router: &Arc<Router>,
    poller: &mut dyn Poller,
    conns: &mut HashMap<u64, Conn>,
    next_seq: &mut u64,
    touched: &mut Vec<(u64, bool, bool, bool)>,
) -> io::Result<()> {
    loop {
        match listener.accept() {
            Ok((stream, _addr)) => {
                stream.set_nonblocking(true)?;
                stream.set_nodelay(true).ok();
                let target = router
                    .shards
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, port)| port.conn_count.load(Ordering::Relaxed))
                    .map_or(shard, |(index, _)| index);
                // Count at handoff, not adoption, so a burst of accepts
                // spreads instead of dogpiling the emptiest shard.
                router.shards[target]
                    .conn_count
                    .fetch_add(1, Ordering::Relaxed);
                if target == shard {
                    adopt(poller, router, conns, next_seq, shard, stream, touched);
                } else {
                    router.shards[target].inbox.lock().push(stream);
                    router.shards[target].wake();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Take ownership of an accepted socket on this shard: register its fd
/// and start reading. A failed registration drops the socket, not the
/// shard.
fn adopt(
    poller: &mut dyn Poller,
    router: &Arc<Router>,
    conns: &mut HashMap<u64, Conn>,
    next_seq: &mut u64,
    shard: usize,
    stream: TcpStream,
    touched: &mut Vec<(u64, bool, bool, bool)>,
) {
    let id = ((shard as u64) << SHARD_SHIFT) | *next_seq;
    *next_seq += 1;
    if stream.set_nonblocking(true).is_err()
        || poller
            .register(stream.as_raw_fd(), id, Interest::READ)
            .is_err()
    {
        router.shards[shard]
            .conn_count
            .fetch_sub(1, Ordering::Relaxed);
        return;
    }
    conns.insert(
        id,
        Conn {
            stream,
            reader: FrameReader::new(),
            writer: WriteQueue::new(),
            interest: Interest::READ,
        },
    );
    // Probe immediately: bytes may have raced ahead of registration.
    touched.push((id, true, false, false));
}

/// Read until `WouldBlock`, buffering into the connection's
/// [`FrameReader`]. Returns `true` when the connection died.
fn read_ready(conns: &mut HashMap<u64, Conn>, conn_id: u64, scratch: &mut [u8]) -> bool {
    let Some(conn) = conns.get_mut(&conn_id) else {
        return false;
    };
    loop {
        match conn.stream.read(scratch) {
            // EOF: the client is gone. Frames it already pipelined are
            // moot — nobody is reading replies — so drop the connection.
            Ok(0) => return true,
            Ok(n) => conn.reader.extend(&scratch[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return true,
        }
    }
}

/// Parse and admit buffered frames while the connection has pipeline
/// slots and fairness budget. Returns `(died, leftover)`: `died` when
/// the stream is corrupt, `leftover` when admissible frames remain
/// after the budget ran out (the caller re-pumps next iteration).
fn pump_conn<SVC: Service>(
    shard: usize,
    router: &Arc<Router>,
    service: &SVC,
    conns: &mut HashMap<u64, Conn>,
    conn_id: u64,
    shed: &mut u64,
) -> (bool, bool) {
    let Some(conn) = conns.get_mut(&conn_id) else {
        return (false, false);
    };
    let mut budget = DRAIN_BUDGET;
    loop {
        // Backpressure: leave complete frames buffered while the
        // connection is at its pipeline bound.
        if router.queue.conn_in_flight(conn_id) >= router.per_conn_depth {
            return (false, false);
        }
        if budget == 0 {
            // Fairness bound reached: siblings get the shard before the
            // rest of this pipeline burst is admitted. A buffered error
            // also re-pumps, so the next pass reports it as death.
            return (false, matches!(conn.reader.has_frame(), Ok(true) | Err(_)));
        }
        let payload = match conn.reader.next_frame() {
            Ok(Some(payload)) => payload,
            Ok(None) => return (false, false),
            // Hostile length prefix — the stream is unrecoverable.
            Err(_) => return (true, false),
        };
        budget -= 1;
        let (corr, body) = match split_frame_v2(&payload) {
            Ok(Some((corr, body))) => (Some(corr), body.to_vec()),
            Ok(None) => (None, payload),
            // Truncated v2 header — desynchronised stream.
            Err(_) => return (true, false),
        };
        let job = Job {
            corr,
            body,
            admitted: Instant::now(),
        };
        match router.queue.push(conn_id, job) {
            Push::Granted => {}
            Push::GlobalFull => {
                *shed += 1;
                if let Some(metrics) = &router.metrics {
                    metrics.record_shard_shed(shard);
                }
                let reply = service.overloaded();
                let framed = match corr {
                    Some(corr) => encode_frame_v2(corr, &reply),
                    None => reply,
                };
                if conn.writer.push_frame(&framed).is_err() {
                    return (true, false);
                }
            }
            Push::Closed => return (true, false),
        }
    }
}

/// Flush the connection's write queue. Returns `true` when it died.
fn write_ready(conns: &mut HashMap<u64, Conn>, conn_id: u64) -> bool {
    let Some(conn) = conns.get_mut(&conn_id) else {
        return false;
    };
    if conn.writer.is_empty() {
        return false;
    }
    conn.writer.write_to(&mut conn.stream).is_err()
}

/// Reconcile the poller's persistent registration with what the
/// connection now needs: read interest unless backpressured or
/// stopping, write interest while bytes are pending.
fn update_interest(
    poller: &mut dyn Poller,
    router: &Arc<Router>,
    conns: &mut HashMap<u64, Conn>,
    conn_id: u64,
    stopping: bool,
) {
    let Some(conn) = conns.get_mut(&conn_id) else {
        return;
    };
    let desired = Interest {
        readable: !stopping && router.queue.conn_in_flight(conn_id) < router.per_conn_depth,
        writable: !conn.writer.is_empty(),
    };
    if desired != conn.interest {
        if poller
            .reregister(conn.stream.as_raw_fd(), conn_id, desired)
            .is_err()
        {
            close_conn(poller, router, conns, conn_id);
            return;
        }
        if let Some(conn) = conns.get_mut(&conn_id) {
            conn.interest = desired;
        }
    }
}

fn close_conn(
    poller: &mut dyn Poller,
    router: &Arc<Router>,
    conns: &mut HashMap<u64, Conn>,
    conn_id: u64,
) {
    if let Some(conn) = conns.remove(&conn_id) {
        let _ = poller.deregister(conn.stream.as_raw_fd());
        router.shards[conn_shard(conn_id)]
            .conn_count
            .fetch_sub(1, Ordering::Relaxed);
        router.queue.close_conn(conn_id);
    }
}
