//! `semtree-reactor`: event-driven pipelined serving fabric — beyond
//! the paper.
//!
//! The paper's distributed SemTree assumes a cluster "serving heavy
//! traffic from millions of users"; the workspace's original client
//! path was blocking, thread-per-connection, one request per
//! round-trip. This crate replaces it with a **dependency-free
//! readiness loop** over non-blocking `std::net` sockets:
//!
//! - [`sys`]: the readiness backends (the only `unsafe` in the
//!   workspace) behind one `Poller` trait — persistent-registration
//!   `epoll` (level- or edge-triggered) on Linux, portable `poll(2)`
//!   everywhere, all `EINTR`-retrying and safe above the syscalls;
//! - [`buffer`]: per-connection frame re-assembly and partial-write
//!   resumption over the existing u32-length-prefixed framing;
//! - [`queue`]: bounded global + per-connection admission with
//!   backpressure semantics, generic over the concurrency shim so the
//!   `semtree-conc` model checker can explore the queue-full /
//!   connection-close race;
//! - [`reactor`]: N sharded event loops (accept-balanced connection
//!   ownership, per-shard wake pipes and completion lists) feeding an
//!   executor pool behind the [`Service`] trait — shedding overload
//!   with a typed response, completing pipelined replies from any
//!   thread via [`ReplyToken`], and recording per-request latency and
//!   per-shard served/shed counters into the shared
//!   [`semtree_cluster::MetricsSnapshot`].
//!
//! Requests are **pipelined**: a v2 frame (`semtree_net::FRAME_V2`)
//! carries a correlation id, responses complete out of order, and a
//! single connection keeps many requests in flight. v1 (sequential)
//! clients are served unchanged on the same port.

mod buffer;
mod queue;
mod reactor;
mod sys;

pub use buffer::{FrameReader, WriteQueue};
pub use queue::{Push, ServeQueue};
pub use reactor::{
    effective_reactors, serve, Dispatch, ReactorConfig, ReactorReport, ReplyToken, Service,
    ServiceReply, DRAIN_BUDGET, MAX_REACTORS,
};
pub use sys::{Backend, Interest};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    use semtree_net::{encode_frame_v2, read_frame, split_frame_v2, write_frame};

    /// Echoes the body back; byte `0xFF` alone means "shut down"; body
    /// `[0xEE]` sleeps briefly (to hold queue slots in overload tests).
    struct Echo {
        calls: AtomicU64,
    }

    impl Service for Echo {
        fn call(&self, request: &[u8]) -> ServiceReply {
            self.calls.fetch_add(1, Ordering::Relaxed);
            if request == [0xEE] {
                std::thread::sleep(Duration::from_millis(30));
            }
            ServiceReply {
                payload: request.to_vec(),
                shutdown: request == [0xFF],
            }
        }
        fn overloaded(&self) -> Vec<u8> {
            b"OVERLOADED".to_vec()
        }
    }

    fn serve_echo(
        config: ReactorConfig,
    ) -> (std::net::SocketAddr, std::thread::JoinHandle<ReactorReport>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let echo = Echo {
                calls: AtomicU64::new(0),
            };
            serve(&listener, &echo, &config).unwrap()
        });
        (addr, handle)
    }

    fn shutdown_server(addr: std::net::SocketAddr) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, &encode_frame_v2(999, &[0xFF])).unwrap();
        let _ = read_frame(&mut stream);
    }

    #[test]
    fn sequential_v1_clients_round_trip() {
        let (addr, handle) = serve_echo(ReactorConfig::default());
        let mut stream = TcpStream::connect(addr).unwrap();
        for i in 0..10u8 {
            write_frame(&mut stream, &[i, i, i]).unwrap();
            let reply = read_frame(&mut stream).unwrap().unwrap();
            assert_eq!(reply, [i, i, i]);
        }
        drop(stream);
        shutdown_server(addr);
        let report = handle.join().unwrap();
        assert_eq!(report.shed, 0);
        assert_eq!(report.served, 11); // 10 echoes + the shutdown
    }

    #[test]
    fn pipelined_requests_come_back_correlated() {
        let (addr, handle) = serve_echo(ReactorConfig::default());
        let mut stream = TcpStream::connect(addr).unwrap();
        // Fire 32 requests before reading anything.
        for i in 0..32u64 {
            write_frame(&mut stream, &encode_frame_v2(i, &i.to_le_bytes())).unwrap();
        }
        let mut seen = [false; 32];
        for _ in 0..32 {
            let payload = read_frame(&mut stream).unwrap().unwrap();
            let (corr, body) = split_frame_v2(&payload).unwrap().expect("v2 reply");
            assert_eq!(body, corr.to_le_bytes(), "body echoes its own id");
            assert!(!seen[usize::try_from(corr).unwrap()], "duplicate {corr}");
            seen[usize::try_from(corr).unwrap()] = true;
        }
        drop(stream);
        shutdown_server(addr);
        handle.join().unwrap();
    }

    #[test]
    fn global_overflow_sheds_with_the_typed_reply_instead_of_stalling() {
        let config = ReactorConfig {
            executors: 1,
            global_depth: 2,
            per_conn_depth: 64,
            ..ReactorConfig::default()
        };
        let (addr, handle) = serve_echo(config);
        let mut stream = TcpStream::connect(addr).unwrap();
        // Every request parks its executor 30ms; with one executor and
        // a global depth of 2, a burst of 16 must shed at least 13.
        for i in 0..16u64 {
            write_frame(&mut stream, &encode_frame_v2(i, &[0xEE])).unwrap();
        }
        let mut shed = 0u64;
        let mut served = 0;
        for _ in 0..16 {
            let payload = read_frame(&mut stream).unwrap().unwrap();
            let (_corr, body) = split_frame_v2(&payload).unwrap().expect("v2 reply");
            if body == b"OVERLOADED" {
                shed += 1;
            } else {
                assert_eq!(body, [0xEE]);
                served += 1;
            }
        }
        assert!(shed >= 13, "expected most of the burst shed, got {shed}");
        assert!(served >= 1, "admitted requests still answered");
        drop(stream);
        shutdown_server(addr);
        let report = handle.join().unwrap();
        assert_eq!(report.shed, shed);
    }

    #[test]
    fn per_conn_bound_backpressures_without_losing_requests() {
        let config = ReactorConfig {
            executors: 2,
            global_depth: 1024,
            per_conn_depth: 2,
            reactors: 2,
            ..ReactorConfig::default()
        };
        let (addr, handle) = serve_echo(config);
        let mut stream = TcpStream::connect(addr).unwrap();
        // 64 requests through a 2-deep pipeline: nothing shed, nothing
        // lost — the reactor stops reading instead of dropping.
        for i in 0..64u64 {
            write_frame(&mut stream, &encode_frame_v2(i, b"x")).unwrap();
        }
        for _ in 0..64 {
            let payload = read_frame(&mut stream).unwrap().unwrap();
            let (_corr, body) = split_frame_v2(&payload).unwrap().expect("v2 reply");
            assert_eq!(body, b"x");
        }
        drop(stream);
        shutdown_server(addr);
        let report = handle.join().unwrap();
        assert_eq!(report.shed, 0);
        assert_eq!(report.served, 65);
    }

    #[test]
    fn latency_lands_in_the_shared_histogram() {
        let metrics = std::sync::Arc::new(semtree_cluster::ClusterMetrics::default());
        let config = ReactorConfig {
            metrics: Some(std::sync::Arc::clone(&metrics)),
            ..ReactorConfig::default()
        };
        let (addr, handle) = serve_echo(config);
        let mut stream = TcpStream::connect(addr).unwrap();
        for i in 0..8u64 {
            write_frame(&mut stream, &encode_frame_v2(i, b"m")).unwrap();
        }
        for _ in 0..8 {
            read_frame(&mut stream).unwrap().unwrap();
        }
        drop(stream);
        shutdown_server(addr);
        handle.join().unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.latency.count, 9); // 8 echoes + shutdown
        assert!(snap.latency.p99_nanos() > 0);
    }

    #[test]
    fn abrupt_client_disconnect_releases_slots() {
        let config = ReactorConfig {
            executors: 1,
            global_depth: 8,
            per_conn_depth: 8,
            ..ReactorConfig::default()
        };
        let (addr, handle) = serve_echo(config);
        {
            let mut doomed = TcpStream::connect(addr).unwrap();
            for i in 0..4u64 {
                write_frame(&mut doomed, &encode_frame_v2(i, &[0xEE])).unwrap();
            }
            // Drop without reading a single reply.
        }
        // Let the executor finish the orphaned jobs (4 × 30ms) so their
        // slots are provably released, not leaked.
        std::thread::sleep(Duration::from_millis(300));
        // A well-behaved client still gets full service afterwards.
        let mut stream = TcpStream::connect(addr).unwrap();
        for i in 0..8u64 {
            write_frame(&mut stream, &encode_frame_v2(i, b"ok")).unwrap();
        }
        for _ in 0..8 {
            let payload = read_frame(&mut stream).unwrap().unwrap();
            let (_corr, body) = split_frame_v2(&payload).unwrap().expect("v2 reply");
            assert_eq!(body, b"ok");
        }
        drop(stream);
        shutdown_server(addr);
        handle.join().unwrap();
    }

    #[test]
    fn corrupt_length_prefix_drops_only_that_connection() {
        let (addr, handle) = serve_echo(ReactorConfig::default());
        let mut hostile = TcpStream::connect(addr).unwrap();
        hostile.write_all(&u32::MAX.to_be_bytes()).unwrap();
        // The server closes the hostile connection...
        let mut buf = [0u8; 8];
        assert_eq!(hostile.read(&mut buf).unwrap(), 0);
        // ...while a clean connection is unaffected.
        let mut stream = TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, b"alive").unwrap();
        assert_eq!(read_frame(&mut stream).unwrap().unwrap(), b"alive");
        drop(stream);
        shutdown_server(addr);
        handle.join().unwrap();
    }
}
