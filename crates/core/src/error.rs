//! Build-time errors.

use std::fmt;

/// Why an index could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// No triples were added.
    EmptyCorpus,
    /// Invalid distance weights.
    BadWeights(String),
    /// A document failed NLP extraction completely.
    NoTriplesExtracted {
        /// The offending document name.
        document: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::EmptyCorpus => f.write_str("cannot build an index over zero triples"),
            BuildError::BadWeights(msg) => write!(f, "invalid distance weights: {msg}"),
            BuildError::NoTriplesExtracted { document } => {
                write!(f, "document '{document}' produced no triples")
            }
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(BuildError::EmptyCorpus.to_string().contains("zero triples"));
        assert!(BuildError::BadWeights("x".into()).to_string().contains('x'));
        assert!(BuildError::NoTriplesExtracted {
            document: "D".into()
        }
        .to_string()
        .contains('D'));
    }
}
