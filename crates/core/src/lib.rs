//! # SemTree — semantic document indexing over RDF-style triples
//!
//! The end-to-end system of *"SemTree: an index for supporting semantic
//! retrieval of documents"* (ICDE Workshops 2015): document semantics are
//! expressed as `(subject, predicate, object)` triples, a **semantic
//! distance** (Eq. 1) compares them through vocabularies/taxonomies,
//! **FastMap** embeds them into `R^k`, and a **distributed KD-tree**
//! answers k-nearest and range queries — including the paper's case study,
//! finding *inconsistencies* in software-requirement documents.
//!
//! ```text
//!  documents ──NLP──▶ triples ──Eq.1 distance──▶ FastMap ──▶ R^k ──▶ distributed KD-tree
//!                                                                        │
//!            query triple ──project──▶ q ∈ R^k ──king/range──────────────┘
//! ```
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use semtree_core::{SemTree, Term, Triple};
//! use semtree_vocab::wordnet;
//!
//! let mut builder = SemTree::builder()
//!     .dimensions(4)
//!     .register_standard(Arc::new(wordnet::mini_taxonomy()));
//! builder.add_document_text(
//!     "REQ-1",
//!     "OBSW001 shall accept the start-up command. \
//!      OBSW001 shall send the heartbeat message.",
//! );
//! builder.add_document_text("REQ-2", "OBSW001 shall block the start-up command.");
//! let index = builder.build().expect("non-empty corpus");
//!
//! // Query by example: triples similar to "OBSW001 blocks start-up".
//! let query = Triple::new(
//!     Term::literal("OBSW001"),
//!     Term::concept_in("Fun", "block_cmd"),
//!     Term::concept_in("CmdType", "start-up"),
//! );
//! let hits = index.knn(&query, 2);
//! assert_eq!(hits.len(), 2);
//! // The exact match ranks first; the antinomic twin right after it.
//! assert_eq!(hits[0].triple.predicate.lexical(), "block_cmd");
//! assert_eq!(hits[1].triple.predicate.lexical(), "accept_cmd");
//! index.shutdown();
//! ```

mod builder;
mod error;
mod hit;
mod inconsistency;
mod index;
pub mod persist;
mod retrieval;

pub use builder::SemTreeBuilder;
pub use error::BuildError;
pub use hit::Hit;
pub use inconsistency::InconsistencyFinder;
pub use index::{QueryOptions, SemTree};
pub use persist::{load_index_str, save_index_string, PersistError};
pub use retrieval::{DocumentHit, DocumentRetriever};

// The vocabulary types a typical user needs, re-exported for convenience.
pub use semtree_cluster::CostModel;
pub use semtree_distance::{TripleDistance, VocabularyRegistry, Weights};
pub use semtree_model::{Term, Triple, TripleId, TripleStore};
pub use semtree_vocab::similarity::SimilarityMeasure;
pub use semtree_vocab::strings::StringMeasure;
pub use semtree_vocab::{AntinomyTable, Taxonomy};
