//! The assembled SemTree index.

use semtree_cluster::MetricsSnapshot;
use semtree_dist::{DistConfig, DistSemTree, GlobalStats, Neighbor, Query, QueryOutcome};
use semtree_distance::{MemoizedDistance, TripleDistance};
use semtree_fastmap::{Embedding, FastMap};
use semtree_model::{Triple, TripleId, TripleStore};

use crate::builder::SemTreeBuilder;
use crate::error::BuildError;
use crate::hit::Hit;

/// Per-query tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryOptions {
    /// Re-rank candidates by the true semantic distance. The KD-tree works
    /// in the (lossy) FastMap space; refinement over-fetches
    /// `k × overfetch`, recomputes Eq. 1 on the candidates, and keeps the
    /// best `k` — the standard filter-and-refine step (DESIGN.md §5).
    pub refine: bool,
    /// Over-fetch multiplier used when `refine` is set (≥ 1).
    pub overfetch: usize,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            refine: false,
            overfetch: 4,
        }
    }
}

impl QueryOptions {
    /// Plain embedded-space search (the paper's configuration).
    #[must_use]
    pub fn raw() -> Self {
        QueryOptions::default()
    }

    /// Filter-and-refine with the default over-fetch.
    #[must_use]
    pub fn refined() -> Self {
        QueryOptions {
            refine: true,
            overfetch: 4,
        }
    }
}

/// The SemTree index: triples → Eq. 1 distance → FastMap space →
/// distributed KD-tree.
pub struct SemTree {
    store: TripleStore,
    triples: Vec<Triple>,
    distance: TripleDistance,
    embedding: Embedding,
    tree: DistSemTree,
    dimensions: usize,
    bucket_size: usize,
    partitions: usize,
}

impl SemTree {
    /// Start building an index.
    #[must_use]
    pub fn builder() -> SemTreeBuilder {
        SemTreeBuilder::new()
    }

    pub(crate) fn assemble(
        builder: SemTreeBuilder,
        distance: TripleDistance,
    ) -> Result<SemTree, BuildError> {
        let store = builder.store;
        let triples: Vec<Triple> = store.iter().map(|(_, t)| t.clone()).collect();
        let n = triples.len();

        // FastMap over the semantic distance (memoized: pivot rows are hit
        // once per dimension per object).
        let memo = {
            let triples = &triples;
            let distance = &distance;
            MemoizedDistance::new(move |i: usize, j: usize| {
                distance.distance(&triples[i], &triples[j])
            })
        };
        let fastmap = FastMap::new(builder.dimensions).with_seed(builder.seed);
        let embedding = fastmap.embed(n, &|i, j| memo.distance(i, j));

        // Load the distributed tree; the embedding is the fan-out sample.
        let tree = build_tree(
            &embedding,
            builder.dimensions,
            builder.bucket_size,
            builder.partitions,
            builder.cost,
        );

        Ok(SemTree {
            store,
            triples,
            distance,
            embedding,
            tree,
            dimensions: builder.dimensions,
            bucket_size: builder.bucket_size,
            partitions: builder.partitions,
        })
    }

    /// Reassemble an index from persisted parts (see the [`crate::persist`]
    /// format): the expensive FastMap embedding is reused verbatim; only
    /// the distributed tree is reloaded from the stored coordinates.
    pub(crate) fn from_parts(
        store: TripleStore,
        distance: TripleDistance,
        embedding: Embedding,
        bucket_size: usize,
        partitions: usize,
        cost: semtree_cluster::CostModel,
    ) -> SemTree {
        let triples: Vec<Triple> = store.iter().map(|(_, t)| t.clone()).collect();
        let dimensions = embedding.dimensions();
        let tree = build_tree(&embedding, dimensions, bucket_size, partitions, cost);
        SemTree {
            store,
            triples,
            distance,
            embedding,
            tree,
            dimensions,
            bucket_size,
            partitions,
        }
    }

    /// Leaf bucket capacity the tree was built with.
    #[must_use]
    pub fn bucket_size(&self) -> usize {
        self.bucket_size
    }

    /// Partition count the tree was built with.
    #[must_use]
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Number of indexed (distinct) triples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether the index is empty (never true: builders reject empty
    /// corpora).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// The triple stored under an id.
    #[must_use]
    pub fn triple(&self, id: TripleId) -> Option<&Triple> {
        self.triples.get(id.index())
    }

    /// The underlying document/triple store.
    #[must_use]
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// The semantic distance in use.
    #[must_use]
    pub fn distance(&self) -> &TripleDistance {
        &self.distance
    }

    /// The FastMap embedding.
    #[must_use]
    pub fn embedding(&self) -> &Embedding {
        &self.embedding
    }

    /// FastMap dimensionality.
    #[must_use]
    pub fn dimensions(&self) -> usize {
        self.dimensions
    }

    /// Project an arbitrary (possibly unseen) triple into the index's
    /// FastMap space.
    #[must_use]
    pub fn project(&self, query: &Triple) -> Vec<f64> {
        self.embedding
            .project_with(&|pivot| self.distance.distance(query, &self.triples[pivot]))
    }

    /// k-nearest triples by example (paper §III-B.3), default options.
    #[must_use]
    pub fn knn(&self, query: &Triple, k: usize) -> Vec<Hit> {
        self.knn_with(query, k, QueryOptions::default())
    }

    /// k-nearest with explicit [`QueryOptions`].
    #[must_use]
    pub fn knn_with(&self, query: &Triple, k: usize, opts: QueryOptions) -> Vec<Hit> {
        let point = self.project(query);
        let fetch = if opts.refine {
            k.saturating_mul(opts.overfetch.max(1))
        } else {
            k
        };
        let neighbors = read_neighbors(&self.tree, Query::knn(&point, fetch));
        let mut hits: Vec<Hit> = neighbors
            .into_iter()
            .map(|n| self.to_hit(n.payload, n.dist, opts.refine.then_some(query)))
            .collect();
        if opts.refine {
            hits.sort_by(|a, b| {
                a.ranking_distance()
                    .partial_cmp(&b.ranking_distance())
                    .expect("finite distances")
            });
            hits.truncate(k);
        }
        hits
    }

    /// Range query in the embedded space (paper §III-B.4): all triples
    /// whose FastMap image lies within `radius` of the query's image.
    #[must_use]
    pub fn range(&self, query: &Triple, radius: f64) -> Vec<Hit> {
        let point = self.project(query);
        read_neighbors(&self.tree, Query::range(&point, radius))
            .into_iter()
            .map(|n| self.to_hit(n.payload, n.dist, None))
            .collect()
    }

    /// Range query by *semantic* radius: over-fetches in the embedded
    /// space (scaled by `slack ≥ 1`), then keeps candidates whose true
    /// Eq. 1 distance is within `radius`.
    #[must_use]
    pub fn range_semantic(&self, query: &Triple, radius: f64, slack: f64) -> Vec<Hit> {
        let slack = slack.max(1.0);
        let point = self.project(query);
        let mut hits: Vec<Hit> = read_neighbors(&self.tree, Query::range(&point, radius * slack))
            .into_iter()
            .map(|n| self.to_hit(n.payload, n.dist, Some(query)))
            .filter(|h| h.semantic_distance.expect("refined") <= radius)
            .collect();
        hits.sort_by(|a, b| {
            a.ranking_distance()
                .partial_cmp(&b.ranking_distance())
                .expect("finite distances")
        });
        hits
    }

    fn to_hit(&self, payload: u64, embedded: f64, refine_against: Option<&Triple>) -> Hit {
        let id = TripleId(u32::try_from(payload).expect("payloads are triple ids"));
        let triple = self.triples[id.index()].clone();
        let semantic = refine_against.map(|q| self.distance.distance(q, &triple));
        Hit {
            id,
            triple,
            embedded_distance: embedded,
            semantic_distance: semantic,
        }
    }

    /// Exact pattern matching over the indexed triples (`None` positions
    /// are wildcards) — the store-level complement of the approximate
    /// index queries, for "various pattern queries" on bound positions.
    pub fn find_pattern<'a>(
        &'a self,
        pattern: &'a semtree_model::TriplePattern,
    ) -> impl Iterator<Item = (TripleId, &'a Triple)> + 'a {
        self.store.matching(pattern)
    }

    /// Incrementally insert a triple into the *built* index under the named
    /// document (created on demand) — the paper's dynamic insertion
    /// surfaced at the API level. The new triple is projected into the
    /// existing FastMap space via the stored pivots (its coordinates do not
    /// perturb previously indexed points), then inserted through the
    /// distributed insertion algorithm. Re-inserting an already-indexed
    /// triple records the new document occurrence without duplicating the
    /// index point.
    ///
    /// Returns the triple's id and whether it was new to the index.
    pub fn insert_triple(&mut self, document: &str, triple: Triple) -> (TripleId, bool) {
        let doc = match self.store.document_by_name(document) {
            Some(d) => d.id,
            None => self.store.create_document(document),
        };
        let existing = self.store.id_of(&triple);
        let id = self.store.insert(doc, triple.clone());
        if existing.is_some() {
            return (id, false);
        }
        debug_assert_eq!(id.index(), self.triples.len());
        let point = self.project(&triple);
        insert_point(&self.tree, &point, u64::from(id.0));
        self.embedding.push_point(&point);
        self.triples.push(triple);
        (id, true)
    }

    /// Distributed-tree statistics (per-partition).
    #[must_use]
    pub fn tree_stats(&self) -> GlobalStats {
        self.tree.global_stats()
    }

    /// Interconnect metrics.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.tree.metrics()
    }

    /// Reset interconnect metrics.
    pub fn reset_metrics(&self) {
        self.tree.reset_metrics();
    }

    /// Shut the simulated cluster down.
    pub fn shutdown(self) {
        self.tree.shutdown();
    }
}

/// Build (or rebuild) the distributed tree over an embedding's points.
/// Run a read query against the in-process tree. The cluster lives in
/// this process and its actors outlive the facade, so the only failure
/// is a dead partition thread — unrecoverable index corruption.
fn read_neighbors(tree: &DistSemTree, query: Query) -> Vec<Neighbor<u64>> {
    tree.query(query)
        .and_then(QueryOutcome::neighbors)
        .expect("in-process cluster query failed")
}

/// Insert into the in-process tree; same failure reasoning as
/// [`read_neighbors`], and a silently dropped insert would desync the
/// tree from the triple store.
fn insert_point(tree: &DistSemTree, point: &[f64], payload: u64) {
    tree.query(Query::insert(point, payload))
        .and_then(QueryOutcome::inserted)
        .expect("in-process cluster insert failed");
}

fn build_tree(
    embedding: &Embedding,
    dims: usize,
    bucket_size: usize,
    partitions: usize,
    cost: semtree_cluster::CostModel,
) -> DistSemTree {
    let config = DistConfig::new(dims)
        .with_bucket_size(bucket_size)
        .with_max_partitions(partitions.max(64));
    let tree = if partitions <= 1 {
        DistSemTree::single(config, cost)
    } else {
        let sample: Vec<Vec<f64>> = embedding
            .iter()
            .take(4096)
            .map(|(_, p)| p.to_vec())
            .collect();
        DistSemTree::with_fanout(config, cost, partitions, &sample)
    };
    for (i, p) in embedding.iter() {
        insert_point(&tree, p, i as u64);
    }
    tree
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use semtree_model::Term;
    use semtree_vocab::wordnet;

    use super::*;

    fn triple(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::literal(s), Term::concept(p), Term::concept(o))
    }

    fn small_index(partitions: usize) -> SemTree {
        let mut b = SemTree::builder()
            .dimensions(4)
            .bucket_size(4)
            .partitions(partitions)
            .register_standard(Arc::new(wordnet::mini_taxonomy()));
        let verbs = [
            "accept", "block", "send", "receive", "start", "stop", "monitor", "check",
        ];
        let objs = ["command", "message", "mode", "signal"];
        let mut triples = Vec::new();
        for (i, v) in verbs.iter().enumerate() {
            for (j, o) in objs.iter().enumerate() {
                triples.push(triple(&format!("ACT{:02}", (i + j) % 5), v, o));
            }
        }
        b.add_triples("D", triples);
        b.build().unwrap()
    }

    #[test]
    fn knn_exact_match_ranks_first() {
        let idx = small_index(1);
        let q = triple("ACT00", "accept", "command");
        let hits = idx.knn(&q, 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].triple, q);
        assert!(hits[0].embedded_distance < 1e-9);
        idx.shutdown();
    }

    #[test]
    fn knn_brute_force_agreement_in_embedded_space() {
        let idx = small_index(1);
        let q = triple("ACT01", "send", "message");
        let point = idx.project(&q);
        let mut brute: Vec<(f64, usize)> = (0..idx.len())
            .map(|i| {
                let p = idx.embedding().point(i);
                let d = p
                    .iter()
                    .zip(&point)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                (d, i)
            })
            .collect();
        brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let hits = idx.knn(&q, 5);
        for (h, (bd, _)) in hits.iter().zip(brute.iter()) {
            assert!((h.embedded_distance - bd).abs() < 1e-9);
        }
        idx.shutdown();
    }

    #[test]
    fn multi_partition_index_matches_single_partition() {
        let single = small_index(1);
        let multi = small_index(3);
        let q = triple("ACT02", "start", "mode");
        let h1: Vec<f64> = single
            .knn(&q, 6)
            .iter()
            .map(|h| h.embedded_distance)
            .collect();
        let h3: Vec<f64> = multi
            .knn(&q, 6)
            .iter()
            .map(|h| h.embedded_distance)
            .collect();
        for (a, b) in h1.iter().zip(&h3) {
            assert!((a - b).abs() < 1e-9, "{h1:?} vs {h3:?}");
        }
        single.shutdown();
        multi.shutdown();
    }

    #[test]
    fn refinement_orders_by_semantic_distance() {
        let idx = small_index(1);
        let q = triple("ACT00", "accept", "command");
        let hits = idx.knn_with(&q, 5, QueryOptions::refined());
        assert_eq!(hits.len(), 5);
        for h in &hits {
            assert!(h.semantic_distance.is_some());
        }
        for w in hits.windows(2) {
            assert!(w[0].ranking_distance() <= w[1].ranking_distance() + 1e-12);
        }
        idx.shutdown();
    }

    #[test]
    fn range_semantic_filters_by_true_distance() {
        let idx = small_index(1);
        let q = triple("ACT00", "accept", "command");
        let hits = idx.range_semantic(&q, 0.25, 2.0);
        assert!(!hits.is_empty(), "the exact match is within any radius");
        for h in &hits {
            assert!(h.semantic_distance.unwrap() <= 0.25);
        }
        idx.shutdown();
    }

    #[test]
    fn range_in_embedded_space() {
        let idx = small_index(1);
        let q = triple("ACT00", "accept", "command");
        let all = idx.range(&q, 10.0); // distances are ≤ 1: radius 10 = everything
        assert_eq!(all.len(), idx.len());
        let none = idx.range(&q, -0.0);
        assert!(none.len() <= 1); // at most the exact match at distance 0
        idx.shutdown();
    }

    #[test]
    fn project_is_stable_for_indexed_triples() {
        let idx = small_index(1);
        let t = idx.triple(TripleId(3)).unwrap().clone();
        let projected = idx.project(&t);
        let stored = idx.embedding().point(3);
        for (a, b) in projected.iter().zip(stored) {
            assert!((a - b).abs() < 1e-9);
        }
        idx.shutdown();
    }

    #[test]
    fn find_pattern_filters_exactly() {
        use semtree_model::TriplePattern;
        let idx = small_index(1);
        let all = idx.find_pattern(&TriplePattern::any()).count();
        assert_eq!(all, idx.len());
        let p = TriplePattern::any().with_predicate(Term::concept("accept"));
        let hits: Vec<_> = idx.find_pattern(&p).collect();
        assert_eq!(hits.len(), 4); // one per object class
        assert!(hits.iter().all(|(_, t)| t.predicate.lexical() == "accept"));
        idx.shutdown();
    }

    #[test]
    fn incremental_insert_is_queryable() {
        let mut idx = small_index(1);
        let before = idx.len();
        let new = triple("NEWACT", "validate", "command");
        let (id, fresh) = idx.insert_triple("late-doc", new.clone());
        assert!(fresh);
        assert_eq!(idx.len(), before + 1);
        assert_eq!(idx.triple(id), Some(&new));
        // The new triple is immediately its own nearest neighbour.
        let hits = idx.knn(&new, 1);
        assert_eq!(hits[0].id, id);
        assert!(hits[0].embedded_distance < 1e-9);
        // The document occurrence was recorded.
        assert!(idx.store().document_by_name("late-doc").is_some());
        idx.shutdown();
    }

    #[test]
    fn incremental_reinsert_does_not_duplicate() {
        let mut idx = small_index(1);
        let existing = idx.triple(TripleId(0)).unwrap().clone();
        let before = idx.len();
        let (id, fresh) = idx.insert_triple("dup-doc", existing);
        assert!(!fresh);
        assert_eq!(id, TripleId(0));
        assert_eq!(idx.len(), before);
        idx.shutdown();
    }

    #[test]
    fn incremental_inserts_preserve_query_exactness() {
        let mut idx = small_index(1);
        for i in 0..20u32 {
            idx.insert_triple("inc", triple(&format!("X{i}"), "monitor", "sensor"));
        }
        // Brute-force check in the embedded space.
        let q = triple("X7", "monitor", "sensor");
        let point = idx.project(&q);
        let mut best = f64::INFINITY;
        for i in 0..idx.len() {
            let p = idx.embedding().point(i);
            let d = p
                .iter()
                .zip(&point)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            best = best.min(d);
        }
        let hits = idx.knn(&q, 1);
        assert!((hits[0].embedded_distance - best).abs() < 1e-9);
        idx.shutdown();
    }

    #[test]
    fn accessors() {
        let idx = small_index(1);
        assert!(!idx.is_empty());
        assert_eq!(idx.dimensions(), 4);
        assert_eq!(idx.len(), 32);
        assert!(idx.triple(TripleId(0)).is_some());
        assert!(idx.triple(TripleId(9999)).is_none());
        assert!(idx.store().len() == idx.len());
        let stats = idx.tree_stats();
        assert_eq!(stats.total_points(), 32);
        idx.shutdown();
    }
}
