//! Query results.

use semtree_model::{Triple, TripleId};

/// One query hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Id of the matched triple in the index's store.
    pub id: TripleId,
    /// The matched triple.
    pub triple: Triple,
    /// Distance in the FastMap (embedded) space — what the KD-tree ranked
    /// by.
    pub embedded_distance: f64,
    /// The true semantic distance (Eq. 1), present when the query ran with
    /// refinement ([`crate::QueryOptions::refine`]).
    pub semantic_distance: Option<f64>,
}

impl Hit {
    /// The distance refinement ranked by: semantic when present, embedded
    /// otherwise.
    #[must_use]
    pub fn ranking_distance(&self) -> f64 {
        self.semantic_distance.unwrap_or(self.embedded_distance)
    }
}

#[cfg(test)]
mod tests {
    use semtree_model::Term;

    use super::*;

    #[test]
    fn ranking_distance_prefers_semantic() {
        let t = Triple::new(Term::literal("s"), Term::concept("p"), Term::concept("o"));
        let mut h = Hit {
            id: TripleId(0),
            triple: t,
            embedded_distance: 0.5,
            semantic_distance: None,
        };
        assert_eq!(h.ranking_distance(), 0.5);
        h.semantic_distance = Some(0.2);
        assert_eq!(h.ranking_distance(), 0.2);
    }
}
