//! Document-level retrieval on top of the triple index.
//!
//! The paper's goal is "supporting *retrieval of documents*": a document's
//! semantics is the set of triples extracted from it, so document ranking
//! aggregates triple-level k-NN hits back onto the documents that asserted
//! them. Each query triple contributes `1 − d` for the best-matching
//! triple a document contains (0 when the document misses the k-NN ring
//! entirely), and a document's score is the mean contribution over the
//! query triples.

use std::collections::HashMap;

use semtree_model::{DocumentId, Triple, TripleId};
use semtree_nlp::SvoExtractor;

use crate::index::{QueryOptions, SemTree};

/// One ranked document.
#[derive(Debug, Clone, PartialEq)]
pub struct DocumentHit {
    /// The document's id in the index's store.
    pub doc: DocumentId,
    /// The document's external name.
    pub name: String,
    /// Aggregate similarity in `[0, 1]`, higher is better.
    pub score: f64,
    /// The matched triples with their distances, best first.
    pub matched: Vec<(TripleId, f64)>,
}

/// Ranks documents by the semantic similarity of their triples to a query.
pub struct DocumentRetriever<'a> {
    index: &'a SemTree,
    extractor: SvoExtractor,
    /// Triple-level neighbourhood size per query triple.
    k: usize,
    /// Query options for the underlying triple searches.
    opts: QueryOptions,
}

impl<'a> DocumentRetriever<'a> {
    /// A retriever with triple-level `k = 10` and raw (embedded-space)
    /// matching.
    #[must_use]
    pub fn new(index: &'a SemTree) -> Self {
        DocumentRetriever {
            index,
            extractor: SvoExtractor::requirements(),
            k: 10,
            opts: QueryOptions::default(),
        }
    }

    /// Set the per-query-triple neighbourhood size.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn with_k(mut self, k: usize) -> Self {
        assert!(k > 0, "neighbourhood size must be at least 1");
        self.k = k;
        self
    }

    /// Use refined (true-distance) triple matching.
    #[must_use]
    pub fn with_options(mut self, opts: QueryOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Rank documents for a single query triple.
    #[must_use]
    pub fn query_triple(&self, query: &Triple) -> Vec<DocumentHit> {
        self.query_triples(std::slice::from_ref(query))
    }

    /// Rank documents for a set of query triples (query-by-document).
    #[must_use]
    pub fn query_triples(&self, queries: &[Triple]) -> Vec<DocumentHit> {
        if queries.is_empty() {
            return Vec::new();
        }
        // Per document: summed best-contribution and matched triples.
        let mut scores: HashMap<DocumentId, f64> = HashMap::new();
        let mut matches: HashMap<DocumentId, Vec<(TripleId, f64)>> = HashMap::new();

        for query in queries {
            let hits = self.index.knn_with(query, self.k, self.opts);
            // Best distance per document for THIS query triple.
            let mut best: HashMap<DocumentId, (TripleId, f64)> = HashMap::new();
            for hit in hits {
                let d = hit.ranking_distance();
                let docs = self
                    .index
                    .store()
                    .documents_of(hit.id)
                    .expect("hit ids come from the store");
                for &doc in docs {
                    match best.get(&doc) {
                        Some(&(_, existing)) if existing <= d => {}
                        _ => {
                            best.insert(doc, (hit.id, d));
                        }
                    }
                }
            }
            for (doc, (tid, d)) in best {
                *scores.entry(doc).or_insert(0.0) += (1.0 - d).max(0.0);
                matches.entry(doc).or_default().push((tid, d));
            }
        }

        let n_queries = queries.len() as f64;
        let mut out: Vec<DocumentHit> = scores
            .into_iter()
            .map(|(doc, sum)| {
                let mut matched = matches.remove(&doc).unwrap_or_default();
                matched.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
                DocumentHit {
                    doc,
                    name: self
                        .index
                        .store()
                        .document(doc)
                        .expect("documents_of returns live ids")
                        .name
                        .clone(),
                    score: sum / n_queries,
                    matched,
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("finite scores")
                .then_with(|| a.doc.cmp(&b.doc))
        });
        out
    }

    /// Rank documents for a natural-language query, extracting its triples
    /// with the requirements NLP pipeline. Returns an empty ranking when
    /// no triple could be extracted.
    #[must_use]
    pub fn query_text(&self, text: &str) -> Vec<DocumentHit> {
        let queries = self.extractor.extract(text);
        self.query_triples(&queries)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use semtree_model::Term;
    use semtree_vocab::wordnet;

    use super::*;
    use crate::index::SemTree;

    fn req(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(
            Term::literal(s),
            Term::concept_in("Fun", p),
            Term::concept_in("CmdType", o),
        )
    }

    fn index() -> SemTree {
        let mut b = SemTree::builder()
            .dimensions(4)
            .bucket_size(4)
            .register_standard(Arc::new(wordnet::mini_taxonomy()));
        b.add_triples(
            "DOC-A",
            vec![
                req("OBSW001", "accept_cmd", "start-up"),
                req("OBSW001", "send_msg", "heartbeat"),
            ],
        );
        b.add_triples(
            "DOC-B",
            vec![
                req("OBSW001", "block_cmd", "start-up"),
                req("PSU001", "enable_out", "heater"),
            ],
        );
        b.add_triples("DOC-C", vec![req("TCU009", "monitor_par", "temperature")]);
        b.build().unwrap()
    }

    #[test]
    fn exact_triple_ranks_its_document_first() {
        let idx = index();
        let r = DocumentRetriever::new(&idx).with_k(3);
        let hits = r.query_triple(&req("OBSW001", "accept_cmd", "start-up"));
        assert!(!hits.is_empty());
        assert_eq!(hits[0].name, "DOC-A");
        assert!(hits[0].score > 0.9, "exact match ≈ 1: {}", hits[0].score);
        // Ranked descending.
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        idx.shutdown();
    }

    #[test]
    fn multi_triple_query_aggregates() {
        let idx = index();
        let r = DocumentRetriever::new(&idx).with_k(2);
        let hits = r.query_triples(&[
            req("OBSW001", "accept_cmd", "start-up"),
            req("OBSW001", "send_msg", "heartbeat"),
        ]);
        // DOC-A matches both query triples exactly → top score.
        assert_eq!(hits[0].name, "DOC-A");
        assert!(hits[0].score > 0.9);
        assert_eq!(hits[0].matched.len(), 2);
        idx.shutdown();
    }

    #[test]
    fn text_query_goes_through_nlp() {
        let idx = index();
        let r = DocumentRetriever::new(&idx);
        let hits = r.query_text("The OBSW001 shall accept the start-up command.");
        assert_eq!(hits[0].name, "DOC-A");
        assert!(r.query_text("no parseable requirement here").is_empty());
        idx.shutdown();
    }

    #[test]
    fn empty_query_set_is_empty() {
        let idx = index();
        let r = DocumentRetriever::new(&idx);
        assert!(r.query_triples(&[]).is_empty());
        idx.shutdown();
    }

    #[test]
    fn matched_triples_are_sorted_by_distance() {
        let idx = index();
        let r = DocumentRetriever::new(&idx).with_k(5);
        let hits = r.query_triple(&req("OBSW001", "accept_cmd", "start-up"));
        for h in &hits {
            for w in h.matched.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
        }
        idx.shutdown();
    }

    #[test]
    fn refined_options_are_honoured() {
        let idx = index();
        let r = DocumentRetriever::new(&idx)
            .with_k(3)
            .with_options(QueryOptions::refined());
        let hits = r.query_triple(&req("OBSW001", "accept_cmd", "start-up"));
        assert_eq!(hits[0].name, "DOC-A");
        idx.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_rejected() {
        let idx = index();
        let _ = DocumentRetriever::new(&idx).with_k(0);
    }
}
