//! The case study: inconsistency detection over requirement triples.

use semtree_model::{Term, Triple, TripleId};
use semtree_vocab::AntinomyTable;

use crate::hit::Hit;
use crate::index::{QueryOptions, SemTree};

/// Finds candidate inconsistencies the way §II prescribes: given a
/// requirement triple, build the *target triple* (same subject and object,
/// antinomic predicate) and ask the index for everything semantically close
/// to it — "all the triples 'semantically close' to the target one" are the
/// candidate contradictions.
pub struct InconsistencyFinder<'a> {
    index: &'a SemTree,
    antinomies: AntinomyTable,
    /// Vocabulary prefix predicates live in (`Fun` for requirements).
    predicate_prefix: Option<String>,
}

impl<'a> InconsistencyFinder<'a> {
    /// Wrap an index with the antinomy vocabulary.
    #[must_use]
    pub fn new(index: &'a SemTree, antinomies: AntinomyTable) -> Self {
        InconsistencyFinder {
            index,
            antinomies,
            predicate_prefix: Some("Fun".to_string()),
        }
    }

    /// Override the predicate vocabulary prefix (`None` = standard).
    #[must_use]
    pub fn with_predicate_prefix(mut self, prefix: Option<String>) -> Self {
        self.predicate_prefix = prefix;
        self
    }

    /// The antinomy table in use.
    #[must_use]
    pub fn antinomies(&self) -> &AntinomyTable {
        &self.antinomies
    }

    /// The target (query) triple for a requirement triple: subject and
    /// object kept, predicate replaced by its canonical antonym. `None`
    /// when the predicate has no antonym in the vocabulary.
    #[must_use]
    pub fn target_triple(&self, triple: &Triple) -> Option<Triple> {
        let antonym = self
            .antinomies
            .canonical_antonym(triple.predicate.lexical())?;
        let predicate = match &self.predicate_prefix {
            Some(p) => Term::concept_in(p.clone(), antonym),
            None => Term::concept(antonym),
        };
        Some(triple.with_predicate(predicate))
    }

    /// Candidate inconsistencies for `triple`: the k-NN ring around its
    /// target triple (the paper's evaluation protocol). `None` when the
    /// predicate has no antonym.
    #[must_use]
    pub fn candidates(&self, triple: &Triple, k: usize) -> Option<Vec<Hit>> {
        self.candidates_with(triple, k, QueryOptions::default())
    }

    /// [`InconsistencyFinder::candidates`] with explicit query options.
    #[must_use]
    pub fn candidates_with(
        &self,
        triple: &Triple,
        k: usize,
        opts: QueryOptions,
    ) -> Option<Vec<Hit>> {
        let target = self.target_triple(triple)?;
        let mut hits = self.index.knn_with(&target, k, opts);
        // The queried triple itself may be indexed; it is not an
        // inconsistency with itself.
        hits.retain(|h| h.triple != *triple);
        Some(hits)
    }

    /// Strict confirmation of candidates by the formal rule: same subject,
    /// same object, antinomic predicates. This is the high-precision
    /// post-filter a production deployment would add on top of the paper's
    /// raw k-NN ring.
    #[must_use]
    pub fn confirmed(&self, triple: &Triple, k: usize) -> Option<Vec<Hit>> {
        let hits = self.candidates(triple, k)?;
        Some(
            hits.into_iter()
                .filter(|h| self.is_inconsistent_pair(triple, &h.triple))
                .collect(),
        )
    }

    /// The §II rule as a predicate over two triples.
    #[must_use]
    pub fn is_inconsistent_pair(&self, a: &Triple, b: &Triple) -> bool {
        a.subject == b.subject
            && a.object == b.object
            && self
                .antinomies
                .are_antonyms(a.predicate.lexical(), b.predicate.lexical())
    }

    /// Scan every indexed triple and return all confirmed inconsistent
    /// pairs `(a, b)` with `a < b` — the exhaustive sweep an offline
    /// verification job runs.
    #[must_use]
    pub fn sweep(&self, k: usize) -> Vec<(TripleId, TripleId)> {
        let mut out = Vec::new();
        for i in 0..self.index.len() {
            let id = TripleId(i as u32);
            let triple = self.index.triple(id).expect("dense ids").clone();
            let Some(hits) = self.confirmed(&triple, k) else {
                continue;
            };
            for h in hits {
                let pair = if id < h.id { (id, h.id) } else { (h.id, id) };
                out.push(pair);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use semtree_vocab::wordnet;

    use super::*;
    use crate::index::SemTree;

    fn fun(p: &str) -> Term {
        Term::concept_in("Fun", p)
    }

    fn req(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::literal(s), fun(p), Term::concept_in("CmdType", o))
    }

    fn antinomies() -> AntinomyTable {
        let mut a = AntinomyTable::new();
        a.declare("accept_cmd", "block_cmd");
        a.declare("enable_out", "disable_out");
        a
    }

    fn fun_taxonomy() -> Arc<semtree_vocab::Taxonomy> {
        let mut b = semtree_vocab::Taxonomy::builder("Fun");
        b.add("command_handling", &[]);
        b.add("accept_cmd", &["command_handling"]);
        b.add("block_cmd", &["command_handling"]);
        b.add("actuation", &[]);
        b.add("enable_out", &["actuation"]);
        b.add("disable_out", &["actuation"]);
        b.add("telemetry", &[]);
        b.add("send_msg", &["telemetry"]);
        Arc::new(b.build().unwrap())
    }

    fn cmd_taxonomy() -> Arc<semtree_vocab::Taxonomy> {
        let mut b = semtree_vocab::Taxonomy::builder("CmdType");
        for c in ["start-up", "shut-down", "reset", "standby"] {
            b.add(c, &[]);
        }
        Arc::new(b.build().unwrap())
    }

    fn index() -> SemTree {
        let mut b = SemTree::builder()
            .dimensions(4)
            .bucket_size(4)
            .register_standard(Arc::new(wordnet::mini_taxonomy()))
            .register_vocabulary("Fun", fun_taxonomy())
            .register_vocabulary("CmdType", cmd_taxonomy());
        b.add_triples(
            "D",
            vec![
                req("OBSW001", "accept_cmd", "start-up"),
                req("OBSW001", "block_cmd", "start-up"), // the contradiction
                req("OBSW001", "send_msg", "reset"),
                req("OBSW002", "accept_cmd", "start-up"),
                req("OBSW002", "enable_out", "standby"),
                req("OBSW003", "block_cmd", "shut-down"),
            ],
        );
        b.build().unwrap()
    }

    #[test]
    fn target_triple_follows_the_paper() {
        let idx = index();
        let f = InconsistencyFinder::new(&idx, antinomies());
        let t = req("OBSW001", "accept_cmd", "start-up");
        let target = f.target_triple(&t).unwrap();
        assert_eq!(target.subject, t.subject);
        assert_eq!(target.object, t.object);
        assert_eq!(target.predicate, fun("block_cmd"));
        // No antonym → no target.
        assert!(f.target_triple(&req("X", "send_msg", "reset")).is_none());
        idx.shutdown();
    }

    #[test]
    fn candidates_surface_the_contradiction_first() {
        let idx = index();
        let f = InconsistencyFinder::new(&idx, antinomies());
        let t = req("OBSW001", "accept_cmd", "start-up");
        let hits = f.candidates(&t, 3).unwrap();
        // The closest thing to (OBSW001, block_cmd, start-up) is the
        // indexed contradiction itself.
        assert_eq!(hits[0].triple, req("OBSW001", "block_cmd", "start-up"));
        assert!(hits[0].embedded_distance < 1e-9);
        // The query triple itself was filtered out.
        assert!(hits.iter().all(|h| h.triple != t));
        idx.shutdown();
    }

    #[test]
    fn confirmed_applies_the_formal_rule() {
        let idx = index();
        let f = InconsistencyFinder::new(&idx, antinomies());
        let t = req("OBSW001", "accept_cmd", "start-up");
        let confirmed = f.confirmed(&t, 5).unwrap();
        assert_eq!(confirmed.len(), 1);
        assert_eq!(confirmed[0].triple, req("OBSW001", "block_cmd", "start-up"));
        idx.shutdown();
    }

    #[test]
    fn is_inconsistent_pair_requires_all_three_conditions() {
        let idx = index();
        let f = InconsistencyFinder::new(&idx, antinomies());
        let a = req("OBSW001", "accept_cmd", "start-up");
        assert!(f.is_inconsistent_pair(&a, &req("OBSW001", "block_cmd", "start-up")));
        assert!(!f.is_inconsistent_pair(&a, &req("OBSW002", "block_cmd", "start-up"))); // subject
        assert!(!f.is_inconsistent_pair(&a, &req("OBSW001", "block_cmd", "shut-down"))); // object
        assert!(!f.is_inconsistent_pair(&a, &req("OBSW001", "send_msg", "start-up"))); // predicate
        assert!(!f.is_inconsistent_pair(&a, &a)); // not antonym of itself
        idx.shutdown();
    }

    #[test]
    fn sweep_finds_exactly_the_planted_pair() {
        let idx = index();
        let f = InconsistencyFinder::new(&idx, antinomies());
        let pairs = f.sweep(5);
        assert_eq!(pairs.len(), 1);
        let (a, b) = pairs[0];
        assert!(f.is_inconsistent_pair(idx.triple(a).unwrap(), idx.triple(b).unwrap()));
        idx.shutdown();
    }
}
