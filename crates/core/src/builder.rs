//! Fluent construction of a [`crate::SemTree`].

use std::sync::Arc;

use semtree_cluster::CostModel;
use semtree_distance::{TripleDistance, VocabularyRegistry, Weights};
use semtree_model::{Triple, TripleStore};
use semtree_nlp::SvoExtractor;
use semtree_vocab::Taxonomy;

use crate::error::BuildError;
use crate::index::SemTree;

/// Builder over vocabularies, data sources and tuning knobs.
///
/// Data can be added as parsed [`Triple`]s, as whole [`TripleStore`]s, or
/// as raw document text (run through the `semtree-nlp` extractor, the
/// paper's "NLP facilities").
pub struct SemTreeBuilder {
    pub(crate) dimensions: usize,
    pub(crate) bucket_size: usize,
    pub(crate) partitions: usize,
    pub(crate) seed: u64,
    pub(crate) weights: Weights,
    pub(crate) cost: CostModel,
    pub(crate) registry: VocabularyRegistry,
    pub(crate) store: TripleStore,
    extractor: SvoExtractor,
}

impl Default for SemTreeBuilder {
    fn default() -> Self {
        SemTreeBuilder {
            dimensions: 8,
            bucket_size: 32,
            partitions: 1,
            seed: 0x5E47EE,
            weights: Weights::default(),
            cost: CostModel::zero(),
            registry: VocabularyRegistry::new(),
            store: TripleStore::new(),
            extractor: SvoExtractor::requirements(),
        }
    }
}

impl SemTreeBuilder {
    /// A builder with defaults (8 FastMap dimensions, bucket 32, single
    /// partition, uniform weights, zero-cost interconnect).
    #[must_use]
    pub fn new() -> Self {
        SemTreeBuilder::default()
    }

    /// FastMap target dimensionality `k` (≥ 1).
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    #[must_use]
    pub fn dimensions(mut self, dims: usize) -> Self {
        assert!(dims > 0, "dimensionality must be at least 1");
        self.dimensions = dims;
        self
    }

    /// KD-tree leaf bucket size `Bs` (≥ 1).
    ///
    /// # Panics
    /// Panics if `bucket_size == 0`.
    #[must_use]
    pub fn bucket_size(mut self, bucket_size: usize) -> Self {
        assert!(bucket_size > 0, "bucket size must be at least 1");
        self.bucket_size = bucket_size;
        self
    }

    /// Number of partitions (1, or ≥ 3 — a routing root needs two data
    /// partitions).
    #[must_use]
    pub fn partitions(mut self, partitions: usize) -> Self {
        assert!(
            partitions == 1 || partitions >= 3,
            "partitions must be 1 or ≥ 3"
        );
        self.partitions = partitions;
        self
    }

    /// Seed for FastMap pivot selection.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Eq. 1 weights `(α, β, γ)`.
    #[must_use]
    pub fn weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// Simulated interconnect cost of the cluster.
    #[must_use]
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Register a taxonomy under a vocabulary prefix.
    #[must_use]
    pub fn register_vocabulary(mut self, prefix: impl Into<String>, tax: Arc<Taxonomy>) -> Self {
        self.registry.register(prefix, tax);
        self
    }

    /// Register the standard (unprefixed) taxonomy.
    #[must_use]
    pub fn register_standard(mut self, tax: Arc<Taxonomy>) -> Self {
        self.registry.register_standard(tax);
        self
    }

    /// Add pre-extracted triples under a named document.
    pub fn add_triples(
        &mut self,
        document: impl Into<String>,
        triples: impl IntoIterator<Item = Triple>,
    ) -> &mut Self {
        let doc = self.store.create_document(document);
        self.store.insert_all(doc, triples);
        self
    }

    /// Add a document as raw text; triples are extracted with the
    /// requirements NLP pipeline. Returns how many triples were extracted.
    pub fn add_document_text(&mut self, document: impl Into<String>, text: &str) -> usize {
        let triples = self.extractor.extract(text);
        let n = triples.len();
        let doc = self.store.create_document(document);
        self.store.insert_all(doc, triples);
        n
    }

    /// Absorb an existing store (documents and triples are re-inserted,
    /// preserving names).
    pub fn add_store(&mut self, store: &TripleStore) -> &mut Self {
        for doc in store.documents() {
            let new_doc = self.store.create_document(doc.name.clone());
            for &tid in &doc.triples {
                let t = store.get(tid).expect("document references interned triple");
                self.store.insert(new_doc, t.clone());
            }
        }
        self
    }

    /// Number of distinct triples staged so far.
    #[must_use]
    pub fn staged_triples(&self) -> usize {
        self.store.len()
    }

    /// Build the index: compute the Eq. 1 distance, run FastMap, and load
    /// the distributed KD-tree.
    pub fn build(mut self) -> Result<SemTree, BuildError> {
        if self.store.is_empty() {
            return Err(BuildError::EmptyCorpus);
        }
        let registry = Arc::new(std::mem::take(&mut self.registry));
        let distance = TripleDistance::new(self.weights, registry);
        SemTree::assemble(self, distance)
    }

    /// Build with a fully custom [`TripleDistance`] (overrides the weights
    /// and registry previously configured on the builder).
    pub fn build_with_distance(self, distance: TripleDistance) -> Result<SemTree, BuildError> {
        if self.store.is_empty() {
            return Err(BuildError::EmptyCorpus);
        }
        SemTree::assemble(self, distance)
    }
}

#[cfg(test)]
mod tests {
    use semtree_model::Term;

    use super::*;

    fn triple(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(
            Term::literal(s),
            Term::concept_in("Fun", p),
            Term::concept_in("CmdType", o),
        )
    }

    #[test]
    fn empty_corpus_is_rejected() {
        match SemTreeBuilder::new().build() {
            Err(e) => assert_eq!(e, BuildError::EmptyCorpus),
            Ok(_) => panic!("empty corpus must be rejected"),
        }
    }

    #[test]
    fn add_triples_stages() {
        let mut b = SemTreeBuilder::new();
        b.add_triples("D1", vec![triple("A", "p", "x"), triple("B", "q", "y")]);
        assert_eq!(b.staged_triples(), 2);
    }

    #[test]
    fn add_document_text_extracts() {
        let mut b = SemTreeBuilder::new();
        let n = b.add_document_text(
            "REQ-1",
            "OBSW001 shall accept the start-up command. Noise sentence here.",
        );
        assert_eq!(n, 1);
        assert_eq!(b.staged_triples(), 1);
    }

    #[test]
    fn add_store_copies_documents() {
        let mut src = TripleStore::new();
        let d = src.create_document("D1");
        src.insert(d, triple("A", "p", "x"));
        let mut b = SemTreeBuilder::new();
        b.add_store(&src);
        assert_eq!(b.staged_triples(), 1);
        assert!(b.store.document_by_name("D1").is_some());
    }

    #[test]
    #[should_panic(expected = "1 or ≥ 3")]
    fn two_partitions_rejected() {
        let _ = SemTreeBuilder::new().partitions(2);
    }
}
