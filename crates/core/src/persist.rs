//! Index persistence: save and reload a built index without re-running
//! FastMap.
//!
//! FastMap dominates index construction (`O(n·k)` semantic-distance
//! evaluations, each a taxonomy walk); the KD-tree reload from stored
//! coordinates is comparatively free. The format is a line-oriented text
//! file:
//!
//! ```text
//! SEMTREE-INDEX v1
//! dims 6
//! bucket 32
//! partitions 3
//! pivots 6
//! <a> <b> <d_ab>            # one line per dimension
//! points <n>
//! <c0> <c1> … <ck-1>        # one line per indexed triple, id order
//! store
//! …Turtle-like corpus (documents + triples), see semtree_model::turtle…
//! ```
//!
//! Floating-point values are written with Rust's shortest-roundtrip
//! formatting, so save → load is bit-exact. Vocabularies (taxonomies,
//! weights) are *not* stored — they are code/configuration, so
//! [`load_index_str`] takes the same [`TripleDistance`] the index was
//! built with; a mismatched distance degrades query quality but cannot
//! corrupt the structure.

use std::fmt::Write as _;

use semtree_cluster::CostModel;
use semtree_distance::TripleDistance;
use semtree_fastmap::{Embedding, PivotPair};
use semtree_model::{turtle, TripleStore};

use crate::index::SemTree;

/// Persistence failures.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// The header magic/version line is wrong.
    BadHeader(String),
    /// A section or field is missing or malformed.
    Malformed {
        /// 1-based line of the problem.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The embedded corpus failed to parse.
    Corpus(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadHeader(got) => write!(f, "bad header: {got:?}"),
            PersistError::Malformed { line, message } => {
                write!(f, "malformed index file at line {line}: {message}")
            }
            PersistError::Corpus(msg) => write!(f, "embedded corpus failed to parse: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

const MAGIC: &str = "SEMTREE-INDEX v1";

/// Serialize an index to the v1 text format.
#[must_use]
pub fn save_index_string(index: &SemTree) -> String {
    let emb = index.embedding();
    let mut out = String::new();
    let _ = writeln!(out, "{MAGIC}");
    let _ = writeln!(out, "dims {}", index.dimensions());
    let _ = writeln!(out, "bucket {}", index.bucket_size());
    let _ = writeln!(out, "partitions {}", index.partitions());
    let _ = writeln!(out, "pivots {}", emb.pivots().len());
    for p in emb.pivots() {
        let _ = writeln!(out, "{} {} {}", p.a, p.b, p.d_ab);
    }
    let _ = writeln!(out, "points {}", emb.len());
    for (_, coords) in emb.iter() {
        let mut first = true;
        for c in coords {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "{c}");
            first = false;
        }
        out.push('\n');
    }
    let _ = writeln!(out, "store");
    out.push_str(&turtle::write_store(index.store()));
    out
}

/// Reload an index from the v1 text format. `distance` must be the same
/// Eq. 1 configuration (weights + vocabularies) the index was built with;
/// `cost` configures the fresh simulated cluster.
pub fn load_index_str(
    data: &str,
    distance: TripleDistance,
    cost: CostModel,
) -> Result<SemTree, PersistError> {
    let mut lines = data.lines().enumerate();
    let mut next = |what: &str| {
        lines.next().ok_or_else(|| PersistError::Malformed {
            line: usize::MAX,
            message: format!("unexpected end of file, expected {what}"),
        })
    };

    let (_, header) = next("header")?;
    if header.trim() != MAGIC {
        return Err(PersistError::BadHeader(header.to_string()));
    }

    fn field(line: (usize, &str), key: &str) -> Result<usize, PersistError> {
        let (no, text) = line;
        let rest = text
            .strip_prefix(key)
            .ok_or_else(|| PersistError::Malformed {
                line: no + 1,
                message: format!("expected '{key} <value>', got {text:?}"),
            })?;
        rest.trim().parse().map_err(|e| PersistError::Malformed {
            line: no + 1,
            message: format!("bad {key} value: {e}"),
        })
    }

    let dims = field(next("dims")?, "dims")?;
    let bucket = field(next("bucket")?, "bucket")?;
    let partitions = field(next("partitions")?, "partitions")?;
    let n_pivots = field(next("pivots")?, "pivots")?;
    if n_pivots != dims {
        return Err(PersistError::Malformed {
            line: 5,
            message: format!("{n_pivots} pivots for {dims} dimensions"),
        });
    }

    let mut pivots = Vec::with_capacity(n_pivots);
    for _ in 0..n_pivots {
        let (no, text) = next("pivot line")?;
        let mut parts = text.split_whitespace();
        let parse_err = |message: String| PersistError::Malformed {
            line: no + 1,
            message,
        };
        let a: usize = parts
            .next()
            .ok_or_else(|| parse_err("missing pivot a".into()))?
            .parse()
            .map_err(|e| parse_err(format!("bad pivot a: {e}")))?;
        let b: usize = parts
            .next()
            .ok_or_else(|| parse_err("missing pivot b".into()))?
            .parse()
            .map_err(|e| parse_err(format!("bad pivot b: {e}")))?;
        let d_ab: f64 = parts
            .next()
            .ok_or_else(|| parse_err("missing pivot distance".into()))?
            .parse()
            .map_err(|e| parse_err(format!("bad pivot distance: {e}")))?;
        pivots.push(PivotPair { a, b, d_ab });
    }

    let n_points = field(next("points")?, "points")?;
    let mut coords = Vec::with_capacity(n_points * dims);
    for _ in 0..n_points {
        let (no, text) = next("coordinate line")?;
        let mut count = 0usize;
        for tok in text.split_whitespace() {
            let v: f64 = tok.parse().map_err(|e| PersistError::Malformed {
                line: no + 1,
                message: format!("bad coordinate: {e}"),
            })?;
            coords.push(v);
            count += 1;
        }
        if count != dims {
            return Err(PersistError::Malformed {
                line: no + 1,
                message: format!("{count} coordinates, expected {dims}"),
            });
        }
    }

    let (store_no, store_marker) = next("store section")?;
    if store_marker.trim() != "store" {
        return Err(PersistError::Malformed {
            line: store_no + 1,
            message: format!("expected 'store', got {store_marker:?}"),
        });
    }
    let corpus: String = lines.map(|(_, l)| l).collect::<Vec<_>>().join("\n");
    let mut store = TripleStore::new();
    turtle::parse_into(&mut store, &corpus).map_err(|e| PersistError::Corpus(e.to_string()))?;
    if store.len() != n_points {
        return Err(PersistError::Corpus(format!(
            "store holds {} distinct triples but {n_points} points were saved",
            store.len()
        )));
    }

    let embedding = Embedding::from_parts(n_points, coords, pivots);
    Ok(SemTree::from_parts(
        store, distance, embedding, bucket, partitions, cost,
    ))
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use semtree_distance::{VocabularyRegistry, Weights};
    use semtree_model::{Term, Triple};
    use semtree_vocab::wordnet;

    use super::*;

    fn distance() -> TripleDistance {
        let mut reg = VocabularyRegistry::new();
        reg.register_standard(Arc::new(wordnet::mini_taxonomy()));
        TripleDistance::new(Weights::default(), Arc::new(reg))
    }

    fn sample_index() -> SemTree {
        let mut b = SemTree::builder().dimensions(3).bucket_size(4);
        let verbs = ["accept", "block", "send", "receive", "start", "stop"];
        let triples: Vec<Triple> = verbs
            .iter()
            .enumerate()
            .map(|(i, v)| {
                Triple::new(
                    Term::literal(format!("ACT{i:02}")),
                    Term::concept(*v),
                    Term::concept("command"),
                )
            })
            .collect();
        b.add_triples("D", triples);
        b.build_with_distance(distance()).unwrap()
    }

    #[test]
    fn save_load_roundtrip_preserves_queries() {
        let idx = sample_index();
        let saved = save_index_string(&idx);
        let loaded = load_index_str(&saved, distance(), CostModel::zero()).unwrap();

        assert_eq!(loaded.len(), idx.len());
        assert_eq!(loaded.dimensions(), idx.dimensions());
        let q = Triple::new(
            Term::literal("ACT00"),
            Term::concept("accept"),
            Term::concept("command"),
        );
        let before = idx.knn(&q, 4);
        let after = loaded.knn(&q, 4);
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.id, b.id);
            assert!((a.embedded_distance - b.embedded_distance).abs() < 1e-15);
        }
        // Out-of-sample projection is identical (pivots round-tripped).
        let unseen = Triple::new(
            Term::literal("GHOST"),
            Term::concept("monitor"),
            Term::concept("signal"),
        );
        assert_eq!(idx.project(&unseen), loaded.project(&unseen));
        idx.shutdown();
        loaded.shutdown();
    }

    #[test]
    fn saved_form_is_stable() {
        let idx = sample_index();
        let once = save_index_string(&idx);
        let loaded = load_index_str(&once, distance(), CostModel::zero()).unwrap();
        let twice = save_index_string(&loaded);
        assert_eq!(once, twice, "save∘load∘save is identity");
        idx.shutdown();
        loaded.shutdown();
    }

    #[test]
    fn bad_header_rejected() {
        match load_index_str("NOT-AN-INDEX", distance(), CostModel::zero()) {
            Err(err) => assert!(matches!(err, PersistError::BadHeader(_))),
            Ok(_) => panic!("bad header must be rejected"),
        }
    }

    #[test]
    fn truncated_file_rejected() {
        let idx = sample_index();
        let saved = save_index_string(&idx);
        let truncated = &saved[..saved.len() / 2];
        assert!(load_index_str(truncated, distance(), CostModel::zero()).is_err());
        idx.shutdown();
    }

    #[test]
    fn corrupted_coordinates_rejected() {
        let idx = sample_index();
        let saved = save_index_string(&idx);
        let corrupted = saved.replacen("0.", "xx.", 1);
        match load_index_str(&corrupted, distance(), CostModel::zero()) {
            Err(err) => assert!(matches!(err, PersistError::Malformed { .. }), "{err}"),
            Ok(_) => panic!("corrupted coordinates must be rejected"),
        }
        idx.shutdown();
    }

    #[test]
    fn error_display() {
        assert!(PersistError::BadHeader("x".into())
            .to_string()
            .contains("header"));
        assert!(PersistError::Malformed {
            line: 3,
            message: "m".into()
        }
        .to_string()
        .contains("line 3"));
        assert!(PersistError::Corpus("c".into()).to_string().contains('c'));
    }
}
