//! The R-tree: STR bulk load, Guttman insertion, best-first search.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::mbr::Mbr;

/// Maximum children per node (Guttman's `M`).
const MAX_FANOUT: usize = 16;
/// Minimum fill used by the quadratic split (Guttman's `m`).
const MIN_FANOUT: usize = 4;

/// One search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct RNeighbor<P> {
    /// Euclidean distance from the query point.
    pub dist: f64,
    /// The stored payload.
    pub payload: P,
}

#[derive(Debug, Clone)]
enum Node<P> {
    Leaf { entries: Vec<(Box<[f64]>, P)> },
    Internal { children: Vec<(Mbr, usize)> },
}

/// An in-memory R-tree over `R^k` points with payloads `P`.
#[derive(Debug, Clone)]
pub struct RTree<P> {
    dims: usize,
    nodes: Vec<Node<P>>,
    root: usize,
    len: usize,
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

impl<P: Clone> RTree<P> {
    /// An empty tree.
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    #[must_use]
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "dimensionality must be at least 1");
        RTree {
            dims,
            nodes: vec![Node::Leaf {
                entries: Vec::new(),
            }],
            root: 0,
            len: 0,
        }
    }

    /// Sort-Tile-Recursive bulk load.
    #[must_use]
    pub fn bulk_load(dims: usize, points: Vec<(Vec<f64>, P)>) -> Self {
        assert!(dims > 0, "dimensionality must be at least 1");
        for (coords, _) in &points {
            assert_eq!(coords.len(), dims, "dimensionality mismatch");
        }
        let len = points.len();
        let mut tree = RTree {
            dims,
            nodes: Vec::new(),
            root: 0,
            len,
        };
        if points.is_empty() {
            tree.nodes.push(Node::Leaf {
                entries: Vec::new(),
            });
            return tree;
        }

        // Tile points into leaves.
        let mut tiles: Vec<Vec<(Vec<f64>, P)>> = Vec::new();
        str_tile(points, dims, 0, MAX_FANOUT, &mut tiles);
        let mut level: Vec<(Mbr, usize)> = tiles
            .into_iter()
            .map(|tile| {
                let mbr = mbr_of_points(&tile);
                let idx = tree.nodes.len();
                tree.nodes.push(Node::Leaf {
                    entries: tile
                        .into_iter()
                        .map(|(c, p)| (c.into_boxed_slice(), p))
                        .collect(),
                });
                (mbr, idx)
            })
            .collect();

        // Pack upper levels in runs of MAX_FANOUT (tiles arrive in spatial
        // order, so consecutive grouping preserves locality).
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(MAX_FANOUT));
            for chunk in level.chunks(MAX_FANOUT) {
                let mut mbr = chunk[0].0.clone();
                for (m, _) in &chunk[1..] {
                    mbr.union_with(m);
                }
                let idx = tree.nodes.len();
                tree.nodes.push(Node::Internal {
                    children: chunk.to_vec(),
                });
                next.push((mbr, idx));
            }
            level = next;
        }
        tree.root = level[0].1;
        tree
    }

    /// Number of stored points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree stores no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Insert a point (Guttman: least-enlargement descent, quadratic
    /// split on overflow).
    pub fn insert(&mut self, coords: &[f64], payload: P) {
        assert_eq!(coords.len(), self.dims, "dimensionality mismatch");
        self.len += 1;
        // Descend, recording the path of (node, child position).
        let mut path: Vec<(usize, usize)> = Vec::new();
        let mut current = self.root;
        loop {
            match &self.nodes[current] {
                Node::Leaf { .. } => break,
                Node::Internal { children } => {
                    let target = Mbr::point(coords);
                    let (pos, _) = children
                        .iter()
                        .enumerate()
                        .min_by(|(_, (a, _)), (_, (b, _))| {
                            let ea = a.enlargement(&target);
                            let eb = b.enlargement(&target);
                            ea.partial_cmp(&eb)
                                .unwrap_or(Ordering::Equal)
                                .then_with(|| {
                                    a.area().partial_cmp(&b.area()).unwrap_or(Ordering::Equal)
                                })
                        })
                        .expect("internal nodes are never empty");
                    path.push((current, pos));
                    current = children[pos].1;
                }
            }
        }
        if let Node::Leaf { entries } = &mut self.nodes[current] {
            entries.push((coords.into(), payload));
        }

        // Walk back up: refresh MBRs and split overflowing nodes.
        let mut split: Option<(Mbr, usize)> = self.maybe_split_leaf(current);
        for &(parent, pos) in path.iter().rev() {
            let child_idx = match &self.nodes[parent] {
                Node::Internal { children } => children[pos].1,
                Node::Leaf { .. } => unreachable!("path holds internal nodes"),
            };
            let child_mbr = self.mbr_of(child_idx);
            if let Node::Internal { children } = &mut self.nodes[parent] {
                children[pos].0 = child_mbr;
                if let Some(new_child) = split.take() {
                    children.push(new_child);
                }
            }
            split = self.maybe_split_internal(parent);
        }
        if let Some((new_mbr, new_idx)) = split {
            // The root itself split: grow the tree by one level.
            let old_root = self.root;
            let old_mbr = self.mbr_of(old_root);
            let root = self.nodes.len();
            self.nodes.push(Node::Internal {
                children: vec![(old_mbr, old_root), (new_mbr, new_idx)],
            });
            self.root = root;
        }
    }

    fn mbr_of(&self, idx: usize) -> Mbr {
        match &self.nodes[idx] {
            Node::Leaf { entries } => {
                let mut mbr = Mbr::point(&entries[0].0);
                for (c, _) in &entries[1..] {
                    mbr.union_with(&Mbr::point(c));
                }
                mbr
            }
            Node::Internal { children } => {
                let mut mbr = children[0].0.clone();
                for (m, _) in &children[1..] {
                    mbr.union_with(m);
                }
                mbr
            }
        }
    }

    fn maybe_split_leaf(&mut self, idx: usize) -> Option<(Mbr, usize)> {
        let needs_split =
            matches!(&self.nodes[idx], Node::Leaf { entries } if entries.len() > MAX_FANOUT);
        if !needs_split {
            return None;
        }
        let Node::Leaf { entries } = std::mem::replace(
            &mut self.nodes[idx],
            Node::Leaf {
                entries: Vec::new(),
            },
        ) else {
            unreachable!();
        };
        let rects: Vec<Mbr> = entries.iter().map(|(c, _)| Mbr::point(c)).collect();
        let (ga, gb) = quadratic_split(&rects);
        let mut a = Vec::with_capacity(ga.len());
        let mut b = Vec::with_capacity(gb.len());
        for (i, e) in entries.into_iter().enumerate() {
            if ga.contains(&i) {
                a.push(e);
            } else {
                b.push(e);
            }
        }
        self.nodes[idx] = Node::Leaf { entries: a };
        let new_idx = self.nodes.len();
        self.nodes.push(Node::Leaf { entries: b });
        Some((self.mbr_of(new_idx), new_idx))
    }

    fn maybe_split_internal(&mut self, idx: usize) -> Option<(Mbr, usize)> {
        let needs_split =
            matches!(&self.nodes[idx], Node::Internal { children } if children.len() > MAX_FANOUT);
        if !needs_split {
            return None;
        }
        let Node::Internal { children } = std::mem::replace(
            &mut self.nodes[idx],
            Node::Leaf {
                entries: Vec::new(),
            },
        ) else {
            unreachable!();
        };
        let rects: Vec<Mbr> = children.iter().map(|(m, _)| m.clone()).collect();
        let (ga, _gb) = quadratic_split(&rects);
        let mut a = Vec::with_capacity(ga.len());
        let mut b = Vec::with_capacity(children.len() - ga.len());
        for (i, c) in children.into_iter().enumerate() {
            if ga.contains(&i) {
                a.push(c);
            } else {
                b.push(c);
            }
        }
        self.nodes[idx] = Node::Internal { children: a };
        let new_idx = self.nodes.len();
        self.nodes.push(Node::Internal { children: b });
        Some((self.mbr_of(new_idx), new_idx))
    }

    /// Exact k-nearest neighbours via best-first search (Hjaltason &
    /// Samet): a priority queue over minimum possible distances, expanding
    /// nodes lazily.
    #[must_use]
    pub fn knn(&self, query: &[f64], k: usize) -> Vec<RNeighbor<P>> {
        assert_eq!(query.len(), self.dims, "dimensionality mismatch");
        enum Item<P> {
            Node(usize),
            Point(P),
        }
        struct Queued<P> {
            dist2: f64,
            item: Item<P>,
        }
        impl<P> PartialEq for Queued<P> {
            fn eq(&self, other: &Self) -> bool {
                self.dist2 == other.dist2
            }
        }
        impl<P> Eq for Queued<P> {}
        impl<P> PartialOrd for Queued<P> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<P> Ord for Queued<P> {
            fn cmp(&self, other: &Self) -> Ordering {
                // Reverse: BinaryHeap is a max-heap, we want the min first.
                other
                    .dist2
                    .partial_cmp(&self.dist2)
                    .expect("distances are finite")
            }
        }

        let mut out = Vec::with_capacity(k.min(self.len));
        if k == 0 || self.is_empty() {
            return out;
        }
        let mut heap = BinaryHeap::new();
        heap.push(Queued {
            dist2: 0.0,
            item: Item::Node(self.root),
        });
        while let Some(Queued { dist2, item }) = heap.pop() {
            match item {
                Item::Point(payload) => {
                    out.push(RNeighbor {
                        dist: dist2.sqrt(),
                        payload,
                    });
                    if out.len() == k {
                        break;
                    }
                }
                Item::Node(idx) => match &self.nodes[idx] {
                    Node::Leaf { entries } => {
                        for (c, p) in entries {
                            let d = euclidean(c, query);
                            heap.push(Queued {
                                dist2: d * d,
                                item: Item::Point(p.clone()),
                            });
                        }
                    }
                    Node::Internal { children } => {
                        for (mbr, child) in children {
                            heap.push(Queued {
                                dist2: mbr.min_dist2(query),
                                item: Item::Node(*child),
                            });
                        }
                    }
                },
            }
        }
        out
    }

    /// All points within `radius` of `query` (inclusive), closest first.
    #[must_use]
    pub fn range(&self, query: &[f64], radius: f64) -> Vec<RNeighbor<P>> {
        assert_eq!(query.len(), self.dims, "dimensionality mismatch");
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            match &self.nodes[idx] {
                Node::Leaf { entries } => {
                    for (c, p) in entries {
                        let d = euclidean(c, query);
                        if d <= radius {
                            out.push(RNeighbor {
                                dist: d,
                                payload: p.clone(),
                            });
                        }
                    }
                }
                Node::Internal { children } => {
                    for (mbr, child) in children {
                        if mbr.intersects_ball(query, radius) {
                            stack.push(*child);
                        }
                    }
                }
            }
        }
        out.sort_by(|a, b| a.dist.partial_cmp(&b.dist).expect("finite distances"));
        out
    }

    /// Iterate every stored `(coords, payload)`.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], &P)> {
        self.nodes
            .iter()
            .flat_map(|n| match n {
                Node::Leaf { entries } => entries.as_slice(),
                Node::Internal { .. } => &[],
            })
            .map(|(c, p)| (c.as_ref(), p))
    }
}

fn mbr_of_points<P>(points: &[(Vec<f64>, P)]) -> Mbr {
    let mut mbr = Mbr::point(&points[0].0);
    for (c, _) in &points[1..] {
        mbr.union_with(&Mbr::point(c));
    }
    mbr
}

/// Recursive Sort-Tile-Recursive partitioning into leaf tiles of at most
/// `cap` points each.
fn str_tile<P>(
    mut points: Vec<(Vec<f64>, P)>,
    dims: usize,
    dim: usize,
    cap: usize,
    out: &mut Vec<Vec<(Vec<f64>, P)>>,
) {
    if points.len() <= cap {
        out.push(points);
        return;
    }
    points.sort_by(|(a, _), (b, _)| a[dim].partial_cmp(&b[dim]).expect("finite coordinates"));
    if dim + 1 == dims {
        let mut rest = points;
        while !rest.is_empty() {
            let tail = rest.split_off(cap.min(rest.len()));
            out.push(rest);
            rest = tail;
        }
        return;
    }
    // Number of vertical slices: ceil((leaves)^(1/remaining_dims)).
    let leaves = points.len().div_ceil(cap);
    let remaining = (dims - dim) as f64;
    let slices = (leaves as f64).powf(1.0 / remaining).ceil() as usize;
    let slice_size = points.len().div_ceil(slices.max(1));
    let mut rest = points;
    while !rest.is_empty() {
        let tail = rest.split_off(slice_size.min(rest.len()));
        str_tile(rest, dims, dim + 1, cap, out);
        rest = tail;
    }
}

/// Guttman's quadratic split over a set of rectangles: returns the index
/// set of group A (group B is the complement).
fn quadratic_split(rects: &[Mbr]) -> (Vec<usize>, Vec<usize>) {
    debug_assert!(rects.len() >= 2);
    // Seeds: the pair wasting the most area if grouped together.
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..rects.len() {
        for j in (i + 1)..rects.len() {
            let waste = rects[i].union(&rects[j]).area() - rects[i].area() - rects[j].area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    let mut group_a = vec![seed_a];
    let mut group_b = vec![seed_b];
    let mut mbr_a = rects[seed_a].clone();
    let mut mbr_b = rects[seed_b].clone();

    let mut remaining: Vec<usize> = (0..rects.len())
        .filter(|&i| i != seed_a && i != seed_b)
        .collect();
    while let Some(&next) = remaining.first() {
        // Min-fill guard: if one group needs every remaining entry, take
        // them all.
        let left = remaining.len();
        if group_a.len() + left <= MIN_FANOUT {
            group_a.append(&mut remaining);
            break;
        }
        if group_b.len() + left <= MIN_FANOUT {
            group_b.append(&mut remaining);
            break;
        }
        // Pick the entry with the strongest preference.
        let (pos, &choice) = remaining
            .iter()
            .enumerate()
            .max_by(|(_, &x), (_, &y)| {
                let dx = (mbr_a.enlargement(&rects[x]) - mbr_b.enlargement(&rects[x])).abs();
                let dy = (mbr_a.enlargement(&rects[y]) - mbr_b.enlargement(&rects[y])).abs();
                dx.partial_cmp(&dy).unwrap_or(Ordering::Equal)
            })
            .unwrap_or((0, &next));
        remaining.swap_remove(pos);
        let ea = mbr_a.enlargement(&rects[choice]);
        let eb = mbr_b.enlargement(&rects[choice]);
        if ea < eb || (ea == eb && group_a.len() <= group_b.len()) {
            group_a.push(choice);
            mbr_a.union_with(&rects[choice]);
        } else {
            group_b.push(choice);
            mbr_b.union_with(&rects[choice]);
        }
    }
    (group_a, group_b)
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    use super::*;

    fn random_points(n: usize, dims: usize, seed: u64) -> Vec<(Vec<f64>, u32)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    (0..dims).map(|_| rng.random_range(0.0..100.0)).collect(),
                    i as u32,
                )
            })
            .collect()
    }

    fn brute_knn(points: &[(Vec<f64>, u32)], q: &[f64], k: usize) -> Vec<f64> {
        let mut d: Vec<f64> = points.iter().map(|(c, _)| euclidean(c, q)).collect();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        d.truncate(k);
        d
    }

    #[test]
    fn bulk_knn_matches_brute_force() {
        let points = random_points(500, 3, 1);
        let tree = RTree::bulk_load(3, points.clone());
        assert_eq!(tree.len(), 500);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..30 {
            let q: Vec<f64> = (0..3).map(|_| rng.random_range(0.0..100.0)).collect();
            let got = tree.knn(&q, 7);
            let want = brute_knn(&points, &q, 7);
            assert_eq!(got.len(), 7);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.dist - w).abs() < 1e-9, "{} vs {}", g.dist, w);
            }
        }
    }

    #[test]
    fn dynamic_knn_matches_brute_force() {
        let points = random_points(300, 2, 2);
        let mut tree = RTree::new(2);
        for (c, p) in &points {
            tree.insert(c, *p);
        }
        assert_eq!(tree.len(), 300);
        assert_eq!(tree.iter().count(), 300);
        let q = vec![50.0, 50.0];
        let got = tree.knn(&q, 10);
        let want = brute_knn(&points, &q, 10);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist - w).abs() < 1e-9);
        }
    }

    #[test]
    fn range_matches_brute_force() {
        let points = random_points(400, 2, 3);
        let tree = RTree::bulk_load(2, points.clone());
        let q = vec![40.0, 60.0];
        for radius in [0.0, 10.0, 35.0, 200.0] {
            let got = tree.range(&q, radius);
            let want = points
                .iter()
                .filter(|(c, _)| euclidean(c, &q) <= radius)
                .count();
            assert_eq!(got.len(), want, "radius {radius}");
            for w in got.windows(2) {
                assert!(w[0].dist <= w[1].dist);
            }
        }
    }

    #[test]
    fn mixed_bulk_and_dynamic() {
        let initial = random_points(100, 2, 4);
        let mut tree = RTree::bulk_load(2, initial.clone());
        let extra = random_points(150, 2, 5);
        for (c, p) in &extra {
            tree.insert(c, p + 1000);
        }
        assert_eq!(tree.len(), 250);
        let q = vec![10.0, 90.0];
        let all: Vec<(Vec<f64>, u32)> = initial
            .into_iter()
            .chain(extra.into_iter().map(|(c, p)| (c, p + 1000)))
            .collect();
        let got = tree.knn(&q, 5);
        let want = brute_knn(&all, &q, 5);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist - w).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_and_tiny_trees() {
        let tree: RTree<u32> = RTree::new(2);
        assert!(tree.is_empty());
        assert!(tree.knn(&[0.0, 0.0], 3).is_empty());
        assert!(tree.range(&[0.0, 0.0], 5.0).is_empty());
        let tree = RTree::bulk_load(1, vec![(vec![3.0], 7u32)]);
        assert_eq!(tree.knn(&[0.0], 1)[0].payload, 7);
    }

    #[test]
    fn duplicate_points_survive_splits() {
        let mut tree = RTree::new(2);
        for i in 0..50u32 {
            tree.insert(&[1.0, 1.0], i);
        }
        assert_eq!(tree.len(), 50);
        assert_eq!(tree.range(&[1.0, 1.0], 0.0).len(), 50);
    }

    #[test]
    fn knn_k_zero_and_oversized() {
        let tree = RTree::bulk_load(2, random_points(10, 2, 6));
        assert!(tree.knn(&[0.0, 0.0], 0).is_empty());
        assert_eq!(tree.knn(&[0.0, 0.0], 99).len(), 10);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dims_panics() {
        let mut tree = RTree::new(2);
        tree.insert(&[1.0], 0u32);
    }

    #[test]
    fn quadratic_split_balances_and_partitions() {
        let rects: Vec<Mbr> = (0..20).map(|i| Mbr::point(&[f64::from(i), 0.0])).collect();
        let (a, b) = quadratic_split(&rects);
        assert_eq!(a.len() + b.len(), 20);
        assert!(a.len() >= MIN_FANOUT && b.len() >= MIN_FANOUT);
        let mut all: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 20, "no entry lost or duplicated");
    }
}
