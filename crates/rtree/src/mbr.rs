//! Minimum bounding rectangles.

/// An axis-aligned minimum bounding rectangle in `R^k`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mbr {
    /// Per-dimension lower bounds.
    pub min: Vec<f64>,
    /// Per-dimension upper bounds.
    pub max: Vec<f64>,
}

impl Mbr {
    /// The degenerate rectangle covering a single point.
    #[must_use]
    pub fn point(coords: &[f64]) -> Self {
        Mbr {
            min: coords.to_vec(),
            max: coords.to_vec(),
        }
    }

    /// Dimensionality.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.min.len()
    }

    /// Grow to cover another rectangle.
    pub fn union_with(&mut self, other: &Mbr) {
        for d in 0..self.min.len() {
            self.min[d] = self.min[d].min(other.min[d]);
            self.max[d] = self.max[d].max(other.max[d]);
        }
    }

    /// The union of two rectangles.
    #[must_use]
    pub fn union(&self, other: &Mbr) -> Mbr {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Hyper-volume (product of side lengths).
    #[must_use]
    pub fn area(&self) -> f64 {
        self.min
            .iter()
            .zip(&self.max)
            .map(|(lo, hi)| hi - lo)
            .product()
    }

    /// How much the area grows if `other` is merged in — Guttman's
    /// least-enlargement criterion.
    #[must_use]
    pub fn enlargement(&self, other: &Mbr) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Squared minimum distance from a point to this rectangle (0 inside).
    #[must_use]
    pub fn min_dist2(&self, point: &[f64]) -> f64 {
        self.min
            .iter()
            .zip(&self.max)
            .zip(point)
            .map(|((lo, hi), p)| {
                let d = if p < lo {
                    lo - p
                } else if p > hi {
                    p - hi
                } else {
                    0.0
                };
                d * d
            })
            .sum()
    }

    /// Whether a ball of `radius` around `point` intersects this rectangle.
    #[must_use]
    pub fn intersects_ball(&self, point: &[f64], radius: f64) -> bool {
        self.min_dist2(point) <= radius * radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_rect_has_zero_area() {
        let m = Mbr::point(&[1.0, 2.0]);
        assert_eq!(m.area(), 0.0);
        assert_eq!(m.dims(), 2);
    }

    #[test]
    fn union_covers_both() {
        let a = Mbr::point(&[0.0, 0.0]);
        let b = Mbr::point(&[2.0, 3.0]);
        let u = a.union(&b);
        assert_eq!(u.min, vec![0.0, 0.0]);
        assert_eq!(u.max, vec![2.0, 3.0]);
        assert_eq!(u.area(), 6.0);
    }

    #[test]
    fn enlargement_is_zero_for_contained() {
        let big = Mbr {
            min: vec![0.0, 0.0],
            max: vec![10.0, 10.0],
        };
        let inside = Mbr::point(&[5.0, 5.0]);
        assert_eq!(big.enlargement(&inside), 0.0);
        let outside = Mbr::point(&[20.0, 5.0]);
        assert!(big.enlargement(&outside) > 0.0);
    }

    #[test]
    fn min_dist2_inside_edge_outside() {
        let m = Mbr {
            min: vec![0.0, 0.0],
            max: vec![4.0, 4.0],
        };
        assert_eq!(m.min_dist2(&[2.0, 2.0]), 0.0);
        assert_eq!(m.min_dist2(&[4.0, 4.0]), 0.0);
        assert_eq!(m.min_dist2(&[7.0, 4.0]), 9.0);
        assert_eq!(m.min_dist2(&[7.0, 8.0]), 9.0 + 16.0);
    }

    #[test]
    fn ball_intersection() {
        let m = Mbr {
            min: vec![0.0],
            max: vec![1.0],
        };
        assert!(m.intersects_ball(&[2.0], 1.0));
        assert!(!m.intersects_ball(&[2.0], 0.9));
        assert!(m.intersects_ball(&[0.5], 0.0));
    }
}
