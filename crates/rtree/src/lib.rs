//! R-tree baseline for SemTree's index-structure choice.
//!
//! The paper (§III-B) surveys "R-tree, Kd-tree, X-tree, SS-tree, M-tree,
//! Quadtree, etc." and picks the KD-tree for bulk-loading efficiency,
//! density adaptivity and in-memory simplicity. This crate provides the
//! closest classical competitor so that the choice can be *measured*
//! (`repro -- ablation_structure`):
//!
//! - **STR bulk loading** (Sort-Tile-Recursive, Leutenegger et al. 1997) —
//!   the standard packed construction;
//! - **dynamic insertion** with least-enlargement descent and Guttman's
//!   quadratic node split;
//! - **best-first k-NN** over a priority queue of minimum MBR distances
//!   (Hjaltason & Samet) — exact;
//! - **range search** by MBR/ball intersection — exact.
//!
//! # Example
//!
//! ```
//! use semtree_rtree::RTree;
//!
//! let points: Vec<(Vec<f64>, u32)> =
//!     (0..100).map(|i| (vec![f64::from(i % 10), f64::from(i / 10)], i as u32)).collect();
//! let tree = RTree::bulk_load(2, points);
//! let hits = tree.knn(&[3.2, 4.9], 3);
//! assert_eq!(hits[0].payload, 53);
//! ```

mod mbr;
mod tree;

pub use mbr::Mbr;
pub use tree::{RNeighbor, RTree};
